// UDP rendezvous for the multi-process wall: how N wall_node processes that
// only share one well-known address find each other's ephemeral endpoints.
//
// Protocol (all datagrams, all idempotent, safe under loss/duplication):
//   * joiner -> listener  JOIN(node, endpoint)   retried with capped backoff
//   * listener -> joiner  WAIT                    not everyone has joined yet
//   * listener -> joiner  MAP(node -> endpoint)   complete map, resent until
//   * joiner -> listener  MAP_ACK(node)           ...every node has acked
//
// Joiners never hang: rendezvous_join() retries JOIN under capped
// exponential backoff and returns a typed kTimeout when the deadline
// passes (a missing peer process is an operator error, not a livelock).
#pragma once

#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "net/socket_fabric.h"

namespace pdw::net {

enum class RendezvousStatus { kOk, kTimeout };

struct RendezvousConfig {
  double timeout_s = 10.0;          // overall join/serve deadline
  double backoff_initial_s = 0.02;  // first JOIN retry delay
  double backoff_max_s = 0.5;       // retry delay cap
};

// Register `self` (listening at `local`) with the listener at `server` and
// collect the full node -> endpoint map into `*out` (size `nodes`).
RendezvousStatus rendezvous_join(Endpoint server, int self, Endpoint local,
                                 int nodes, std::vector<Endpoint>* out,
                                 RendezvousConfig cfg = {});

// The one listener (hosted by the root process, or by the test driver for
// an in-process wall). Collects JOINs, then pushes MAP until acked.
class RendezvousServer {
 public:
  // port 0 binds an ephemeral port; endpoint() reports the actual one.
  explicit RendezvousServer(int nodes, uint16_t port = 0);
  ~RendezvousServer();

  RendezvousServer(const RendezvousServer&) = delete;
  RendezvousServer& operator=(const RendezvousServer&) = delete;

  Endpoint endpoint() const { return local_; }

  // Serve until every node joined and acked the map, or the deadline.
  RendezvousStatus serve(RendezvousConfig cfg = {});

  // serve() on a background thread (in-process walls / the root host);
  // result() joins it and returns the outcome.
  void serve_async(RendezvousConfig cfg = {});
  RendezvousStatus result();

  // The collected map (valid once serve() returned kOk).
  const std::vector<Endpoint>& map() const { return map_; }

  // Transform the collected map before it is handed out — e.g. substitute
  // impairment-proxy fronts for the real endpoints. Called exactly once,
  // when the last JOIN lands. Must be set before serve().
  using MapTransform =
      std::function<std::vector<Endpoint>(const std::vector<Endpoint>&)>;
  void set_map_transform(MapTransform fn) { transform_ = std::move(fn); }

 private:
  int fd_ = -1;
  Endpoint local_;
  int nodes_;
  std::vector<Endpoint> map_;
  std::vector<Endpoint> handout_;  // transformed map actually distributed
  MapTransform transform_;
  bool transformed_ = false;
  // Source address of each node's JOIN — where MAP replies go (the joiner's
  // rendezvous socket, distinct from its fabric endpoint in map_).
  std::vector<Endpoint> join_source_;
  std::vector<bool> joined_;
  std::vector<bool> acked_;
  std::thread thread_;
  RendezvousStatus async_result_ = RendezvousStatus::kTimeout;
};

}  // namespace pdw::net
