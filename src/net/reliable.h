// Reliable, ordered, exactly-once messaging over the (possibly faulty)
// fabric — the protocol hardening the paper's Table-3 design lacks.
//
// Per (sender -> receiver) stream:
//   * every reliable message carries a transport sequence number and a
//     payload CRC-32;
//   * the receiver drops corrupt payloads (the sender retransmits), acks
//     good ones, suppresses duplicates (re-posting the consumed receive
//     buffer), and delivers strictly in sequence order through a reorder
//     buffer — so the application above sees exactly the fault-free message
//     sequence on every link, which is what makes decoded output bit-exact
//     under any non-fatal fault schedule;
//   * the sender retransmits unacked messages after a timeout with capped
//     exponential backoff; after max_retries the message is abandoned and
//     the peer reported as a suspect (the health monitor decides whether
//     the node is actually dead).
//
// Heartbeats and transport acks are fire-and-forget (send_unreliable).
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "net/fabric.h"
#include "obs/metrics.h"

namespace pdw::net {

// Message.type values below this are transport-internal.
inline constexpr int kTransportAck = -1;
// tseq value marking a fire-and-forget message (no ack, no ordering).
inline constexpr uint32_t kUnreliableSeq = 0xFFFFFFFFu;

struct ReliableConfig {
  double rto_initial_s = 0.004;  // RTO before the first RTT sample
  double rto_max_s = 0.064;      // backoff cap
  int max_retries = 12;          // then abandon + report suspect
  // Jacobson/Karels adaptive retransmission timeout: every ack of a
  // never-retransmitted message samples the link RTT (Karn's rule keeps
  // ambiguous retransmitted samples out), maintains per-destination
  // srtt/rttvar, and sets rto = srtt + 4 * rttvar clamped to
  // [rto_min_s, rto_max_s]. On a real network this tracks the actual link
  // instead of a compile-time guess; retransmission backoff still doubles
  // from the adaptive value up to rto_max_s.
  bool adaptive_rto = true;
  // Adaptive-RTO floor; 0 derives rto_initial_s (so the in-process fabric
  // behaves exactly as the fixed-RTO era unless a socket config lowers it).
  double rto_min_s = 0;
  // An abandoned send punches a permanent hole in the sender's tseq space;
  // later messages on that link would wait in the receiver's reorder buffer
  // forever. If the buffer head has been blocked this long, the receiver
  // concedes the missing tseq was abandoned and advances past the hole.
  // Must exceed the sender's worst-case retransmission span (sum of backed-
  // off rtos), or a merely slow message gets declared dead and lost — 0
  // (default) derives a safe value via derive_hole_timeout() below.
  double hole_timeout_s = 0;
  // Registry the endpoint mirrors its retransmit / abandon / CRC-drop
  // counters and RTT/jitter histograms into (nullptr: the process-global
  // one).
  obs::MetricsRegistry* metrics = nullptr;
};

// The documented hole-timeout derivation, exposed so tests can pin it
// against the worst-case retransmission span:
//   span = sum of the max_retries + 1 transmission timeouts, each double
//          the previous capped at rto_max_s. The series starts at
//          rto_initial_s with a fixed RTO; with adaptive_rto the first
//          timeout can already be as large as rto_max_s (srtt + 4 * rttvar
//          is clamped there), so the series starts at the cap.
//   hole_timeout = 4 * span + 0.1   (scheduling slack)
// Only after 4x the worst-case span can a missing tseq be presumed
// abandoned rather than still in flight.
double derive_hole_timeout(const ReliableConfig& cfg);

struct ReliableStats {
  uint64_t sent = 0;
  uint64_t retransmits = 0;
  uint64_t crc_drops = 0;   // corrupt payloads detected and discarded
  uint64_t dup_drops = 0;   // duplicate deliveries suppressed
  uint64_t reordered = 0;   // messages that waited in the reorder buffer
  uint64_t abandoned = 0;   // messages given up on after max_retries
  uint64_t no_credit = 0;   // sends deferred by flow control
  uint64_t holes = 0;       // abandoned-sender holes skipped on receive
  uint64_t delivered = 0;   // in-order app messages handed to the caller
  uint64_t rtt_samples = 0; // acks that produced a clean RTT sample
};

// A reliable message the sender gave up on (retries exhausted). The
// application layer decides what to do (e.g. a splitter tells the decoder
// to skip the picture it could not deliver).
struct AbandonedSend {
  int dst = 0;
  int type = 0;
  uint32_t seq = 0;
  uint16_t aux = 0;
};

class ReliableEndpoint {
 public:
  ReliableEndpoint(FabricBackend* fabric, int self, ReliableConfig cfg = {});

  int self() const { return self_; }
  // The effective (possibly derived) hole timeout / RTO floor.
  double hole_timeout_s() const { return cfg_.hole_timeout_s; }
  double rto_min_s() const { return cfg_.rto_min_s; }

  // Adaptive-RTO state for `dst`: smoothed RTT (0 before the first sample)
  // and the RTO the next fresh send to `dst` would use.
  double srtt_s(int dst) const;
  double rto_s(int dst) const;

  // Queue a reliable send (retransmitted until acked or abandoned).
  void send(int dst, Message msg);

  // Fire-and-forget (heartbeats). Corrupt copies are silently dropped by
  // the receiver; lost copies are simply lost.
  void send_unreliable(int dst, Message msg);

  enum class Status { kMessage, kTimeout, kShutdown, kDead };

  // Pump the transport: handle acks/retransmits/dedup/reorder internally
  // and return the next in-order application message, or time out.
  Status recv(Message* out, double timeout_s);

  // Peers with at least one abandoned message since the last call.
  std::vector<AbandonedSend> take_abandoned();

  // Drop every in-flight message to `dst` without reporting it abandoned —
  // used when the peer is known dead (retransmitting at a corpse is noise).
  void forget_peer(int dst);

  const ReliableStats& stats() const { return stats_; }
  size_t unacked() const { return pending_.size(); }

 private:
  struct Pending {
    Message msg;
    int dst = 0;
    double deadline = 0;
    double rto = 0;
    int tries = 0;
    int nc_tries = 0;  // flow-control (no-credit) retries
    double first_tx = 0;        // when the initial transmission left
    bool retransmitted = false; // Karn: ambiguous ack, no RTT sample
  };

  // Per-destination Jacobson/Karels RTT estimator.
  struct TxPeer {
    double srtt = -1;  // < 0: no sample yet
    double rttvar = 0;
    double rto = 0;    // next fresh-send RTO (0: use rto_initial_s)
  };

  struct PeerRx {
    uint32_t next_expected = 0;
    std::map<uint32_t, Message> reorder;
    double blocked_since = -1;  // head blocked on a missing tseq since then
  };

  double now() const;
  void transmit(Pending& p);
  // Consume one transport ack: erase the pending entry and, when the ack is
  // unambiguous (never retransmitted), feed the RTT sample to the estimator.
  void on_ack(int src, uint32_t tseq);
  // Retransmit everything past deadline; returns the next deadline (or
  // +inf). Abandons messages whose retry budget is exhausted.
  double service_deadlines();
  // Skip reorder-buffer holes blocked longer than hole_timeout_s.
  void service_holes();
  // Transport-level handling of one fabric message. Returns true if an
  // application message became deliverable (pushed onto ready_).
  bool handle(Message msg);

  FabricBackend* fabric_;
  int self_;
  ReliableConfig cfg_;
  std::chrono::steady_clock::time_point epoch_;

  std::vector<uint32_t> next_tx_;          // per-dst transport seq
  std::map<uint64_t, Pending> pending_;    // (dst<<32)|tseq -> in-flight
  std::vector<PeerRx> rx_;                 // per-src receive state
  std::vector<TxPeer> tx_peer_;            // per-dst RTT estimator
  std::deque<Message> ready_;              // in-order app messages
  std::vector<AbandonedSend> abandoned_;
  ReliableStats stats_;

  // Cached registry instruments (labels: {node = self}).
  obs::Counter* m_retransmits_ = nullptr;
  obs::Counter* m_abandoned_ = nullptr;
  obs::Counter* m_crc_drops_ = nullptr;
  obs::Histogram* m_rtt_ns_ = nullptr;
  obs::Histogram* m_rtt_jitter_ns_ = nullptr;
};

}  // namespace pdw::net
