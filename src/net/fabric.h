// In-process message-passing fabric with GM/Myrinet-like semantics
// (paper §4.4).
//
// GM's user-level API is connectionless reliable messaging where the
// *receiver* must provide buffers: a sender may only transmit when it knows
// the receiver has a receive buffer posted. The paper builds a two-buffer
// credit scheme on top (post two buffers; after consuming a message, recycle
// the buffer and send an ack/go-ahead). We model posted buffers as credits
// and make overruns a hard CHECK failure: if the application protocol ever
// sends a bulk message to a node without a posted buffer, that is a protocol
// bug (the very bug the paper's ack design exists to prevent), not a
// condition to paper over with blocking.
//
// Small control messages (acks, go-aheads, macroblock exchanges) flow
// without credits, as GM programs typically reserve a pool of small buffers
// for them.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "common/check.h"

namespace pdw::net {

struct Message {
  int src = -1;
  int type = 0;        // application-defined tag
  uint32_t seq = 0;    // picture index / sequence number
  uint16_t aux = 0;    // ANID / NSID field
  bool bulk = false;   // true: consumes a posted receive buffer
  std::vector<uint8_t> payload;

  size_t wire_bytes() const { return payload.size() + kHeaderBytes; }
  static constexpr size_t kHeaderBytes = 16;
};

struct NodeCounters {
  uint64_t sent_bytes = 0;
  uint64_t recv_bytes = 0;
  uint64_t sent_messages = 0;
  uint64_t recv_messages = 0;
};

class Fabric {
 public:
  explicit Fabric(int nodes);

  int nodes() const { return int(mailboxes_.size()); }

  // Post one receive buffer at `node` (a credit for one bulk message).
  void post_receive(int node);

  // Deliver a message to `dst`. Bulk messages consume a posted buffer;
  // CHECK-fails if none is available (flow-control violation).
  void send(int src, int dst, Message msg);

  // Blocking receive at `node`. Returns false if the fabric was shut down
  // and no message is pending.
  bool receive(int node, Message* out);

  // Per-node traffic counters and the pairwise traffic matrix
  // (bytes[src * nodes + dst]).
  NodeCounters counters(int node) const;
  std::vector<uint64_t> traffic_matrix() const;

  // Unblock all receivers (end of stream).
  void shutdown();

 private:
  struct Mailbox {
    mutable std::mutex mu;
    std::condition_variable cv;
    std::deque<Message> queue;
    int credits = 0;
    NodeCounters counters;
  };

  Mailbox& box(int node) {
    PDW_CHECK_GE(node, 0);
    PDW_CHECK_LT(node, nodes());
    return *mailboxes_[size_t(node)];
  }

  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<uint64_t> traffic_;  // src * nodes + dst, guarded by traffic_mu_
  mutable std::mutex traffic_mu_;
  std::atomic<bool> shutdown_{false};
};

}  // namespace pdw::net
