// In-process message-passing fabric with GM/Myrinet-like semantics
// (paper §4.4).
//
// GM's user-level API is connectionless reliable messaging where the
// *receiver* must provide buffers: a sender may only transmit when it knows
// the receiver has a receive buffer posted. The paper builds a two-buffer
// credit scheme on top (post two buffers; after consuming a message, recycle
// the buffer and send an ack/go-ahead). We model posted buffers as credits.
// A bulk send without a posted buffer is *not* a hard abort any more: it
// returns SendStatus::kNoCredit so the reliable transport (net/reliable.h)
// can back off and retry, and so tests can exercise the overrun path.
//
// Small control messages (acks, go-aheads, heartbeats) flow without
// credits, as GM programs typically reserve a pool of small buffers for
// them.
//
// Unlike the paper's fabric, this one can be *unreliable on demand*: an
// attached FaultInjector may drop, delay (reorder), duplicate or corrupt
// any message, or crash a node outright. Delayed messages are parked in the
// destination mailbox and released after `hold` later deliveries — or when
// a receiver times out waiting, which models late arrival and guarantees
// liveness. A killed node loses its queue; sends to it succeed silently
// (the network does not tell a sender its peer died) and receives at it
// report RecvStatus::kDead so the node's thread can exit.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "common/traffic_matrix.h"
#include "mem/bytes.h"
#include "net/fault.h"

namespace pdw::net {

struct Message {
  int src = -1;
  int type = 0;        // application-defined tag (< 0 reserved for transport)
  uint32_t seq = 0;    // picture index / sequence number
  uint16_t aux = 0;    // ANID / NSID / tile field
  uint8_t stream = 0;  // wire-level stream tag (multi-stream sessions)
  bool bulk = false;   // true: consumes a posted receive buffer
  uint32_t tseq = 0;   // transport sequence number (stamped by ReliableEndpoint)
  uint32_t crc = 0;    // payload CRC-32 (stamped by ReliableEndpoint)
  // Refcounted view of the pooled wire body: copying a Message (send,
  // retransmit-queue pin, duplicate fault) bumps a refcount instead of
  // copying payload bytes.
  mem::Bytes payload;

  // Wire size. The 16-byte header models GM's small-message header and is
  // kept unchanged from the reliable-fabric era: seq/crc framing replaces
  // padding rather than growing the header.
  size_t wire_bytes() const { return payload.size() + kHeaderBytes; }
  static constexpr size_t kHeaderBytes = 16;
};

struct NodeCounters {
  uint64_t sent_bytes = 0;
  uint64_t recv_bytes = 0;
  uint64_t sent_messages = 0;
  uint64_t recv_messages = 0;
  uint64_t dropped_messages = 0;  // lost to injected faults on this dst
};

enum class SendStatus {
  kOk,        // delivered (or silently dropped by a fault — sender can't tell)
  kNoCredit,  // bulk message, no posted receive buffer (flow-control overrun)
  kSrcDead,   // the sending node was killed
};

enum class RecvStatus {
  kOk,
  kTimeout,
  kShutdown,  // fabric shut down and queue drained
  kDead,      // this node was killed
};

// The transport surface every fabric backend provides. Two implementations:
//   * Fabric       — the in-process GM-like fabric below (one instance shared
//                    by every node thread; the fast, deterministic test path);
//   * SocketFabric — net/socket_fabric.h, real nonblocking UDP datagrams (one
//                    instance per node; loss, reordering and peer death are
//                    physical phenomena, not injected ones).
// ReliableEndpoint and the core/ node hosts are written against this
// interface, which is what lets the same protocol machines run in one
// process or across many.
class FabricBackend {
 public:
  virtual ~FabricBackend() = default;

  virtual int nodes() const = 0;

  // Post one receive buffer at `node` (a credit for one bulk message).
  virtual void post_receive(int node) = 0;

  // Deliver a message to `dst`. Bulk messages consume a posted buffer;
  // kNoCredit means the message was not delivered (in-process backend only:
  // a socket sender cannot see the receiver's credit state, so there the
  // overrun is a receiver-side drop covered by retransmission).
  virtual SendStatus send(int src, int dst, Message msg) = 0;

  // Timed receive at `node`.
  virtual RecvStatus receive_for(int node, double timeout_s, Message* out) = 0;

  // Fence a node off the fabric. For the in-process backend this kills the
  // mailbox; a socket backend fences locally (drop its traffic both ways).
  virtual void kill(int node) = 0;
  virtual bool is_dead(int node) const = 0;

  // Per-node traffic counters and the pairwise traffic matrix (a socket
  // backend reports its local view: its own sends and receives).
  virtual NodeCounters counters(int node) const = 0;
  virtual TrafficMatrix traffic_matrix() const = 0;

  // True when nothing is queued locally — every delivered message consumed.
  virtual bool quiescent() const = 0;

  // Unblock all receivers (end of stream).
  virtual void shutdown() = 0;

  // Nodes for which the transport observed a hard peer error (ICMP port
  // unreachable — the socket analog of a crashed process) since the last
  // call. The in-process fabric never reports any; the root host feeds
  // these into the protocol's death detection.
  virtual std::vector<int> take_peer_errors() { return {}; }
};

class Fabric final : public FabricBackend {
 public:
  explicit Fabric(int nodes);

  int nodes() const override { return int(mailboxes_.size()); }

  // Attach a fault injector (borrowed; must outlive the fabric). Call before
  // concurrent use.
  void set_fault_injector(const FaultInjector* injector) {
    injector_ = injector;
  }

  // Post one receive buffer at `node` (a credit for one bulk message).
  void post_receive(int node) override;

  // Deliver a message to `dst`. Bulk messages consume a posted buffer;
  // returns kNoCredit (message not delivered) if none is available.
  SendStatus send(int src, int dst, Message msg) override;

  // Blocking receive at `node`. Returns false if the fabric was shut down
  // (and the queue drained) or the node was killed.
  bool receive(int node, Message* out);

  // Timed receive. On kTimeout, any fault-delayed messages parked at this
  // node are released (they arrive "late"), so a later call will see them.
  RecvStatus receive_for(int node, double timeout_s, Message* out) override;

  // Kill a node: its queue is lost, receives at it return kDead, sends to it
  // vanish silently. Idempotent.
  void kill(int node) override;
  bool is_dead(int node) const override;

  // Per-node traffic counters and the pairwise traffic matrix.
  NodeCounters counters(int node) const override;
  TrafficMatrix traffic_matrix() const override;

  // True when no live node has queued or fault-delayed messages — i.e. every
  // sent message has been consumed. Lets an orderly teardown wait for the
  // last in-flight acks before shutdown() discards whatever remains.
  bool quiescent() const override;

  // Unblock all receivers (end of stream).
  void shutdown() override;

 private:
  struct Delayed {
    Message msg;
    int hold = 0;  // deliveries remaining before release
  };

  struct Mailbox {
    mutable std::mutex mu;
    std::condition_variable cv;
    std::deque<Message> queue;
    std::vector<Delayed> delayed;
    int credits = 0;
    bool dead = false;
    uint64_t deliveries = 0;  // messages ever delivered to this node
    NodeCounters counters;
  };

  Mailbox& box(int node) {
    PDW_CHECK_GE(node, 0);
    PDW_CHECK_LT(node, nodes());
    return *mailboxes_[size_t(node)];
  }

  // Must hold mb.mu. Move delayed messages whose hold expired into the queue.
  static void release_delayed(Mailbox& mb, bool force);
  // Must hold mb.mu. Enqueue one already-fault-processed message.
  static bool enqueue(Mailbox& mb, Message msg);

  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  TrafficMatrix traffic_;
  // Per-(link, stream) send counters: fault schedules key on the n-th
  // message *of a stream* on a link, so one stream's fate is independent of
  // how other streams' traffic interleaves with it (reproducible chaos
  // schedules under multi-stream sessions). Key = (src * nodes + dst) << 8
  // | stream; stream-0-only runs behave exactly as the old per-link counter.
  std::unordered_map<uint64_t, uint64_t> link_ordinal_;
  mutable std::mutex traffic_mu_;
  std::atomic<bool> shutdown_{false};
  const FaultInjector* injector_ = nullptr;
};

}  // namespace pdw::net
