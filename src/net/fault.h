// Deterministic fault injection for the GM-like fabric.
//
// The paper assumes a perfectly reliable Myrinet; a production wall cannot.
// This layer lets tests and benchmarks subject the fabric to message drops,
// delays (reordering), duplicates, payload corruption, node stalls and node
// crashes — all *deterministically*: every decision is a pure function of
// (seed, src, dst, per-link message ordinal), so a schedule replays
// identically regardless of thread interleaving, and the discrete-event
// simulator can replay the very same schedule to model recovery latency.
//
// Two ways to describe a schedule, freely combined:
//   * FaultRates — seeded per-message probabilities (soak testing);
//   * FaultEvent — exact triggers ("crash node 5 at its 7th delivery").
#pragma once

#include <cstdint>
#include <span>
#include <type_traits>
#include <vector>

namespace pdw::net {

// CRC-32 (IEEE 802.3 polynomial, reflected). Used by the reliable transport
// to detect payload corruption end-to-end.
uint32_t crc32(std::span<const uint8_t> data);

// Per-message fault probabilities, decided independently per transmission
// (a retransmission is a new transmission with a new ordinal, so bounded
// rates < 1 cannot starve a retrying sender forever).
struct FaultRates {
  double drop = 0;     // message silently lost
  double dup = 0;      // message delivered twice
  double corrupt = 0;  // payload bytes flipped (CRC-detectable)
  double delay = 0;    // message held back and delivered late (reordering)
  int delay_hold = 2;          // deliveries to hold a delayed message back
  int corrupt_bytes = 4;       // bytes flipped per corruption
  size_t min_corrupt_size = 0; // only corrupt payloads at least this large
};

// An exact scheduled fault. Ordinals count per (src, dst, stream) for
// message faults, and per destination node (messages delivered to it) for
// kCrash / kStall, which makes crash points independent of who sent the
// trigger. Keying ordinals per *stream* (the wire-level multiplexing tag)
// is what makes a schedule reproducible under multi-stream sessions: stream
// A's n-th message on a link meets the same fate no matter how many other
// streams' messages interleave with it.
// Construct with designated initializers only ({.kind = ..., .dst = ...});
// positional initialization is not supported, so fields may be inserted or
// reordered here without silently shifting the meaning of call sites.
struct FaultEvent {
  enum class Kind { kDrop, kDuplicate, kCorrupt, kDelay, kCrash, kStall };
  Kind kind = Kind::kDrop;
  int src = -1;             // -1 = any sender (ignored by kCrash/kStall)
  int dst = -1;             // message destination / node to crash or stall
  int stream = -1;          // -1 = any stream (ignored by kCrash/kStall)
  uint64_t at_ordinal = 0;  // trigger ordinal (see above)
  int param = 0;            // kDelay: hold count; kStall: window length
};
// Designated initializers require an aggregate; keeping FaultEvent one is
// what lets every field carry its own default above.
static_assert(std::is_aggregate_v<FaultEvent>);

// The fate of one transmission.
struct FaultDecision {
  bool drop = false;
  bool dup = false;
  bool corrupt = false;
  int delay_hold = 0;      // > 0: hold until this many later deliveries
  bool crash_dst = false;  // kill the destination before delivery
};

class FaultInjector {
 public:
  FaultInjector() = default;
  FaultInjector(uint64_t seed, FaultRates rates) : seed_(seed), rates_(rates) {}

  void add_event(const FaultEvent& ev) { events_.push_back(ev); }
  uint64_t seed() const { return seed_; }

  // Fate of the `link_ordinal`-th message of `stream` ever sent src->dst,
  // which would be the `dst_deliveries`-th message delivered to dst. Pure
  // function — safe to call from any thread, and reusable by the DES for
  // schedule replay. Callers must count link_ordinal per (src, dst, stream);
  // stream 0 keys identically to the pre-multi-stream scheme, so existing
  // single-stream seeds replay unchanged.
  FaultDecision decide(int src, int dst, uint64_t link_ordinal,
                       uint64_t dst_deliveries, size_t payload_size,
                       uint8_t stream = 0) const;

  // Deterministically flip `rates.corrupt_bytes` bytes of `payload`, keyed
  // the same way as decide().
  void corrupt_payload(int src, int dst, uint64_t link_ordinal,
                       std::span<uint8_t> payload, uint8_t stream = 0) const;

 private:
  uint64_t key_stream(int src, int dst, uint64_t ordinal, uint64_t salt,
                      uint8_t stream) const;

  uint64_t seed_ = 0;
  FaultRates rates_;
  std::vector<FaultEvent> events_;
};

}  // namespace pdw::net
