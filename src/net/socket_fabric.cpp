#include "net/socket_fabric.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <linux/errqueue.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace pdw::net {

namespace {

// Datagram layout (little-endian): the full Message header plus
// fragmentation fields, integrity-checked by a trailing header CRC so a
// corrupt header can never misroute bytes into the wrong reassembly slot
// (payload integrity stays end-to-end in ReliableEndpoint's envelope).
//
//   off  field
//    0   magic          u32  'PDWF'
//    4   src            i32
//    8   type           i32
//   12   seq            u32
//   16   aux            u16
//   18   stream         u8
//   19   bulk           u8
//   20   tseq           u32
//   24   crc            u32  (payload CRC-32, stamped by ReliableEndpoint)
//   28   msg_id         u32  (per-sender reassembly key)
//   32   frag_index     u16
//   34   frag_count     u16
//   36   payload_total  u32
//   40   frag_off       u32
//   44   header_crc     u32  (CRC-32 of bytes [0, 44))
//   48   payload fragment...
constexpr uint32_t kMagic = 0x50445746u;  // 'PDWF'
constexpr size_t kDgramHeaderBytes = 48;
// Largest fragment payload per datagram (= kMaxFragmentBytes): comfortably
// under the 64 KiB UDP limit. Receive buffers are sized for this maximum
// whatever this node's configured send-side fragment size is.
constexpr size_t kFragBytes = size_t(kMaxFragmentBytes);

void put_u32(uint8_t* p, uint32_t v) { std::memcpy(p, &v, 4); }
void put_u16(uint8_t* p, uint16_t v) { std::memcpy(p, &v, 2); }
uint32_t get_u32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
uint16_t get_u16(const uint8_t* p) {
  uint16_t v;
  std::memcpy(&v, p, 2);
  return v;
}

sockaddr_in to_sockaddr(Endpoint ep) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(ep.ip);
  sa.sin_port = htons(ep.port);
  return sa;
}

uint64_t partial_key(int src, uint32_t msg_id) {
  return (uint64_t(uint32_t(src)) << 32) | msg_id;
}

}  // namespace

SocketFabric::SocketFabric(int self, int nodes, SocketFabricConfig cfg)
    : self_(self),
      nodes_(nodes),
      cfg_(cfg),
      epoch_(std::chrono::steady_clock::now()),
      fenced_(size_t(nodes)),
      traffic_(nodes),
      counters_(size_t(nodes)) {
  PDW_CHECK_GE(self, 0);
  PDW_CHECK_LT(self, nodes);
  frag_bytes_ = size_t(
      std::clamp(cfg_.fragment_bytes, kMinFragmentBytes, kMaxFragmentBytes));
  fd_ = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK, 0);
  PDW_CHECK_GE(fd_, 0);
  int one = 1;
  ::setsockopt(fd_, IPPROTO_IP, IP_RECVERR, &one, sizeof(one));
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &cfg_.socket_buffer_bytes,
               sizeof(cfg_.socket_buffer_bytes));
  ::setsockopt(fd_, SOL_SOCKET, SO_SNDBUF, &cfg_.socket_buffer_bytes,
               sizeof(cfg_.socket_buffer_bytes));
  sockaddr_in sa = to_sockaddr(Endpoint{kLoopbackIp, 0});
  PDW_CHECK_EQ(::bind(fd_, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)), 0);
  socklen_t len = sizeof(sa);
  PDW_CHECK_EQ(
      ::getsockname(fd_, reinterpret_cast<sockaddr*>(&sa), &len), 0);
  local_ = Endpoint{ntohl(sa.sin_addr.s_addr), ntohs(sa.sin_port)};

  obs::MetricsRegistry& reg = obs::registry_or_global(cfg_.metrics);
  const obs::Labels l{self_, -1};
  m_dgram_tx_ = &reg.counter(obs::family::kSocketDatagramsTx, l);
  m_dgram_rx_ = &reg.counter(obs::family::kSocketDatagramsRx, l);
  m_rx_drops_ = &reg.counter(obs::family::kSocketRxDrops, l);
  m_peer_unreachable_ = &reg.counter(obs::family::kSocketPeerUnreachable, l);
}

SocketFabric::~SocketFabric() {
  if (fd_ >= 0) ::close(fd_);
}

void SocketFabric::set_peers(std::vector<Endpoint> peers) {
  PDW_CHECK_EQ(int(peers.size()), nodes_);
  peers_ = std::move(peers);
}

double SocketFabric::now() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

void SocketFabric::post_receive(int node) {
  PDW_CHECK_EQ(node, self_);
  ++credits_;
}

SendStatus SocketFabric::send(int src, int dst, Message msg) {
  PDW_CHECK_EQ(src, self_);
  PDW_CHECK_GE(dst, 0);
  PDW_CHECK_LT(dst, nodes_);
  PDW_CHECK(!peers_.empty());
  if (fenced_[size_t(self_)].load(std::memory_order_relaxed))
    return SendStatus::kSrcDead;
  // Sends to a locally fenced peer vanish silently, same as the in-process
  // fabric's sends to a killed node.
  if (fenced_[size_t(dst)].load(std::memory_order_relaxed))
    return SendStatus::kOk;

  msg.src = src;  // stamped by the fabric, exactly as the in-process one does
  const uint32_t msg_id = next_msg_id_++;
  const size_t total = msg.payload.size();
  const uint16_t frag_count =
      uint16_t(total == 0 ? 1 : (total + frag_bytes_ - 1) / frag_bytes_);
  sockaddr_in sa = to_sockaddr(peers_[size_t(dst)]);

  uint8_t dgram[kDgramHeaderBytes + kFragBytes];
  put_u32(dgram + 0, kMagic);
  put_u32(dgram + 4, uint32_t(msg.src));
  put_u32(dgram + 8, uint32_t(msg.type));
  put_u32(dgram + 12, msg.seq);
  put_u16(dgram + 16, msg.aux);
  dgram[18] = msg.stream;
  dgram[19] = msg.bulk ? 1 : 0;
  put_u32(dgram + 20, msg.tseq);
  put_u32(dgram + 24, msg.crc);
  put_u32(dgram + 28, msg_id);
  put_u16(dgram + 34, frag_count);
  put_u32(dgram + 36, uint32_t(total));

  for (uint16_t i = 0; i < frag_count; ++i) {
    const size_t off = size_t(i) * frag_bytes_;
    const size_t n = std::min(frag_bytes_, total - off);
    put_u16(dgram + 32, i);
    put_u32(dgram + 40, uint32_t(off));
    put_u32(dgram + 44,
            crc32(std::span<const uint8_t>(dgram, kDgramHeaderBytes - 4)));
    if (n > 0) std::memcpy(dgram + kDgramHeaderBytes, msg.payload.data() + off, n);
    ::sendto(fd_, dgram, kDgramHeaderBytes + n, 0,
             reinterpret_cast<sockaddr*>(&sa), sizeof(sa));
    m_dgram_tx_->add();
  }

  {
    std::lock_guard<std::mutex> lock(traffic_mu_);
    traffic_.add(self_, dst, msg.wire_bytes());
    counters_[size_t(self_)].sent_bytes += msg.wire_bytes();
    ++counters_[size_t(self_)].sent_messages;
  }
  return SendStatus::kOk;
}

void SocketFabric::finish_message(Message msg) {
  if (msg.src >= 0 && msg.src < nodes_ &&
      fenced_[size_t(msg.src)].load(std::memory_order_relaxed))
    return;
  if (msg.bulk) {
    if (credits_ == 0) {
      // Flow-control overrun. The in-process backend reports kNoCredit to
      // the sender; a socket sender cannot see our buffer state, so the
      // overrun becomes an unacked receiver-side drop that retransmission
      // recovers once a buffer is posted.
      credit_drops_.fetch_add(1, std::memory_order_relaxed);
      m_rx_drops_->add();
      return;
    }
    --credits_;
  }
  {
    std::lock_guard<std::mutex> lock(traffic_mu_);
    traffic_.add(msg.src, self_, msg.wire_bytes());
    counters_[size_t(self_)].recv_bytes += msg.wire_bytes();
    ++counters_[size_t(self_)].recv_messages;
  }
  ready_.push_back(std::move(msg));
  queued_.fetch_add(1, std::memory_order_relaxed);
}

void SocketFabric::ingest(const uint8_t* data, size_t len) {
  if (len < kDgramHeaderBytes || get_u32(data + 0) != kMagic ||
      get_u32(data + 44) !=
          crc32(std::span<const uint8_t>(data, kDgramHeaderBytes - 4))) {
    m_rx_drops_->add();
    return;
  }
  Message msg;
  msg.src = int(get_u32(data + 4));
  msg.type = int(get_u32(data + 8));
  msg.seq = get_u32(data + 12);
  msg.aux = get_u16(data + 16);
  msg.stream = data[18];
  msg.bulk = data[19] != 0;
  msg.tseq = get_u32(data + 20);
  msg.crc = get_u32(data + 24);
  const uint32_t msg_id = get_u32(data + 28);
  const uint16_t frag_index = get_u16(data + 32);
  const uint16_t frag_count = get_u16(data + 34);
  const size_t total = get_u32(data + 36);
  const size_t frag_off = get_u32(data + 40);
  const size_t frag_bytes = len - kDgramHeaderBytes;
  if (msg.src < 0 || msg.src >= nodes_ || frag_count == 0 ||
      frag_index >= frag_count || frag_off + frag_bytes > total) {
    m_rx_drops_->add();
    return;
  }

  if (frag_count == 1) {
    if (frag_bytes != total) {
      m_rx_drops_->add();
      return;
    }
    msg.payload = mem::Bytes::copy_of({data + kDgramHeaderBytes, frag_bytes});
    finish_message(std::move(msg));
    return;
  }

  const uint64_t key = partial_key(msg.src, msg_id);
  auto it = partial_.find(key);
  if (it == partial_.end()) {
    // Evict stale partials (all their remaining fragments were lost; the
    // sender's retransmission arrives under a fresh msg_id) so the map
    // cannot grow without bound under sustained loss.
    if (partial_.size() >= 64) {
      const double t = now();
      for (auto p = partial_.begin(); p != partial_.end();) {
        if (t - p->second.first_seen > 2.0) {
          partial_count_.fetch_sub(1, std::memory_order_relaxed);
          p = partial_.erase(p);
        } else {
          ++p;
        }
      }
    }
    Reassembly r;
    r.body = mem::Bytes::alloc(total);
    r.have.assign(frag_count, false);
    r.missing = frag_count;
    r.header = msg;
    r.first_seen = now();
    it = partial_.emplace(key, std::move(r)).first;
    partial_count_.fetch_add(1, std::memory_order_relaxed);
  }
  Reassembly& r = it->second;
  if (r.body.size() != total || r.have.size() != frag_count) {
    // A msg_id collision with inconsistent framing: distrust both.
    partial_.erase(it);
    partial_count_.fetch_sub(1, std::memory_order_relaxed);
    m_rx_drops_->add();
    return;
  }
  if (r.have[frag_index]) return;  // duplicated fragment
  std::memcpy(r.body.mutable_data() + frag_off, data + kDgramHeaderBytes,
              frag_bytes);
  r.have[frag_index] = true;
  if (--r.missing == 0) {
    Message out = r.header;
    out.payload = std::move(r.body);
    partial_.erase(it);
    partial_count_.fetch_sub(1, std::memory_order_relaxed);
    finish_message(std::move(out));
  }
}

void SocketFabric::drain_socket() {
  uint8_t buf[kDgramHeaderBytes + kFragBytes];
  while (true) {
    const ssize_t n = ::recvfrom(fd_, buf, sizeof(buf), 0, nullptr, nullptr);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN: drained
    }
    m_dgram_rx_->add();
    ingest(buf, size_t(n));
  }
  drain_errqueue();
}

void SocketFabric::drain_errqueue() {
  while (true) {
    uint8_t dummy[1];
    sockaddr_in sa{};
    uint8_t control[256];
    iovec iov{dummy, sizeof(dummy)};
    msghdr mh{};
    mh.msg_name = &sa;
    mh.msg_namelen = sizeof(sa);
    mh.msg_iov = &iov;
    mh.msg_iovlen = 1;
    mh.msg_control = control;
    mh.msg_controllen = sizeof(control);
    if (::recvmsg(fd_, &mh, MSG_ERRQUEUE) < 0) break;
    for (cmsghdr* c = CMSG_FIRSTHDR(&mh); c; c = CMSG_NXTHDR(&mh, c)) {
      if (c->cmsg_level != IPPROTO_IP || c->cmsg_type != IP_RECVERR) continue;
      sock_extended_err ee;
      std::memcpy(&ee, CMSG_DATA(c), sizeof(ee));
      if (ee.ee_errno == ECONNREFUSED || ee.ee_errno == EHOSTUNREACH ||
          ee.ee_errno == ENETUNREACH) {
        // msg_name carries the original destination of the failed send.
        note_peer_error(ntohl(sa.sin_addr.s_addr), ntohs(sa.sin_port));
      }
    }
  }
}

void SocketFabric::note_peer_error(uint32_t ip, uint16_t port) {
  for (int n = 0; n < int(peers_.size()); ++n) {
    if (peers_[size_t(n)].ip != ip || peers_[size_t(n)].port != port) continue;
    m_peer_unreachable_->add();
    std::lock_guard<std::mutex> lock(peer_err_mu_);
    if (std::find(peer_errors_.begin(), peer_errors_.end(), n) ==
        peer_errors_.end())
      peer_errors_.push_back(n);
    return;
  }
}

std::vector<int> SocketFabric::take_peer_errors() {
  drain_errqueue();
  std::lock_guard<std::mutex> lock(peer_err_mu_);
  std::vector<int> out;
  out.swap(peer_errors_);
  return out;
}

RecvStatus SocketFabric::receive_for(int node, double timeout_s,
                                     Message* out) {
  PDW_CHECK_EQ(node, self_);
  const double deadline = now() + timeout_s;
  while (true) {
    if (fenced_[size_t(self_)].load(std::memory_order_relaxed))
      return RecvStatus::kDead;
    drain_socket();
    if (!ready_.empty()) {
      *out = std::move(ready_.front());
      ready_.pop_front();
      queued_.fetch_sub(1, std::memory_order_relaxed);
      return RecvStatus::kOk;
    }
    if (shutdown_.load(std::memory_order_acquire)) return RecvStatus::kShutdown;
    const double remaining = deadline - now();
    if (remaining <= 0) return RecvStatus::kTimeout;
    // Short poll slices so a cross-thread kill()/shutdown() is observed
    // promptly even with nothing on the wire.
    pollfd pfd{fd_, POLLIN, 0};
    ::poll(&pfd, 1, int(std::min(remaining, 0.02) * 1000) + 1);
  }
}

void SocketFabric::kill(int node) {
  PDW_CHECK_GE(node, 0);
  PDW_CHECK_LT(node, nodes_);
  fenced_[size_t(node)].store(true, std::memory_order_relaxed);
}

bool SocketFabric::is_dead(int node) const {
  PDW_CHECK_GE(node, 0);
  PDW_CHECK_LT(node, nodes_);
  return fenced_[size_t(node)].load(std::memory_order_relaxed);
}

NodeCounters SocketFabric::counters(int node) const {
  PDW_CHECK_GE(node, 0);
  PDW_CHECK_LT(node, nodes_);
  std::lock_guard<std::mutex> lock(traffic_mu_);
  return counters_[size_t(node)];
}

TrafficMatrix SocketFabric::traffic_matrix() const {
  std::lock_guard<std::mutex> lock(traffic_mu_);
  return traffic_;
}

bool SocketFabric::quiescent() const {
  return queued_.load(std::memory_order_relaxed) == 0 &&
         partial_count_.load(std::memory_order_relaxed) == 0;
}

void SocketFabric::shutdown() { shutdown_.store(true, std::memory_order_release); }

}  // namespace pdw::net
