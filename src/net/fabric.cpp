#include "net/fabric.h"

#include <chrono>

namespace pdw::net {

Fabric::Fabric(int nodes) {
  PDW_CHECK_GT(nodes, 0);
  mailboxes_.reserve(size_t(nodes));
  for (int i = 0; i < nodes; ++i)
    mailboxes_.push_back(std::make_unique<Mailbox>());
  traffic_.reset(nodes);
}

void Fabric::post_receive(int node) {
  Mailbox& mb = box(node);
  std::lock_guard<std::mutex> lock(mb.mu);
  ++mb.credits;
}

bool Fabric::enqueue(Mailbox& mb, Message msg) {
  if (msg.bulk) {
    if (mb.credits <= 0) return false;
    --mb.credits;
  }
  mb.counters.recv_bytes += msg.wire_bytes();
  ++mb.counters.recv_messages;
  ++mb.deliveries;
  mb.queue.push_back(std::move(msg));
  return true;
}

void Fabric::release_delayed(Mailbox& mb, bool force) {
  if (mb.delayed.empty()) return;
  for (auto it = mb.delayed.begin(); it != mb.delayed.end();) {
    if (force || --it->hold <= 0) {
      // A bulk message released into a node with no posted buffer is lost —
      // it arrived late, after the buffers were consumed (GM would drop it).
      if (!enqueue(mb, std::move(it->msg))) ++mb.counters.dropped_messages;
      it = mb.delayed.erase(it);
    } else {
      ++it;
    }
  }
}

SendStatus Fabric::send(int src, int dst, Message msg) {
  msg.src = src;
  const size_t bytes = msg.wire_bytes();

  {
    Mailbox& sender = box(src);
    std::lock_guard<std::mutex> lock(sender.mu);
    if (sender.dead) return SendStatus::kSrcDead;
    sender.counters.sent_bytes += bytes;
    ++sender.counters.sent_messages;
  }

  uint64_t link_ordinal;
  {
    std::lock_guard<std::mutex> lock(traffic_mu_);
    traffic_.add(src, dst, bytes);
    const uint64_t key =
        (uint64_t(size_t(src) * size_t(nodes()) + size_t(dst)) << 8) |
        msg.stream;
    link_ordinal = link_ordinal_[key]++;
  }

  FaultDecision fate;
  Mailbox& mb = box(dst);
  {
    std::unique_lock<std::mutex> lock(mb.mu);
    if (injector_)
      fate = injector_->decide(src, dst, link_ordinal, mb.deliveries,
                               msg.payload.size(), msg.stream);

    if (fate.crash_dst) {
      lock.unlock();
      kill(dst);
      return SendStatus::kOk;  // the message dies with the node
    }
    if (mb.dead) return SendStatus::kOk;  // silently lost; sender can't know
    if (fate.drop) {
      ++mb.counters.dropped_messages;
      return SendStatus::kOk;
    }
    if (fate.corrupt && injector_) {
      // Copy-on-write before flipping bytes: the sender's retransmit queue
      // pins the same block, and a retransmission must resend the *original*
      // bytes, not the corrupted ones.
      msg.payload.make_unique();
      injector_->corrupt_payload(src, dst, link_ordinal,
                                 msg.payload.mutable_span(), msg.stream);
    }

    // Flow control: a bulk message needs a posted buffer *now*. This is the
    // typed replacement for the old hard CHECK — the reliable layer retries.
    // The message never reached the wire (GM's sender-side token scheme), so
    // undo the traffic accounting; the attempt still consumed a link ordinal,
    // keeping fault schedules independent of flow-control timing.
    if (msg.bulk && mb.credits <= 0 && fate.delay_hold == 0) {
      lock.unlock();
      {
        Mailbox& sender = box(src);
        std::lock_guard<std::mutex> sl(sender.mu);
        sender.counters.sent_bytes -= bytes;
        --sender.counters.sent_messages;
      }
      {
        std::lock_guard<std::mutex> tl(traffic_mu_);
        traffic_.at(src, dst) -= bytes;
      }
      return SendStatus::kNoCredit;
    }

    Message dup_copy;
    if (fate.dup) dup_copy = msg;

    if (fate.delay_hold > 0) {
      mb.delayed.push_back(Delayed{std::move(msg), fate.delay_hold});
    } else {
      PDW_CHECK(enqueue(mb, std::move(msg)));
      release_delayed(mb, /*force=*/false);
    }
    if (fate.dup) enqueue(mb, std::move(dup_copy));  // dup w/o credit: lost
  }
  mb.cv.notify_all();
  return SendStatus::kOk;
}

bool Fabric::receive(int node, Message* out) {
  Mailbox& mb = box(node);
  std::unique_lock<std::mutex> lock(mb.mu);
  mb.cv.wait(lock, [&] {
    return !mb.queue.empty() || mb.dead || shutdown_.load();
  });
  if (mb.dead || mb.queue.empty()) return false;
  *out = std::move(mb.queue.front());
  mb.queue.pop_front();
  return true;
}

RecvStatus Fabric::receive_for(int node, double timeout_s, Message* out) {
  Mailbox& mb = box(node);
  std::unique_lock<std::mutex> lock(mb.mu);
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_s));
  const bool ready = mb.cv.wait_until(lock, deadline, [&] {
    return !mb.queue.empty() || mb.dead || shutdown_.load();
  });
  if (mb.dead) return RecvStatus::kDead;
  if (!mb.queue.empty()) {
    *out = std::move(mb.queue.front());
    mb.queue.pop_front();
    return RecvStatus::kOk;
  }
  if (shutdown_.load()) return RecvStatus::kShutdown;
  PDW_CHECK(!ready);
  // Timed out: any fault-delayed messages now arrive "late".
  if (!mb.delayed.empty()) {
    release_delayed(mb, /*force=*/true);
    if (!mb.queue.empty()) {
      *out = std::move(mb.queue.front());
      mb.queue.pop_front();
      return RecvStatus::kOk;
    }
  }
  return RecvStatus::kTimeout;
}

void Fabric::kill(int node) {
  Mailbox& mb = box(node);
  {
    std::lock_guard<std::mutex> lock(mb.mu);
    mb.dead = true;
    mb.queue.clear();
    mb.delayed.clear();
    mb.credits = 0;
  }
  mb.cv.notify_all();
}

bool Fabric::is_dead(int node) const {
  const Mailbox& mb = *mailboxes_[size_t(node)];
  std::lock_guard<std::mutex> lock(mb.mu);
  return mb.dead;
}

NodeCounters Fabric::counters(int node) const {
  const Mailbox& mb = *mailboxes_[size_t(node)];
  std::lock_guard<std::mutex> lock(mb.mu);
  return mb.counters;
}

TrafficMatrix Fabric::traffic_matrix() const {
  std::lock_guard<std::mutex> lock(traffic_mu_);
  return traffic_;
}

bool Fabric::quiescent() const {
  for (const auto& mb : mailboxes_) {
    std::lock_guard<std::mutex> lock(mb->mu);
    if (mb->dead) continue;  // a killed node's mailbox never drains
    if (!mb->queue.empty() || !mb->delayed.empty()) return false;
  }
  return true;
}

void Fabric::shutdown() {
  shutdown_.store(true);
  for (auto& mb : mailboxes_) {
    // Take each lock once so sleeping receivers observe the flag.
    std::lock_guard<std::mutex> lock(mb->mu);
  }
  for (auto& mb : mailboxes_) mb->cv.notify_all();
}

}  // namespace pdw::net
