#include "net/fabric.h"

namespace pdw::net {

Fabric::Fabric(int nodes) {
  PDW_CHECK_GT(nodes, 0);
  mailboxes_.reserve(size_t(nodes));
  for (int i = 0; i < nodes; ++i)
    mailboxes_.push_back(std::make_unique<Mailbox>());
  traffic_.assign(size_t(nodes) * nodes, 0);
}

void Fabric::post_receive(int node) {
  Mailbox& mb = box(node);
  std::lock_guard<std::mutex> lock(mb.mu);
  ++mb.credits;
}

void Fabric::send(int src, int dst, Message msg) {
  msg.src = src;
  const size_t bytes = msg.wire_bytes();
  {
    Mailbox& sender = box(src);
    std::lock_guard<std::mutex> lock(sender.mu);
    sender.counters.sent_bytes += bytes;
    ++sender.counters.sent_messages;
  }
  {
    std::lock_guard<std::mutex> lock(traffic_mu_);
    traffic_[size_t(src) * size_t(nodes()) + size_t(dst)] += bytes;
  }
  Mailbox& mb = box(dst);
  {
    std::lock_guard<std::mutex> lock(mb.mu);
    if (msg.bulk) {
      PDW_CHECK_GT(mb.credits, 0)
          << "bulk message to node " << dst
          << " without a posted receive buffer (flow-control violation)";
      --mb.credits;
    }
    mb.counters.recv_bytes += bytes;
    ++mb.counters.recv_messages;
    mb.queue.push_back(std::move(msg));
  }
  mb.cv.notify_one();
}

bool Fabric::receive(int node, Message* out) {
  Mailbox& mb = box(node);
  std::unique_lock<std::mutex> lock(mb.mu);
  mb.cv.wait(lock, [&] { return !mb.queue.empty() || shutdown_.load(); });
  if (mb.queue.empty()) return false;
  *out = std::move(mb.queue.front());
  mb.queue.pop_front();
  return true;
}

NodeCounters Fabric::counters(int node) const {
  const Mailbox& mb = *mailboxes_[size_t(node)];
  std::lock_guard<std::mutex> lock(mb.mu);
  return mb.counters;
}

std::vector<uint64_t> Fabric::traffic_matrix() const {
  std::lock_guard<std::mutex> lock(traffic_mu_);
  return traffic_;
}

void Fabric::shutdown() {
  shutdown_.store(true);
  for (auto& mb : mailboxes_) {
    // Take each lock once so sleeping receivers observe the flag.
    std::lock_guard<std::mutex> lock(mb->mu);
  }
  for (auto& mb : mailboxes_) mb->cv.notify_all();
}

}  // namespace pdw::net
