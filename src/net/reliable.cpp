#include "net/reliable.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/trace.h"

namespace pdw::net {

namespace {
uint64_t pending_key(int dst, uint32_t tseq) {
  return (uint64_t(uint32_t(dst)) << 32) | tseq;
}
}  // namespace

double derive_hole_timeout(const ReliableConfig& cfg) {
  // Sender's worst-case retransmission span: only after that long can a
  // missing tseq be presumed abandoned rather than still in flight. Under
  // adaptive RTO the first transmission timeout can already sit at the
  // clamp (srtt + 4 * rttvar <= rto_max_s), so the doubling series starts
  // there instead of at rto_initial_s.
  double span = 0;
  double rto = cfg.adaptive_rto ? cfg.rto_max_s : cfg.rto_initial_s;
  for (int i = 0; i <= cfg.max_retries; ++i) {
    span += rto;
    rto = std::min(rto * 2, cfg.rto_max_s);
  }
  return 4 * span + 0.1;
}

ReliableEndpoint::ReliableEndpoint(FabricBackend* fabric, int self,
                                   ReliableConfig cfg)
    : fabric_(fabric),
      self_(self),
      cfg_(cfg),
      epoch_(std::chrono::steady_clock::now()),
      next_tx_(size_t(fabric->nodes()), 0),
      rx_(size_t(fabric->nodes())),
      tx_peer_(size_t(fabric->nodes())) {
  if (cfg_.hole_timeout_s <= 0) cfg_.hole_timeout_s = derive_hole_timeout(cfg_);
  if (cfg_.rto_min_s <= 0) cfg_.rto_min_s = cfg_.rto_initial_s;
  obs::MetricsRegistry& reg = obs::registry_or_global(cfg_.metrics);
  const obs::Labels l{self_, -1};
  m_retransmits_ = &reg.counter(obs::family::kRetransmits, l);
  m_abandoned_ = &reg.counter(obs::family::kAbandonedSends, l);
  m_crc_drops_ = &reg.counter(obs::family::kCrcDrops, l);
  m_rtt_ns_ = &reg.histogram(obs::family::kRttNs, l);
  m_rtt_jitter_ns_ = &reg.histogram(obs::family::kRttJitterNs, l);
}

double ReliableEndpoint::srtt_s(int dst) const {
  const TxPeer& tp = tx_peer_[size_t(dst)];
  return tp.srtt < 0 ? 0 : tp.srtt;
}

double ReliableEndpoint::rto_s(int dst) const {
  const TxPeer& tp = tx_peer_[size_t(dst)];
  return tp.rto > 0 ? tp.rto : cfg_.rto_initial_s;
}

void ReliableEndpoint::on_ack(int src, uint32_t tseq) {
  auto it = pending_.find(pending_key(src, tseq));
  if (it == pending_.end()) return;
  const Pending& p = it->second;
  // Karn's rule: an acked message that was ever retransmitted is ambiguous
  // (which copy does the ack answer?) and contributes no RTT sample.
  if (cfg_.adaptive_rto && !p.retransmitted && p.first_tx > 0) {
    const double rtt = now() - p.first_tx;
    TxPeer& tp = tx_peer_[size_t(src)];
    if (tp.srtt < 0) {
      tp.srtt = rtt;
      tp.rttvar = rtt / 2;
    } else {
      // Jacobson/Karels: alpha = 1/8, beta = 1/4.
      const double err = rtt - tp.srtt;
      m_rtt_jitter_ns_->observe(uint64_t(std::abs(err) * 1e9));
      tp.rttvar += 0.25 * (std::abs(err) - tp.rttvar);
      tp.srtt += 0.125 * err;
    }
    tp.rto = std::clamp(tp.srtt + 4 * tp.rttvar, cfg_.rto_min_s, cfg_.rto_max_s);
    m_rtt_ns_->observe(uint64_t(rtt * 1e9));
    ++stats_.rtt_samples;
  }
  pending_.erase(it);
}

double ReliableEndpoint::now() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

void ReliableEndpoint::transmit(Pending& p) {
  const SendStatus st = fabric_->send(self_, p.dst, p.msg);
  if (st == SendStatus::kNoCredit) {
    // Receiver has not recycled a buffer yet; retry soon. Flow control is
    // not packet loss — on a busy host a receiver can legitimately sit
    // creditless for hundreds of milliseconds — so this burns retry budget
    // 64x slower. Still bounded: a receiver that never recycles cannot
    // wedge the sender forever, but a merely slow one is never falsely
    // declared suspect.
    ++stats_.no_credit;
    if (++p.nc_tries % 64 == 0) ++p.tries;
    p.deadline = now() + cfg_.rto_initial_s;
    return;
  }
  ++p.tries;
  p.deadline = now() + p.rto;
  p.rto = std::min(p.rto * 2, cfg_.rto_max_s);
}

void ReliableEndpoint::send(int dst, Message msg) {
  msg.tseq = next_tx_[size_t(dst)]++;
  msg.crc = crc32(msg.payload);
  Pending p;
  p.dst = dst;
  p.rto = rto_s(dst);
  p.first_tx = now();
  p.msg = std::move(msg);
  ++stats_.sent;
  transmit(p);
  pending_.emplace(pending_key(dst, p.msg.tseq), std::move(p));
}

void ReliableEndpoint::send_unreliable(int dst, Message msg) {
  msg.tseq = kUnreliableSeq;
  msg.crc = crc32(msg.payload);
  fabric_->send(self_, dst, std::move(msg));
}

double ReliableEndpoint::service_deadlines() {
  const double t = now();
  double next = std::numeric_limits<double>::infinity();
  for (auto it = pending_.begin(); it != pending_.end();) {
    Pending& p = it->second;
    if (p.deadline > t) {
      next = std::min(next, p.deadline);
      ++it;
      continue;
    }
    if (p.tries > cfg_.max_retries) {
      ++stats_.abandoned;
      m_abandoned_->add();
      PDW_TRACE_INSTANT(obs::span::kAbandon, self_, p.msg.seq);
      abandoned_.push_back(
          AbandonedSend{p.dst, p.msg.type, p.msg.seq, p.msg.aux});
      it = pending_.erase(it);
      continue;
    }
    if (p.tries > 0) {
      ++stats_.retransmits;
      m_retransmits_->add();
      p.retransmitted = true;
      PDW_TRACE_INSTANT(obs::span::kRetransmit, self_, p.msg.seq);
    }
    transmit(p);
    next = std::min(next, p.deadline);
    ++it;
  }
  return next;
}

bool ReliableEndpoint::handle(Message msg) {
  if (msg.type == kTransportAck) {
    on_ack(msg.src, msg.seq);
    return false;
  }
  if (msg.tseq == kUnreliableSeq) {
    // Fire-and-forget: CRC-screen and deliver out of band.
    if (crc32(msg.payload) != msg.crc) {
      ++stats_.crc_drops;
      m_crc_drops_->add();
      return false;
    }
    ready_.push_back(std::move(msg));
    return true;
  }

  // Reliable path. Corrupt payloads are dropped without an ack — the sender
  // will retransmit an intact copy.
  if (crc32(msg.payload) != msg.crc) {
    ++stats_.crc_drops;
    m_crc_drops_->add();
    if (msg.bulk) fabric_->post_receive(self_);  // return the consumed buffer
    return false;
  }

  // Ack receipt (even for duplicates, so a lost ack does not retransmit
  // forever).
  Message ack;
  ack.type = kTransportAck;
  ack.seq = msg.tseq;
  ack.tseq = kUnreliableSeq;
  fabric_->send(self_, msg.src, std::move(ack));

  PeerRx& rx = rx_[size_t(msg.src)];
  if (msg.tseq < rx.next_expected || rx.reorder.count(msg.tseq)) {
    ++stats_.dup_drops;
    if (msg.bulk) fabric_->post_receive(self_);
    return false;
  }
  if (msg.tseq != rx.next_expected) ++stats_.reordered;
  rx.reorder.emplace(msg.tseq, std::move(msg));

  bool delivered = false;
  while (!rx.reorder.empty() &&
         rx.reorder.begin()->first == rx.next_expected) {
    ready_.push_back(std::move(rx.reorder.begin()->second));
    rx.reorder.erase(rx.reorder.begin());
    ++rx.next_expected;
    delivered = true;
  }
  // Arm the hole timer whenever the buffer head is stuck waiting for a
  // tseq that may never arrive; a further out-of-order arrival must not
  // reset a timer that is already running.
  if (rx.reorder.empty())
    rx.blocked_since = -1;
  else if (delivered || rx.blocked_since < 0)
    rx.blocked_since = now();
  return delivered;
}

void ReliableEndpoint::service_holes() {
  const double t = now();
  for (PeerRx& rx : rx_) {
    if (rx.blocked_since < 0 || t - rx.blocked_since < cfg_.hole_timeout_s)
      continue;
    // The sender must have abandoned next_expected (and any gap after it):
    // a live retransmission would have landed within hole_timeout_s. Skip
    // to what we actually hold and deliver it; a late copy of the skipped
    // tseq now falls in the duplicate path and is dropped + acked.
    ++stats_.holes;
    rx.next_expected = rx.reorder.begin()->first;
    while (!rx.reorder.empty() &&
           rx.reorder.begin()->first == rx.next_expected) {
      ready_.push_back(std::move(rx.reorder.begin()->second));
      rx.reorder.erase(rx.reorder.begin());
      ++rx.next_expected;
    }
    rx.blocked_since = rx.reorder.empty() ? -1 : t;
  }
}

ReliableEndpoint::Status ReliableEndpoint::recv(Message* out,
                                                double timeout_s) {
  const double caller_deadline = now() + timeout_s;
  while (true) {
    if (!ready_.empty()) {
      *out = std::move(ready_.front());
      ready_.pop_front();
      ++stats_.delivered;
      return Status::kMessage;
    }
    const double next_retx = service_deadlines();
    service_holes();
    if (!ready_.empty()) continue;
    const double t = now();
    if (t >= caller_deadline) return Status::kTimeout;
    const double wait =
        std::max(0.0, std::min(caller_deadline, next_retx) - t) + 1e-4;

    Message msg;
    switch (fabric_->receive_for(self_, wait, &msg)) {
      case RecvStatus::kOk:
        handle(std::move(msg));
        break;
      case RecvStatus::kTimeout:
        break;  // loop: service deadlines / caller timeout
      case RecvStatus::kShutdown:
        return Status::kShutdown;
      case RecvStatus::kDead:
        return Status::kDead;
    }
  }
}

void ReliableEndpoint::forget_peer(int dst) {
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->second.dst == dst)
      it = pending_.erase(it);
    else
      ++it;
  }
}

std::vector<AbandonedSend> ReliableEndpoint::take_abandoned() {
  std::vector<AbandonedSend> out;
  out.swap(abandoned_);
  return out;
}

}  // namespace pdw::net
