#include "net/impair.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <queue>

#include "common/check.h"

namespace pdw::net {

namespace {

// splitmix64: the decision for datagram n toward front i is a pure function
// of (seed, i, n, salt) — reproducible regardless of arrival timing.
uint64_t mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

double uniform01(uint64_t seed, uint64_t front, uint64_t ordinal,
                 uint64_t salt) {
  const uint64_t h = mix64(seed ^ mix64(front * 0x100000001b3ull) ^
                           mix64(ordinal) ^ mix64(salt * 0x9e3779b9ull));
  return double(h >> 11) * 0x1.0p-53;
}

sockaddr_in to_sockaddr(Endpoint ep) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(ep.ip);
  sa.sin_port = htons(ep.port);
  return sa;
}

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

constexpr size_t kMaxDgram = 64 * 1024;

}  // namespace

ImpairProxy::ImpairProxy(std::vector<Endpoint> real, ImpairConfig cfg)
    : real_(std::move(real)), cfg_(cfg), ordinal_(real_.size(), 0) {
  for (size_t i = 0; i < real_.size(); ++i) {
    const int fd = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK, 0);
    PDW_CHECK_GE(fd, 0);
    int buf = 4 << 20;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &buf, sizeof(buf));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &buf, sizeof(buf));
    sockaddr_in sa = to_sockaddr(Endpoint{kLoopbackIp, 0});
    PDW_CHECK_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)), 0);
    socklen_t len = sizeof(sa);
    PDW_CHECK_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&sa), &len),
                 0);
    fds_.push_back(fd);
    fronts_.push_back(
        Endpoint{ntohl(sa.sin_addr.s_addr), ntohs(sa.sin_port)});
  }
  thread_ = std::thread([this] { run(); });
}

ImpairProxy::~ImpairProxy() {
  stop();
  for (int fd : fds_) ::close(fd);
}

void ImpairProxy::stop() {
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
}

ImpairProxy::Stats ImpairProxy::stats() const {
  return Stats{forwarded_.load(), dropped_.load(), duplicated_.load(),
               delayed_.load()};
}

void ImpairProxy::run() {
  struct Held {
    double release;
    size_t front;
    std::vector<uint8_t> data;

    bool operator>(const Held& o) const { return release > o.release; }
  };
  std::priority_queue<Held, std::vector<Held>, std::greater<Held>> held;

  std::vector<pollfd> pfds(fds_.size());
  for (size_t i = 0; i < fds_.size(); ++i)
    pfds[i] = pollfd{fds_[i], POLLIN, 0};
  std::vector<uint8_t> buf(kMaxDgram);

  while (!stop_.load(std::memory_order_acquire)) {
    double wait = 0.01;
    const double t = now_s();
    while (!held.empty() && held.top().release <= t) {
      const Held& h = held.top();
      sockaddr_in to = to_sockaddr(real_[h.front]);
      ::sendto(fds_[h.front], h.data.data(), h.data.size(), 0,
               reinterpret_cast<sockaddr*>(&to), sizeof(to));
      forwarded_.fetch_add(1, std::memory_order_relaxed);
      held.pop();
    }
    if (!held.empty())
      wait = std::clamp(held.top().release - now_s(), 0.0, wait);

    ::poll(pfds.data(), nfds_t(pfds.size()), int(wait * 1000) + 1);

    for (size_t i = 0; i < fds_.size(); ++i) {
      while (true) {
        const ssize_t n =
            ::recvfrom(fds_[i], buf.data(), buf.size(), 0, nullptr, nullptr);
        if (n < 0) {
          if (errno == EINTR) continue;
          break;
        }
        const uint64_t ord = ordinal_[i]++;
        if (uniform01(cfg_.seed, i, ord, 1) < cfg_.loss) {
          dropped_.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        if (uniform01(cfg_.seed, i, ord, 3) < cfg_.delay) {
          delayed_.fetch_add(1, std::memory_order_relaxed);
          held.push(Held{now_s() + cfg_.delay_s, i,
                         std::vector<uint8_t>(buf.begin(), buf.begin() + n)});
          continue;
        }
        sockaddr_in to = to_sockaddr(real_[i]);
        const int copies =
            uniform01(cfg_.seed, i, ord, 2) < cfg_.dup ? 2 : 1;
        for (int c = 0; c < copies; ++c) {
          ::sendto(fds_[i], buf.data(), size_t(n), 0,
                   reinterpret_cast<sockaddr*>(&to), sizeof(to));
          forwarded_.fetch_add(1, std::memory_order_relaxed);
        }
        if (copies == 2) duplicated_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
}

}  // namespace pdw::net
