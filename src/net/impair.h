// Deterministic UDP impairment proxy: netem for the loopback wall, without
// root or tc. One proxy socket fronts each real endpoint; a datagram sent
// to front i is dropped / duplicated / delayed by a seeded per-ordinal
// decision, then forwarded to the real endpoint i. SocketFabric instances
// are simply configured with the proxy's front addresses instead of the
// real map, so loss on the socket path is *physically real* to the
// transport (the datagram never arrives) while the schedule stays
// reproducible: the fate of the n-th datagram toward a given endpoint
// depends only on (seed, endpoint index, n), never on timing.
//
// Receivers identify senders by the framing header's src field, not the
// datagram source address, so forwarding from the proxy's own socket is
// transparent.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "net/socket_fabric.h"

namespace pdw::net {

struct ImpairConfig {
  uint64_t seed = 1;
  double loss = 0;       // P(datagram dropped)
  double dup = 0;        // P(datagram forwarded twice)
  double delay = 0;      // P(datagram held back)
  double delay_s = 0.002;  // how long a held datagram waits (reorders it
                           // past everything forwarded in the meantime)
};

class ImpairProxy {
 public:
  // Starts the forwarding thread immediately.
  ImpairProxy(std::vector<Endpoint> real, ImpairConfig cfg);
  ~ImpairProxy();

  ImpairProxy(const ImpairProxy&) = delete;
  ImpairProxy& operator=(const ImpairProxy&) = delete;

  // The front addresses, index-aligned with the real map — hand these to
  // SocketFabric::set_peers() / the fault schedule under test.
  const std::vector<Endpoint>& proxied() const { return fronts_; }

  struct Stats {
    uint64_t forwarded = 0;
    uint64_t dropped = 0;
    uint64_t duplicated = 0;
    uint64_t delayed = 0;
  };
  Stats stats() const;

  // Stop forwarding and join the thread (also done by the destructor).
  void stop();

 private:
  void run();

  std::vector<Endpoint> real_;
  std::vector<Endpoint> fronts_;
  std::vector<int> fds_;  // one front socket per real endpoint
  ImpairConfig cfg_;
  std::vector<uint64_t> ordinal_;  // per-front datagram counter

  std::atomic<uint64_t> forwarded_{0};
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> duplicated_{0};
  std::atomic<uint64_t> delayed_{0};

  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace pdw::net
