#include "net/fault.h"

#include <algorithm>

#include "common/stats.h"

namespace pdw::net {

namespace {

// Table-driven CRC-32 (IEEE, reflected), table built on first use.
const uint32_t* crc_table() {
  static const auto table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

uint32_t crc32(std::span<const uint8_t> data) {
  const uint32_t* t = crc_table();
  uint32_t c = 0xFFFFFFFFu;
  for (uint8_t b : data) c = t[(c ^ b) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

uint64_t FaultInjector::key_stream(int src, int dst, uint64_t ordinal,
                                   uint64_t salt, uint8_t stream) const {
  // Mix the link identity, stream tag and ordinal into one 64-bit key;
  // SplitMix64 then whitens it. Deterministic per (seed, src, dst, stream,
  // ordinal, salt). Stream 0 contributes nothing, so single-stream
  // schedules key exactly as they did before streams existed.
  uint64_t key = seed_;
  key ^= 0x9E3779B97F4A7C15ULL * (uint64_t(uint32_t(src)) + 1);
  key ^= 0xC2B2AE3D27D4EB4FULL * (uint64_t(uint32_t(dst)) + 1);
  key ^= 0x165667B19E3779F9ULL * (ordinal + 1);
  key ^= salt * 0x27D4EB2F165667C5ULL;
  if (stream) key ^= 0x85EBCA77C2B2AE63ULL * uint64_t(stream);
  return SplitMix64(key).next();
}

FaultDecision FaultInjector::decide(int src, int dst, uint64_t link_ordinal,
                                    uint64_t dst_deliveries,
                                    size_t payload_size,
                                    uint8_t stream) const {
  FaultDecision d;

  // Exact scheduled events first.
  for (const FaultEvent& ev : events_) {
    switch (ev.kind) {
      case FaultEvent::Kind::kCrash:
        if (ev.dst == dst && dst_deliveries == ev.at_ordinal) d.crash_dst = true;
        break;
      case FaultEvent::Kind::kStall:
        if (ev.dst == dst && dst_deliveries >= ev.at_ordinal &&
            dst_deliveries < ev.at_ordinal + uint64_t(ev.param))
          d.delay_hold = std::max(d.delay_hold, std::max(1, ev.param));
        break;
      case FaultEvent::Kind::kDrop:
      case FaultEvent::Kind::kDuplicate:
      case FaultEvent::Kind::kCorrupt:
      case FaultEvent::Kind::kDelay: {
        const bool match = (ev.src < 0 || ev.src == src) && ev.dst == dst &&
                           (ev.stream < 0 || ev.stream == int(stream)) &&
                           link_ordinal == ev.at_ordinal;
        if (!match) break;
        if (ev.kind == FaultEvent::Kind::kDrop) d.drop = true;
        if (ev.kind == FaultEvent::Kind::kDuplicate) d.dup = true;
        if (ev.kind == FaultEvent::Kind::kCorrupt) d.corrupt = true;
        if (ev.kind == FaultEvent::Kind::kDelay)
          d.delay_hold = std::max(d.delay_hold, std::max(1, ev.param));
        break;
      }
    }
  }

  // Seeded per-message probabilities.
  if (rates_.drop > 0 || rates_.dup > 0 || rates_.corrupt > 0 ||
      rates_.delay > 0) {
    SplitMix64 rng(key_stream(src, dst, link_ordinal, /*salt=*/1, stream));
    if (rng.next_double() < rates_.drop) d.drop = true;
    if (rng.next_double() < rates_.dup) d.dup = true;
    if (rng.next_double() < rates_.corrupt &&
        payload_size >= rates_.min_corrupt_size && payload_size > 0)
      d.corrupt = true;
    if (rng.next_double() < rates_.delay)
      d.delay_hold = std::max(d.delay_hold, rates_.delay_hold);
  }

  if (d.drop) {  // drop dominates: nothing else can happen to a lost message
    d.dup = d.corrupt = false;
    d.delay_hold = 0;
  }
  return d;
}

void FaultInjector::corrupt_payload(int src, int dst, uint64_t link_ordinal,
                                    std::span<uint8_t> payload,
                                    uint8_t stream) const {
  if (payload.empty()) return;
  SplitMix64 rng(key_stream(src, dst, link_ordinal, /*salt=*/2, stream));
  const int n = std::max(1, rates_.corrupt_bytes);
  for (int i = 0; i < n; ++i) {
    const size_t pos = size_t(rng.next() % payload.size());
    payload[pos] ^= uint8_t(1u + rng.next_below(255));  // never a no-op flip
  }
}

}  // namespace pdw::net
