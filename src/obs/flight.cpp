#include "obs/flight.h"

#include <csignal>
#include <cstdio>

#include "obs/export.h"

namespace pdw::obs {

void FlightRecorder::configure(const Config& cfg) {
  std::lock_guard<std::mutex> lock(mu_);
  cfg_ = cfg;
  wire_.assign(std::max<size_t>(cfg.max_wire, 16), WireEvent{});
  wire_written_ = 0;
  dumps_ = 0;
  const bool on = !cfg.dir.empty();
  if (on && !tracer().enabled()) tracer().enable(size_t(1) << 14);
  enabled_.store(on, std::memory_order_relaxed);
}

Tracer& FlightRecorder::tracer() const {
  return cfg_.tracer ? *cfg_.tracer : Tracer::global();
}

void FlightRecorder::note_wire_slow(bool tx, int self, int peer, int msg_type,
                                    uint32_t seq, uint32_t aux, size_t bytes) {
  WireEvent e;
  e.t_ns = tracer().now_ns();
  e.seq = seq;
  e.aux = aux;
  e.bytes = uint32_t(bytes);
  e.self = int16_t(self);
  e.peer = int16_t(peer);
  e.msg_type = uint8_t(msg_type);
  e.tx = tx;
  std::lock_guard<std::mutex> lock(mu_);
  if (wire_.empty()) return;
  wire_[size_t(wire_written_ % wire_.size())] = e;
  ++wire_written_;
}

std::string FlightRecorder::dump(const std::string& reason) {
  if (!enabled()) return {};
  Config cfg;
  std::vector<WireEvent> wire;
  uint64_t dump_seq = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (dumps_ >= cfg_.max_dumps) return {};
    dump_seq = dumps_++;
    cfg = cfg_;
    const size_t n = size_t(std::min<uint64_t>(wire_written_, wire_.size()));
    const size_t first =
        wire_written_ > wire_.size() ? size_t(wire_written_ % wire_.size()) : 0;
    wire.reserve(n);
    for (size_t i = 0; i < n; ++i)
      wire.push_back(wire_[(first + i) % wire_.size()]);
  }

  std::vector<TraceEvent> spans = tracer().collect();
  if (spans.size() > cfg.max_spans)
    spans.erase(spans.begin(), spans.end() - long(cfg.max_spans));

  char path[512];
  std::snprintf(path, sizeof(path), "%s/flight_node%d_%llu.json",
                cfg.dir.c_str(), cfg.node,
                static_cast<unsigned long long>(dump_seq));
  std::FILE* out = std::fopen(path, "w");
  if (!out) return {};
  std::fprintf(out, "{\"node\":%d,\"reason\":\"%s\",\"t_ns\":%llu,\n",
               cfg.node, reason.c_str(),
               static_cast<unsigned long long>(tracer().now_ns()));
  std::fprintf(out, "\"spans\":[");
  for (size_t i = 0; i < spans.size(); ++i) {
    const TraceEvent& e = spans[i];
    std::fprintf(out,
                 "%s\n{\"name\":\"%s\",\"ph\":\"%c\",\"pid\":%d,\"tid\":%d,"
                 "\"ts_ns\":%llu,\"dur_ns\":%llu,\"pic\":%lld}",
                 i ? "," : "", e.name ? e.name : "", e.ph, e.pid, e.tid,
                 static_cast<unsigned long long>(e.ts_ns),
                 static_cast<unsigned long long>(e.dur_ns),
                 e.arg_pic == Tracer::kNoPic ? -1LL : (long long)e.arg_pic);
  }
  std::fprintf(out, "],\n\"wire\":[");
  for (size_t i = 0; i < wire.size(); ++i) {
    const WireEvent& w = wire[i];
    std::fprintf(out,
                 "%s\n{\"t_ns\":%llu,\"dir\":\"%s\",\"self\":%d,\"peer\":%d,"
                 "\"type\":%u,\"seq\":%u,\"aux\":%u,\"bytes\":%u}",
                 i ? "," : "", static_cast<unsigned long long>(w.t_ns),
                 w.tx ? "tx" : "rx", w.self, w.peer, unsigned(w.msg_type),
                 w.seq, w.aux, w.bytes);
  }
  std::fprintf(out, "],\n\"metrics\":\n");
  const std::string metrics =
      metrics_json(registry_or_global(cfg.metrics).snapshot());
  std::fwrite(metrics.data(), 1, metrics.size(), out);
  std::fprintf(out, "}\n");
  std::fclose(out);
  registry_or_global(cfg.metrics).counter(family::kFlightDumps).add(1);
  return path;
}

uint64_t FlightRecorder::dumps_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dumps_;
}

FlightRecorder& FlightRecorder::global() {
  static FlightRecorder* rec = new FlightRecorder();  // never destroyed
  return *rec;
}

namespace {

void flight_signal_handler(int sig) {
  char reason[32];
  std::snprintf(reason, sizeof(reason), "signal:%d", sig);
  FlightRecorder::global().dump(reason);
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

}  // namespace

void FlightRecorder::install_signal_handlers() {
  for (int sig : {SIGTERM, SIGINT, SIGSEGV, SIGABRT})
    std::signal(sig, flight_signal_handler);
}

}  // namespace pdw::obs
