// Cluster telemetry sideband: collector half.
//
// One Collector per wall gathers the TelemetryExporter streams of every
// wall_node process: it answers clock probes with its own receive/send
// stamps (so each exporter can estimate its offset into the collector's
// clock domain), folds the per-process metric absolutes into one merged
// MetricsSnapshot (the same type wall_top already renders), and keeps every
// received span so write_merged_trace() can emit ONE Perfetto-loadable
// Chrome trace of the whole multi-process wall: per-process span timestamps
// are rebased by that process's reported clock offset, and flow events are
// synthesized from the picture tags to link root -> splitter -> decoder
// across pids.
//
// Hosted by `wall_top --remote` (live dashboard + trace at exit) or
// in-process by tests and bench_socket_wall.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "obs/metrics.h"
#include "obs/telemetry.h"

namespace pdw::obs {

struct CollectorConfig {
  uint16_t port = 0;  // 0: ephemeral (endpoint() reports the bound port)
  // Bound on retained spans per process; oldest are discarded first.
  size_t max_spans_per_process = size_t(1) << 20;
};

class Collector {
 public:
  explicit Collector(CollectorConfig cfg = {});
  ~Collector();
  Collector(const Collector&) = delete;
  Collector& operator=(const Collector&) = delete;

  bool ok() const { return fd_ >= 0; }
  TelemetryEndpoint endpoint() const { return local_; }

  // Background receive loop (answers probes promptly — accurate RTTs need
  // this). stop() joins; idempotent.
  void start();
  void stop();
  // Drain pending datagrams on the caller's thread instead (tests).
  void poll();

  // Collector clock: ns since construction; the domain all merged
  // timestamps land in.
  uint64_t now_ns() const;

  struct ProcessInfo {
    uint64_t token = 0;
    uint32_t os_pid = 0;
    std::vector<int> nodes;  // proto node ids hosted by the process
    bool bye = false;
    bool offset_valid = false;
    int64_t offset_ns = 0;  // collector = process + offset
    uint64_t min_rtt_ns = 0;
    uint32_t clock_samples = 0;
    uint64_t datagrams = 0;
    uint64_t bytes = 0;
    uint64_t span_events = 0;
    uint64_t seq_gaps = 0;     // frames lost on the sideband
    uint64_t last_seen_ns = 0;  // collector clock
  };
  std::vector<ProcessInfo> processes() const;

  // Wall shape from Hello records (0 until the first Hello).
  int k() const;
  int tiles() const;
  int nodes_expected() const;
  // Sorted union of hosted node ids across processes.
  std::vector<int> nodes_seen() const;
  bool all_nodes_seen() const;  // every id in [0, nodes_expected) announced
  bool all_bye() const;         // every known process said goodbye

  // Per-process metric absolutes folded into one snapshot: counters and
  // histograms sum across processes, a gauge takes the per-label sum (label
  // sets are disjoint per node in practice).
  MetricsSnapshot merged_metrics() const;

  uint64_t datagrams_received() const;
  uint64_t bytes_received() const;

  // Write the merged multi-process Chrome trace. Returns false on I/O error.
  bool write_merged_trace(const std::string& path) const;

 private:
  struct Proc {
    ProcessInfo info;
    bool seq_seen = false;
    uint32_t last_seq = 0;
    std::map<std::tuple<std::string, int, int, int>, MetricRecord> metrics;
    std::vector<SpanRecord> spans;  // local (sender) clock domain
  };

  void handle_datagram(const uint8_t* data, size_t len, uint32_t src_ip,
                       uint16_t src_port);
  void run_loop();

  CollectorConfig cfg_;
  int fd_ = -1;
  TelemetryEndpoint local_{};
  std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex mu_;
  std::map<uint64_t, Proc> procs_;
  int k_ = 0, tiles_ = 0, nodes_expected_ = 0;
  uint64_t datagrams_ = 0, bytes_ = 0;

  std::thread thread_;
  std::atomic<bool> stop_{false};
  bool started_ = false;
};

}  // namespace pdw::obs
