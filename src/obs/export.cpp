#include "obs/export.h"

#include <cinttypes>
#include <cstring>
#include <set>

#include "common/text_table.h"

namespace pdw::obs {
namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (uint8_t(c) < 0x20)
          out += format("\\u%04x", c);
        else
          out += c;
    }
  }
  return out;
}

std::string label_text(const Labels& l) {
  std::string out;
  if (l.node >= 0) out += format("node=%d", l.node);
  if (l.stream >= 0) {
    if (!out.empty()) out += ",";
    out += format("stream=%d", l.stream);
  }
  return out;
}

}  // namespace

bool write_chrome_trace(const Tracer& tracer, const std::string& path,
                        const std::function<std::string(int)>& pid_name) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;

  const std::vector<TraceEvent> events = tracer.collect();
  std::fputs("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n", f);

  bool first = true;
  if (pid_name) {
    std::set<int> pids;
    for (const TraceEvent& e : events) pids.insert(int(e.pid));
    for (int pid : pids) {
      std::fprintf(f,
                   "%s{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,"
                   "\"tid\":0,\"args\":{\"name\":\"%s\"}}",
                   first ? "" : ",\n", pid,
                   json_escape(pid_name(pid)).c_str());
      first = false;
    }
  }

  for (const TraceEvent& e : events) {
    if (!e.name) continue;
    std::fprintf(f, "%s{\"name\":\"%s\",\"ph\":\"%c\",\"ts\":%.3f",
                 first ? "" : ",\n", e.name, e.ph, double(e.ts_ns) / 1e3);
    first = false;
    if (e.ph == 'X') std::fprintf(f, ",\"dur\":%.3f", double(e.dur_ns) / 1e3);
    if (e.ph == 'i') std::fputs(",\"s\":\"t\"", f);
    std::fprintf(f, ",\"pid\":%d,\"tid\":%d", int(e.pid), int(e.tid));
    if (e.arg_pic != Tracer::kNoPic)
      std::fprintf(f, ",\"args\":{\"pic\":%u}", e.arg_pic);
    std::fputs("}", f);
  }

  std::fprintf(f, "\n],\"otherData\":{\"droppedEvents\":%" PRIu64 "}}\n",
               tracer.dropped());
  const bool ok = std::fclose(f) == 0;
  return ok;
}

std::string metrics_json(const MetricsSnapshot& snap) {
  std::string out = "{\"metrics\":[\n";
  bool first = true;
  for (const MetricValue& v : snap.values) {
    if (!first) out += ",\n";
    first = false;
    out += format("{\"family\":\"%s\",\"node\":%d,\"stream\":%d",
                  json_escape(v.family).c_str(), v.labels.node,
                  v.labels.stream);
    switch (v.kind) {
      case MetricKind::kCounter:
        out += format(",\"kind\":\"counter\",\"value\":%" PRIu64, v.count);
        break;
      case MetricKind::kGauge:
        out += format(",\"kind\":\"gauge\",\"value\":%" PRId64, v.gauge);
        break;
      case MetricKind::kHistogram:
        out += format(",\"kind\":\"histogram\",\"count\":%" PRIu64
                      ",\"sum\":%" PRIu64 ",\"p50\":%" PRIu64
                      ",\"p95\":%" PRIu64 ",\"p99\":%" PRIu64 ",\"buckets\":[",
                      v.count, v.sum, v.p50, v.p95, v.p99);
        for (size_t i = 0; i < v.buckets.size(); ++i)
          out += format("%s[%" PRIu64 ",%" PRIu64 "]", i ? "," : "",
                        v.buckets[i].first, v.buckets[i].second);
        out += "]";
        break;
    }
    out += "}";
  }
  out += "\n]}\n";
  return out;
}

bool write_metrics_json(const MetricsSnapshot& snap, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const std::string body = metrics_json(snap);
  const bool wrote = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  return std::fclose(f) == 0 && wrote;
}

void metrics_report(const MetricsSnapshot& snap, std::FILE* out) {
  TextTable t({"metric", "labels", "value", "p50", "p95", "p99"});
  for (const MetricValue& v : snap.values) {
    switch (v.kind) {
      case MetricKind::kCounter:
        t.add_row({v.family, label_text(v.labels),
                   format("%" PRIu64, v.count), "", "", ""});
        break;
      case MetricKind::kGauge:
        t.add_row({v.family, label_text(v.labels),
                   format("%" PRId64, v.gauge), "", "", ""});
        break;
      case MetricKind::kHistogram:
        t.add_row({v.family, label_text(v.labels),
                   format("n=%" PRIu64, v.count), format("%" PRIu64, v.p50),
                   format("%" PRIu64, v.p95), format("%" PRIu64, v.p99)});
        break;
    }
  }
  t.print(out);
}

std::map<int, StageShare> fig7_breakdown(const Tracer& tracer, int pid_min,
                                         int pid_max, int pid_offset) {
  std::map<int, StageShare> shares;
  for (const auto& [key, agg] : tracer.aggregate()) {
    const auto& [name, pid] = key;
    if (pid < pid_min || pid > pid_max) continue;
    StageShare& s = shares[pid - pid_offset];
    double* slot = nullptr;
    if (name == span::kDecodeSp)
      slot = &s.work;
    else if (name == span::kServeSp)
      slot = &s.serve;
    else if (name == span::kRecvSp)
      slot = &s.receive;
    else if (name == span::kWaitHalo)
      slot = &s.wait;
    else if (name == span::kAckPic)
      slot = &s.ack;
    if (!slot) continue;
    *slot += double(agg.total_ns);
    s.total_ns += agg.total_ns;
  }
  for (auto& [pid, s] : shares) {
    if (s.total_ns == 0) continue;
    const double total = double(s.total_ns);
    s.work /= total;
    s.serve /= total;
    s.receive /= total;
    s.wait /= total;
    s.ack /= total;
  }
  return shares;
}

void print_fig7(const std::map<int, StageShare>& shares, std::FILE* out) {
  TextTable t({"node", "Work%", "Serve%", "Receive%", "Wait%", "Ack%",
               "total_ms"});
  for (const auto& [pid, s] : shares)
    t.add_row({format("%d", pid), format("%.1f", 100 * s.work),
               format("%.1f", 100 * s.serve), format("%.1f", 100 * s.receive),
               format("%.1f", 100 * s.wait), format("%.1f", 100 * s.ack),
               format("%.2f", double(s.total_ns) / 1e6)});
  t.print(out);
}

}  // namespace pdw::obs
