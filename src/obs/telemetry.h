// Cluster telemetry sideband: exporter half.
//
// Every wall_node process runs one TelemetryExporter that periodically ships
// its MetricsRegistry (changed values only, sent as absolutes so UDP loss or
// duplication never corrupts a counter) and the new tail of its span Tracer
// to a Collector (obs/collector.h) over a tiny versioned UDP wire format.
// Each flush also runs one NTP-style clock probe: the exporter stamps t0,
// the collector echoes it with its own receive/send stamps (t1, t2), and the
// exporter stamps arrival (t3). offset = ((t1-t0)+(t2-t3))/2 maps this
// process's tracer clock domain onto the collector's; the minimum-RTT sample
// wins (its error is bounded by rtt/2), and a Karn filter — only replies
// matching an outstanding probe seq count, probes are never reused — keeps
// delayed or duplicated replies from polluting the estimate, exactly like
// the PR-8 RTO estimator ignores retransmitted acks.
//
// obs sits below net in the link graph (net links obs), so this header
// speaks raw POSIX UDP and carries its own 6-byte endpoint type instead of
// including net/fabric.h.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace pdw::obs {

// UDP endpoint in host byte order (mirror of net::Endpoint, duplicated so
// obs does not depend on net).
struct TelemetryEndpoint {
  uint32_t ip = 0;
  uint16_t port = 0;

  friend bool operator==(const TelemetryEndpoint&,
                         const TelemetryEndpoint&) = default;
};

inline constexpr uint32_t kTelemetryLoopbackIp = 0x7F000001u;

// ---------------------------------------------------------------------------
// Wire format. One datagram = one frame: a fixed header, then a sequence of
// (type, length, payload) records. String-valued names (metric families,
// span names) go through a per-frame string table so repeated names cost two
// bytes. Every frame is self-contained — the collector can decode any subset
// of frames in any order; "delta" export means only-changed *selection*, the
// values themselves are absolutes.
// ---------------------------------------------------------------------------

inline constexpr uint32_t kTelemetryMagic = 0x54574450u;  // "PDWT"
inline constexpr uint16_t kTelemetryVersion = 1;

enum class TelemetryRecordType : uint8_t {
  kStrings = 1,     // per-frame string table (must precede users)
  kHello = 2,       // process identity: os pid, wall shape, hosted nodes
  kMetric = 3,      // one metric, absolute value
  kSpans = 4,       // batch of trace events (local clock domain)
  kClockProbe = 5,  // exporter -> collector: seq, t0, reply-to endpoint
  kClockReply = 6,  // collector -> exporter: seq, t0 echo, t1, t2
  kOffset = 7,      // exporter's current offset estimate
  kBye = 8,         // graceful shutdown marker
};

struct HelloRecord {
  uint32_t os_pid = 0;
  uint16_t k = 0;      // splitters
  uint16_t tiles = 0;  // decoders
  uint16_t nodes = 0;  // total wall size (1 + k + tiles)
  std::vector<uint16_t> hosted;  // proto node ids hosted by this process
};

struct MetricRecord {
  std::string family;
  int16_t node = -1;
  int16_t stream = -1;
  MetricKind kind = MetricKind::kCounter;
  uint64_t count = 0;  // counter value / histogram count
  int64_t gauge = 0;
  uint64_t sum = 0;
  // Non-empty histogram buckets as (bucket index, count).
  std::vector<std::pair<uint8_t, uint64_t>> buckets;
};

// A decoded trace event; names are owned strings (the sender's static
// pointers mean nothing across processes).
struct SpanRecord {
  std::string name;
  char ph = 'X';
  int32_t pid = 0;
  int32_t tid = 0;
  uint64_t ts_ns = 0;  // sender's tracer clock domain
  uint64_t dur_ns = 0;
  uint32_t pic = 0xFFFFFFFFu;
};

struct ClockProbeRecord {
  uint32_t seq = 0;
  uint64_t t0 = 0;               // exporter clock at send
  TelemetryEndpoint reply_to{};  // zero: reply to the datagram source. Set
                                 // when the forward path runs through an
                                 // ImpairProxy (proxies forward one way
                                 // only — a reply to the proxy's front
                                 // socket would dead-end).
};

struct ClockReplyRecord {
  uint32_t seq = 0;
  uint64_t t0 = 0;  // echoed
  uint64_t t1 = 0;  // collector clock at receive
  uint64_t t2 = 0;  // collector clock at send
};

struct OffsetRecord {
  int64_t offset_ns = 0;  // collector_clock = local_clock + offset
  uint64_t min_rtt_ns = 0;
  uint32_t samples = 0;
  uint8_t valid = 0;
};

struct TelemetryFrame {
  uint64_t token = 0;  // per-process random id (stable for process lifetime)
  uint32_t seq = 0;    // per-sender frame counter (gap = sideband loss)
  std::optional<HelloRecord> hello;
  std::vector<MetricRecord> metrics;
  std::vector<SpanRecord> spans;
  std::vector<ClockProbeRecord> probes;
  std::vector<ClockReplyRecord> replies;
  std::optional<OffsetRecord> offset;
  bool bye = false;
};

// Serialize a frame (builds the string table internally).
std::vector<uint8_t> encode_frame(const TelemetryFrame& frame);

// Parse a datagram. Returns false (leaving *out unspecified) on anything
// malformed — wrong magic/version, truncated records, bad indexes. Never
// reads out of bounds.
bool decode_frame(const uint8_t* data, size_t len, TelemetryFrame* out);

// ---------------------------------------------------------------------------
// Clock-offset estimation.
// ---------------------------------------------------------------------------

// Accumulates NTP-style probe samples; the minimum-RTT sample wins. For a
// sample with round-trip time rtt, the symmetric-path estimate is wrong by
// at most rtt/2 (all asymmetry on one leg), so |error| <= min_rtt/2 — the
// acceptance bound in tests is the looser 2x min_rtt.
class ClockEstimator {
 public:
  // t0/t3: local clock at probe send / reply receive. t1/t2: remote clock at
  // probe receive / reply send. Garbage samples (negative RTT after clock
  // arithmetic) are ignored.
  void add_sample(uint64_t t0, uint64_t t1, uint64_t t2, uint64_t t3);

  bool valid() const { return samples_ > 0; }
  // remote_clock = local_clock + offset_ns().
  int64_t offset_ns() const { return offset_ns_; }
  uint64_t min_rtt_ns() const { return valid() ? min_rtt_ns_ : 0; }
  uint32_t samples() const { return samples_; }

 private:
  int64_t offset_ns_ = 0;
  uint64_t min_rtt_ns_ = ~uint64_t(0);
  uint32_t samples_ = 0;
};

// ---------------------------------------------------------------------------
// Exporter.
// ---------------------------------------------------------------------------

struct TelemetryExporterConfig {
  TelemetryEndpoint collector{};  // where frames go
  // Where the collector should send probe replies; zero means "the source
  // address of the probe datagram" (the normal case).
  TelemetryEndpoint reply_to{};
  double interval_s = 0.2;          // background flush period
  double probe_wait_s = 0.01;       // how long flush() blocks for a reply
  size_t max_datagram_bytes = 32 * 1024;
  MetricsRegistry* metrics = nullptr;  // nullptr: global()
  Tracer* tracer = nullptr;            // nullptr: Tracer::global()
  // Wall shape announced in Hello (0 = unknown).
  uint16_t k = 0;
  uint16_t tiles = 0;
  uint16_t nodes = 0;
  std::vector<uint16_t> hosted;  // proto node ids hosted by this process
};

class TelemetryExporter {
 public:
  explicit TelemetryExporter(TelemetryExporterConfig cfg);
  ~TelemetryExporter();
  TelemetryExporter(const TelemetryExporter&) = delete;
  TelemetryExporter& operator=(const TelemetryExporter&) = delete;

  // Start the background flush thread. Optional — tests drive flush()
  // directly for determinism.
  void start();
  // Final flush + Bye frame, then join the background thread. Idempotent.
  void stop();

  // One export round: drain pending probe replies, send a fresh clock probe
  // (briefly waiting for its reply), then ship Hello + changed metrics +
  // new spans + the current offset estimate.
  void flush();
  // Drain probe replies without exporting (stamps t3 at read time, so only
  // meaningful when replies are already queued; flush() waits properly).
  void poll_replies();

  ClockEstimator clock() const;
  uint64_t token() const { return token_; }
  TelemetryEndpoint local_endpoint() const { return local_; }
  // Redirect the collector's probe replies (e.g. straight at our socket when
  // the forward path runs through a one-way impairment proxy). Call before
  // start(); flush() snapshots it without locking.
  void set_reply_to(TelemetryEndpoint ep) { cfg_.reply_to = ep; }
  uint64_t datagrams_sent() const;
  uint64_t bytes_sent() const;
  // Exporter clock (the tracer's domain — spans and probes agree).
  uint64_t local_now_ns() const;

 private:
  struct PendingProbe {
    uint64_t t0 = 0;
  };

  Tracer& tracer() const;
  void send_frame(TelemetryFrame* frame);
  void run_loop();
  void handle_reply(const ClockReplyRecord& r, uint64_t t3);

  TelemetryExporterConfig cfg_;
  uint64_t token_ = 0;
  int fd_ = -1;
  TelemetryEndpoint local_{};

  mutable std::mutex mu_;
  ClockEstimator clock_;
  std::map<uint32_t, PendingProbe> outstanding_;  // Karn filter
  uint32_t next_probe_seq_ = 1;
  uint32_t next_frame_seq_ = 1;
  std::map<std::tuple<std::string, int, int, int>,
           std::tuple<uint64_t, uint64_t, int64_t>>
      last_sent_;  // metric key -> (count, sum, gauge) last exported
  std::vector<uint64_t> trace_cursors_;
  uint64_t datagrams_sent_ = 0;
  uint64_t bytes_sent_ = 0;

  std::thread thread_;
  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool stop_ = false;
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace pdw::obs
