// Cached per-node instrument bundles shared by the engines.
//
// The lockstep reference and the threaded pipeline resolve the exact same
// metric families through these bundles, which is what lets
// test_parallel_equivalence compare their registries one-to-one. All
// pointers stay null until resolve() is called, and every use site
// null-checks, so an engine without telemetry wiring pays nothing.
#pragma once

#include "obs/metrics.h"

namespace pdw::obs {

struct RootInstruments {
  Histogram* go_ahead_wait_ns = nullptr;

  void resolve(MetricsRegistry& r, int node, int stream) {
    go_ahead_wait_ns =
        &r.histogram(family::kGoAheadWaitNs, Labels{node, stream});
  }
};

struct SplitterInstruments {
  Counter* pictures_split = nullptr;
  Counter* sp_bytes_sent = nullptr;
  Histogram* split_ns = nullptr;

  void resolve(MetricsRegistry& r, int node, int stream) {
    const Labels l{node, stream};
    pictures_split = &r.counter(family::kPicturesSplit, l);
    sp_bytes_sent = &r.counter(family::kSpBytesSent, l);
    split_ns = &r.histogram(family::kSplitNs, l);
  }
};

struct DecoderInstruments {
  Counter* pictures_decoded = nullptr;
  Counter* pictures_skipped = nullptr;
  Counter* exchange_bytes_sent = nullptr;
  Counter* exchange_bytes_recv = nullptr;
  Counter* concealed_mbs = nullptr;
  Histogram* decode_ns = nullptr;
  Histogram* serve_ns = nullptr;

  void resolve(MetricsRegistry& r, int node, int stream) {
    const Labels l{node, stream};
    pictures_decoded = &r.counter(family::kPicturesDecoded, l);
    pictures_skipped = &r.counter(family::kPicturesSkipped, l);
    exchange_bytes_sent = &r.counter(family::kExchangeBytesSent, l);
    exchange_bytes_recv = &r.counter(family::kExchangeBytesRecv, l);
    concealed_mbs = &r.counter(family::kConcealedMbs, l);
    decode_ns = &r.histogram(family::kDecodeNs, l);
    serve_ns = &r.histogram(family::kServeNs, l);
  }
};

}  // namespace pdw::obs
