// Per-node flight recorder: a bounded black box dumped on bad news.
//
// When configured (wall_node --flight-dir), the recorder keeps the last N
// wire events (every message the hosts send or receive, stamped with the
// tracer clock) in a small ring; on a trigger it writes one JSON file with
// the tail of the span tracer, the wire ring and a full metrics snapshot.
// Triggers: a DeathNotice arriving or being declared (src/core/hosts.cpp),
// a degrade-ladder transition (src/proto/admission.cpp), a fatal signal
// (install_signal_handlers), or an explicit dump(). Disabled it costs one
// relaxed atomic load per hook.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace pdw::obs {

class FlightRecorder {
 public:
  struct Config {
    std::string dir;         // where dumps land; empty keeps it disabled
    int node = -1;           // proto node id stamped into dump filenames
    size_t max_wire = 256;   // wire-event ring capacity
    size_t max_spans = 512;  // span tail kept per dump
    size_t max_dumps = 8;    // later triggers are dropped
    MetricsRegistry* metrics = nullptr;  // nullptr: global()
    Tracer* tracer = nullptr;            // nullptr: Tracer::global()
  };

  // Arm the recorder. Enables the tracer (modest ring) if it is off —
  // a post-mortem with no spans is useless.
  void configure(const Config& cfg);
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Record one wire event (hot path; cheap no-op when disabled). `aux` is
  // the message's aux word — the picture index for picture/SP traffic.
  void note_wire(bool tx, int self, int peer, int msg_type, uint32_t seq,
                 uint32_t aux, size_t bytes) {
    if (!enabled()) return;
    note_wire_slow(tx, self, peer, msg_type, seq, aux, bytes);
  }

  // Write a dump (rate-limited by max_dumps). Returns the path written, or
  // empty if disabled / over the dump budget / I/O failed. Async-signal
  // use: dump() allocates and locks — acceptable for our fatal-signal
  // paths, where the alternative is no artifact at all.
  std::string dump(const std::string& reason);

  // Dump on SIGTERM / SIGINT / SIGSEGV / SIGABRT, then re-raise with the
  // default handler so the exit status is preserved.
  static void install_signal_handlers();

  uint64_t dumps_written() const;

  static FlightRecorder& global();

 private:
  struct WireEvent {
    uint64_t t_ns = 0;
    uint32_t seq = 0;
    uint32_t aux = 0;
    uint32_t bytes = 0;
    int16_t self = -1;
    int16_t peer = -1;
    uint8_t msg_type = 0;
    bool tx = false;
  };

  void note_wire_slow(bool tx, int self, int peer, int msg_type, uint32_t seq,
                      uint32_t aux, size_t bytes);
  Tracer& tracer() const;

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  Config cfg_;
  std::vector<WireEvent> wire_;  // ring
  uint64_t wire_written_ = 0;
  uint64_t dumps_ = 0;
};

}  // namespace pdw::obs
