#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

namespace pdw::obs {

uint64_t Histogram::percentile(double p) const {
  const uint64_t n = count();
  if (n == 0) return 0;
  const double clamped = std::min(std::max(p, 0.0), 100.0);
  const uint64_t rank =
      std::max<uint64_t>(1, uint64_t(std::ceil(clamped / 100.0 * double(n))));
  uint64_t cum = 0;
  for (int i = 0; i < kBuckets; ++i) {
    cum += bucket(i);
    if (cum >= rank) return bucket_lower(i);
  }
  return bucket_lower(kBuckets - 1);
}

void Histogram::merge(const Histogram& other) {
  for (int i = 0; i < kBuckets; ++i) {
    const uint64_t c = other.bucket(i);
    if (c) buckets_[size_t(i)].fetch_add(c, std::memory_order_relaxed);
  }
  count_.fetch_add(other.count(), std::memory_order_relaxed);
  sum_.fetch_add(other.sum(), std::memory_order_relaxed);
}

uint64_t MetricsSnapshot::counter_total(std::string_view family) const {
  uint64_t total = 0;
  for (const MetricValue& v : values)
    if (v.kind == MetricKind::kCounter && v.family == family) total += v.count;
  return total;
}

uint64_t MetricsSnapshot::counter_value(std::string_view family,
                                        Labels labels) const {
  for (const MetricValue& v : values)
    if (v.kind == MetricKind::kCounter && v.family == family &&
        v.labels == labels)
      return v.count;
  return 0;
}

Counter& MetricsRegistry::counter(std::string_view family, Labels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[Key{std::string(family), labels}];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(std::string_view family, Labels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[Key{std::string(family), labels}];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(std::string_view family, Labels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[Key{std::string(family), labels}];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [key, c] : counters_) {
    MetricValue v;
    v.family = key.first;
    v.labels = key.second;
    v.kind = MetricKind::kCounter;
    v.count = c->value();
    snap.values.push_back(std::move(v));
  }
  for (const auto& [key, g] : gauges_) {
    MetricValue v;
    v.family = key.first;
    v.labels = key.second;
    v.kind = MetricKind::kGauge;
    v.gauge = g->value();
    snap.values.push_back(std::move(v));
  }
  for (const auto& [key, h] : histograms_) {
    MetricValue v;
    v.family = key.first;
    v.labels = key.second;
    v.kind = MetricKind::kHistogram;
    v.count = h->count();
    v.sum = h->sum();
    v.p50 = h->p50();
    v.p95 = h->p95();
    v.p99 = h->p99();
    for (int i = 0; i < Histogram::kBuckets; ++i)
      if (const uint64_t c = h->bucket(i))
        v.buckets.emplace_back(Histogram::bucket_lower(i), c);
    snap.values.push_back(std::move(v));
  }
  std::sort(snap.values.begin(), snap.values.end(),
            [](const MetricValue& a, const MetricValue& b) {
              if (a.family != b.family) return a.family < b.family;
              return a.labels < b.labels;
            });
  return snap;
}

void MetricsRegistry::reset_values() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, c] : counters_) c->reset();
  for (auto& [key, g] : gauges_) g->reset();
  for (auto& [key, h] : histograms_) h->reset();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* reg = new MetricsRegistry();  // never destroyed
  return *reg;
}

}  // namespace pdw::obs
