#include "obs/trace.h"

#include <algorithm>
#include <cmath>

namespace pdw::obs {

Tracer::Tracer() : id_([] {
  static std::atomic<uint64_t> next{0};
  return next.fetch_add(1, std::memory_order_relaxed) + 1;
}()) {}

void Tracer::enable(size_t capacity_per_thread) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = std::max<size_t>(capacity_per_thread, 16);
  for (auto& r : rings_) {
    r->events.assign(capacity_, TraceEvent{});
    r->written.store(0, std::memory_order_release);
  }
  epoch_ = std::chrono::steady_clock::now();
  epoch_offset_ns_.store(0, std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_relaxed);
}

Tracer::Ring& Tracer::ring() {
  // Each thread caches its ring per tracer instance; the rings themselves
  // are owned by the tracer and outlive the threads, so events survive
  // thread joins until collect(). Entries match on (address, instance id):
  // the address alone is not identity, because a destroyed tracer's storage
  // can be reused by a new one, and resolving through a stale entry would
  // dereference the old tracer's freed rings.
  struct Entry {
    const Tracer* owner;
    uint64_t id;
    Ring* ring;
  };
  thread_local std::vector<Entry> cache;
  Entry* stale = nullptr;
  for (Entry& e : cache) {
    if (e.owner != this) continue;
    if (e.id == id_) return *e.ring;
    stale = &e;  // address reused; re-register below
    break;
  }
  std::lock_guard<std::mutex> lock(mu_);
  rings_.push_back(std::make_unique<Ring>());
  Ring& r = *rings_.back();
  r.events.assign(capacity_, TraceEvent{});
  r.tid = int(rings_.size());
  if (stale)
    *stale = Entry{this, id_, &r};
  else
    cache.push_back(Entry{this, id_, &r});
  return r;
}

void Tracer::record(const char* name, int pid, uint64_t start_ns,
                    uint64_t dur_ns, uint32_t pic) {
  if (!enabled()) return;
  TraceEvent e;
  e.name = name;
  e.ts_ns = start_ns;
  e.dur_ns = dur_ns;
  e.pid = pid;
  e.arg_pic = pic;
  e.ph = 'X';
  Ring& r = ring();
  e.tid = r.tid;
  append(r, e);
}

void Tracer::instant(const char* name, int pid, uint32_t pic) {
  if (!enabled()) return;
  TraceEvent e;
  e.name = name;
  e.ts_ns = now_ns();
  e.pid = pid;
  e.arg_pic = pic;
  e.ph = 'i';
  Ring& r = ring();
  e.tid = r.tid;
  append(r, e);
}

void Tracer::add_complete(const char* name, int pid, int tid, double start_s,
                          double dur_s, uint32_t pic) {
  if (!enabled()) return;
  TraceEvent e;
  e.name = name;
  e.ts_ns = uint64_t(std::max(0.0, start_s) * 1e9);
  e.dur_ns = uint64_t(std::max(0.0, dur_s) * 1e9);
  e.pid = pid;
  e.tid = tid;
  e.arg_pic = pic;
  e.ph = 'X';
  Ring& r = ring();
  append(r, e);
}

std::vector<TraceEvent> Tracer::collect() const {
  std::vector<TraceEvent> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& r : rings_) {
    const size_t cap = r->events.size();
    const uint64_t w = r->written.load(std::memory_order_acquire);
    const size_t n = size_t(std::min<uint64_t>(w, cap));
    const size_t first = w > cap ? size_t(w % cap) : 0;
    for (size_t i = 0; i < n; ++i)
      out.push_back(r->events[(first + i) % cap]);
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.ts_ns < b.ts_ns;
            });
  return out;
}

uint64_t Tracer::dropped() const {
  uint64_t dropped = 0;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& r : rings_) {
    const uint64_t w = r->written.load(std::memory_order_acquire);
    if (w > r->events.size()) dropped += w - r->events.size();
  }
  return dropped;
}

void Tracer::drain_new(std::vector<uint64_t>* cursors,
                       std::vector<TraceEvent>* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (cursors->size() < rings_.size()) cursors->resize(rings_.size(), 0);
  for (size_t i = 0; i < rings_.size(); ++i) {
    const Ring& r = *rings_[i];
    const size_t cap = r.events.size();
    const uint64_t w = r.written.load(std::memory_order_acquire);
    uint64_t cur = (*cursors)[i];
    if (cur > w) cur = w;             // ring was reset by enable()
    if (w - cur > cap) cur = w - cap;  // lapped: oldest survivors only
    for (; cur < w; ++cur) out->push_back(r.events[size_t(cur % cap)]);
    (*cursors)[i] = cur;
  }
}

std::map<std::pair<std::string, int>, Tracer::Agg> Tracer::aggregate() const {
  std::map<std::pair<std::string, int>, Agg> agg;
  for (const TraceEvent& e : collect()) {
    if (e.ph != 'X') continue;
    Agg& a = agg[{std::string(e.name), int(e.pid)}];
    ++a.count;
    a.total_ns += e.dur_ns;
  }
  return agg;
}

Tracer& Tracer::global() {
  static Tracer* tracer = new Tracer();  // never destroyed
  return *tracer;
}

}  // namespace pdw::obs
