// Per-thread ring-buffer span tracer with near-zero cost when disabled.
//
// Every pipeline stage wraps itself in PDW_TRACE_SPAN("name", node, pic);
// when tracing is off (the default) the macro costs one relaxed atomic load
// and nothing is recorded. When enabled (Tracer::global().enable(), or any
// tool honouring the PDW_TRACE environment variable), each thread appends
// fixed-size events to its own ring buffer — no locks, no allocation on the
// hot path after the ring is registered — and collect() merges the rings
// into one timeline for the Chrome-trace / text exporters in obs/export.h.
//
// Two clock domains share the same event stream:
//   * real-time spans (the RAII Span/macro path) stamp steady-clock ns since
//     the tracer epoch — the threaded pipeline and the lockstep reference;
//   * virtual-time spans (add_complete) carry modeled seconds — the
//     discrete-event simulator emits its per-stage schedule this way, with
//     pids offset by sim::kSimTracePidBase so the modeled cluster shows up
//     as its own process group in Perfetto.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace pdw::obs {

struct TraceEvent {
  const char* name = nullptr;  // static string (span / event name)
  uint64_t ts_ns = 0;          // start, ns since tracer epoch
  uint64_t dur_ns = 0;         // 0 for instant events
  int32_t pid = 0;             // node id (process lane in Perfetto)
  int32_t tid = 0;             // thread ordinal within the trace
  uint32_t arg_pic = 0xFFFFFFFFu;  // picture index (kNoPic: none)
  char ph = 'X';               // 'X' complete span, 'i' instant
};

class Tracer {
 public:
  static constexpr uint32_t kNoPic = 0xFFFFFFFFu;

  Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Start recording. `capacity_per_thread` bounds each thread's ring; when a
  // ring wraps, the oldest events are overwritten (dropped() reports how
  // many). Resets the epoch and clears previously collected events.
  void enable(size_t capacity_per_thread = size_t(1) << 18);
  void disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // ns since the tracer epoch (real-time clock domain), shifted by the
  // configured epoch offset.
  uint64_t now_ns() const {
    const int64_t raw =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count();
    const int64_t shifted =
        raw + epoch_offset_ns_.load(std::memory_order_relaxed);
    return shifted > 0 ? uint64_t(shifted) : 0;
  }

  // Rebase this tracer's real-time clock domain: every subsequent now_ns()
  // (and therefore every span/instant timestamp) is shifted by `off`. The
  // telemetry layer uses this to slide a process's trace domain onto a
  // collector's (obs/telemetry.h estimates the offset); tests use it to
  // model a skewed node clock.
  void set_epoch_offset_ns(int64_t off) {
    epoch_offset_ns_.store(off, std::memory_order_relaxed);
  }
  int64_t epoch_offset_ns() const {
    return epoch_offset_ns_.load(std::memory_order_relaxed);
  }

  // Record a completed real-time span (what ~Span calls).
  void record(const char* name, int pid, uint64_t start_ns, uint64_t dur_ns,
              uint32_t pic = kNoPic);
  // Instant event (retransmit, death notice, adoption).
  void instant(const char* name, int pid, uint32_t pic = kNoPic);
  // Virtual-time span in seconds (DES emission); `tid` names the modeled
  // execution lane.
  void add_complete(const char* name, int pid, int tid, double start_s,
                    double dur_s, uint32_t pic = kNoPic);

  // Merge every thread's ring into one timeline sorted by start time. Not
  // synchronized with concurrently recording threads — call after the traced
  // run finished (live tools poll the metrics registry instead).
  std::vector<TraceEvent> collect() const;

  // Incremental, non-destructive drain for the telemetry exporter: append
  // every event recorded since the cursors were last advanced to `out`
  // (unsorted) and advance the cursors. `cursors` must be reused across
  // calls on the same tracer (it grows as threads register rings). Events
  // lost to ring wrap between drains are skipped. Each ring's write cursor
  // is released by the recording thread, so fully drained events are safe
  // to read; a ring being lapped mid-drain can still tear — the exporter
  // runs while the wall decodes and accepts that the sideband is lossy.
  void drain_new(std::vector<uint64_t>* cursors,
                 std::vector<TraceEvent>* out) const;

  // Total events lost to ring wrap-around across all threads.
  uint64_t dropped() const;

  // Per-(name, pid) aggregate of completed spans.
  struct Agg {
    uint64_t count = 0;
    uint64_t total_ns = 0;
  };
  std::map<std::pair<std::string, int>, Agg> aggregate() const;

  static Tracer& global();

 private:
  struct Ring {
    std::vector<TraceEvent> events;  // fixed capacity
    // Total appended (wraps the ring). Written only by the owning thread;
    // the release store publishes the event just written so drain_new() can
    // read fully written slots with an acquire load.
    std::atomic<uint64_t> written{0};
    int tid = 0;
  };

  Ring& ring();  // this thread's ring (registers on first use)
  void append(Ring& r, const TraceEvent& e) {
    const uint64_t w = r.written.load(std::memory_order_relaxed);
    r.events[size_t(w % r.events.size())] = e;
    r.written.store(w + 1, std::memory_order_release);
  }

  std::atomic<bool> enabled_{false};
  // Process-unique instance id: the per-thread ring cache keys on (address,
  // id) so a new tracer reusing a destroyed one's address can never resolve
  // to the old tracer's (freed) rings.
  const uint64_t id_;
  std::chrono::steady_clock::time_point epoch_ =
      std::chrono::steady_clock::now();
  std::atomic<int64_t> epoch_offset_ns_{0};

  mutable std::mutex mu_;  // guards rings_ registration and collect()
  std::vector<std::unique_ptr<Ring>> rings_;
  size_t capacity_ = size_t(1) << 18;
};

// RAII span: stamps start on construction, records on destruction. All work
// is skipped when the global tracer is disabled.
class Span {
 public:
  Span(const char* name, int pid, uint32_t pic = Tracer::kNoPic) {
    Tracer& t = Tracer::global();
    if (!t.enabled()) return;
    tracer_ = &t;
    name_ = name;
    pid_ = pid;
    pic_ = pic;
    start_ns_ = t.now_ns();
  }
  ~Span() {
    if (tracer_)
      tracer_->record(name_, pid_, start_ns_, tracer_->now_ns() - start_ns_,
                      pic_);
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  Tracer* tracer_ = nullptr;
  const char* name_ = nullptr;
  int pid_ = 0;
  uint32_t pic_ = 0;
  uint64_t start_ns_ = 0;
};

#define PDW_OBS_CONCAT_(a, b) a##b
#define PDW_OBS_CONCAT(a, b) PDW_OBS_CONCAT_(a, b)

// PDW_TRACE_SPAN("decode_sp", node, pic): trace the enclosing scope.
#define PDW_TRACE_SPAN(...) \
  ::pdw::obs::Span PDW_OBS_CONCAT(pdw_trace_span_, __COUNTER__)(__VA_ARGS__)

// PDW_TRACE_INSTANT("retransmit", node): mark a point event.
#define PDW_TRACE_INSTANT(...) ::pdw::obs::Tracer::global().instant(__VA_ARGS__)

// Canonical span names. The decoder five map 1:1 onto the paper's Fig. 7
// categories (Work / Serve / Receive / Wait / Ack); every engine emits the
// same names so one exporter serves all three.
namespace span {
inline constexpr char kCopyPic[] = "copy_pic";          // root
inline constexpr char kGoAheadWait[] = "goahead_wait";  // root
inline constexpr char kSplitPic[] = "split_pic";        // splitter
inline constexpr char kAnidWait[] = "anid_wait";        // splitter
inline constexpr char kRouteSp[] = "route_sp";          // splitter
inline constexpr char kRecvSp[] = "recv_sp";            // decoder: Receive
inline constexpr char kServeSp[] = "serve_sp";          // decoder: Serve
inline constexpr char kWaitHalo[] = "wait_halo";        // decoder: Wait
inline constexpr char kDecodeSp[] = "decode_sp";        // decoder: Work
inline constexpr char kAckPic[] = "ack_pic";            // decoder: Ack
inline constexpr char kRetransmit[] = "retransmit";     // transport instant
inline constexpr char kAbandon[] = "abandon";           // transport instant
inline constexpr char kDeath[] = "death_declared";      // root instant
inline constexpr char kAdopt[] = "adopt_tile";          // decoder instant
inline constexpr char kRebalance[] = "rebalance";       // root instant
}  // namespace span

}  // namespace pdw::obs
