// Exporters for the telemetry layer (obs/metrics.h, obs/trace.h):
//
//   * write_chrome_trace() — Chrome trace-event JSON ("traceEvents" array),
//     loadable in Perfetto / chrome://tracing. Real-time spans from the
//     threaded or lockstep engines and virtual-time spans from the DES land
//     in the same file as separate process groups;
//   * metrics_json() / write_metrics_json() — point-in-time snapshot of every
//     registered metric as JSON;
//   * metrics_report() — aligned text_table end-of-run report;
//   * fig7_breakdown() / print_fig7() — the paper's Fig. 7 per-decoder stage
//     shares (Work / Serve / Receive / Wait / Ack) recomputed from traced
//     spans instead of bespoke bench timers.
#pragma once

#include <cstdio>
#include <functional>
#include <map>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace pdw::obs {

// Serialize all collected events. `pid_name`, when given, maps a pid to a
// human-readable lane name emitted as process_name metadata. Returns false
// if the file could not be written.
bool write_chrome_trace(const Tracer& tracer, const std::string& path,
                        const std::function<std::string(int)>& pid_name = {});

std::string metrics_json(const MetricsSnapshot& snap);
bool write_metrics_json(const MetricsSnapshot& snap, const std::string& path);

// Aligned table of every metric in the snapshot.
void metrics_report(const MetricsSnapshot& snap, std::FILE* out);

// Fraction of a decoder's traced time spent in each Fig. 7 category, per pid
// in [pid_min, pid_max]. Shares are of the per-pid traced total, so they sum
// to ~1 for a decoder that only emits the five canonical decoder spans.
// `pid_offset` is subtracted from the returned map keys, so callers tracing
// under shifted pid lanes (sim::kSimTracePidBase) get proto node ids back
// instead of carrying the shift into every consumer.
struct StageShare {
  double work = 0, serve = 0, receive = 0, wait = 0, ack = 0;
  uint64_t total_ns = 0;
};
std::map<int, StageShare> fig7_breakdown(const Tracer& tracer, int pid_min,
                                         int pid_max, int pid_offset = 0);

// Print the Fig. 7 table (keys are node ids — see fig7_breakdown).
void print_fig7(const std::map<int, StageShare>& shares, std::FILE* out);

}  // namespace pdw::obs
