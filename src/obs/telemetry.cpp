#include "obs/telemetry.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <string_view>

namespace pdw::obs {

namespace {

void put_u8(std::vector<uint8_t>& b, uint8_t v) { b.push_back(v); }
void put_u16(std::vector<uint8_t>& b, uint16_t v) {
  b.push_back(uint8_t(v));
  b.push_back(uint8_t(v >> 8));
}
void put_u32(std::vector<uint8_t>& b, uint32_t v) {
  put_u16(b, uint16_t(v));
  put_u16(b, uint16_t(v >> 16));
}
void put_u64(std::vector<uint8_t>& b, uint64_t v) {
  put_u32(b, uint32_t(v));
  put_u32(b, uint32_t(v >> 32));
}

// Bounds-checked little-endian reader; any overrun latches fail.
struct Reader {
  const uint8_t* p;
  size_t n;
  size_t off = 0;
  bool fail = false;

  bool need(size_t k) {
    if (n - off < k) {
      fail = true;
      return false;
    }
    return true;
  }
  uint8_t u8() {
    if (!need(1)) return 0;
    return p[off++];
  }
  uint16_t u16() {
    if (!need(2)) return 0;
    uint16_t v = uint16_t(p[off]) | uint16_t(p[off + 1]) << 8;
    off += 2;
    return v;
  }
  uint32_t u32() {
    uint32_t lo = u16(), hi = u16();
    return lo | hi << 16;
  }
  uint64_t u64() {
    uint64_t lo = u32(), hi = u32();
    return lo | hi << 32;
  }
  std::string_view bytes(size_t k) {
    if (!need(k)) return {};
    std::string_view s(reinterpret_cast<const char*>(p + off), k);
    off += k;
    return s;
  }
};

constexpr size_t kHeaderBytes = 4 + 2 + 2 + 8 + 4 + 2;
constexpr size_t kMaxSpansPerRecord = 2000;  // 31 B each, fits a u16 length

uint64_t steady_ticks() {
  return uint64_t(std::chrono::steady_clock::now().time_since_epoch().count());
}

}  // namespace

std::vector<uint8_t> encode_frame(const TelemetryFrame& f) {
  // Per-frame string table, first-use order.
  std::vector<std::string_view> strings;
  std::map<std::string_view, uint16_t> index;
  auto intern = [&](std::string_view s) {
    auto [it, fresh] = index.try_emplace(s, uint16_t(strings.size()));
    if (fresh) strings.push_back(s);
    return it->second;
  };
  for (const auto& m : f.metrics) intern(m.family);
  for (const auto& s : f.spans) intern(s.name);

  std::vector<uint8_t> body;
  uint16_t records = 0;
  auto begin_record = [&](TelemetryRecordType t) {
    put_u8(body, uint8_t(t));
    put_u16(body, 0);  // length, patched by end_record
    ++records;
    return body.size();
  };
  auto end_record = [&](size_t payload_start) {
    const size_t len = body.size() - payload_start;
    body[payload_start - 2] = uint8_t(len);
    body[payload_start - 1] = uint8_t(len >> 8);
  };

  if (!strings.empty()) {
    const size_t at = begin_record(TelemetryRecordType::kStrings);
    put_u16(body, uint16_t(strings.size()));
    for (std::string_view s : strings) {
      const size_t len = std::min<size_t>(s.size(), 255);
      put_u8(body, uint8_t(len));
      body.insert(body.end(), s.begin(), s.begin() + long(len));
    }
    end_record(at);
  }
  if (f.hello) {
    const size_t at = begin_record(TelemetryRecordType::kHello);
    put_u32(body, f.hello->os_pid);
    put_u16(body, f.hello->k);
    put_u16(body, f.hello->tiles);
    put_u16(body, f.hello->nodes);
    put_u16(body, uint16_t(f.hello->hosted.size()));
    for (uint16_t n : f.hello->hosted) put_u16(body, n);
    end_record(at);
  }
  for (const auto& pr : f.probes) {
    const size_t at = begin_record(TelemetryRecordType::kClockProbe);
    put_u32(body, pr.seq);
    put_u64(body, pr.t0);
    put_u32(body, pr.reply_to.ip);
    put_u16(body, pr.reply_to.port);
    end_record(at);
  }
  for (const auto& rp : f.replies) {
    const size_t at = begin_record(TelemetryRecordType::kClockReply);
    put_u32(body, rp.seq);
    put_u64(body, rp.t0);
    put_u64(body, rp.t1);
    put_u64(body, rp.t2);
    end_record(at);
  }
  if (f.offset) {
    const size_t at = begin_record(TelemetryRecordType::kOffset);
    put_u64(body, uint64_t(f.offset->offset_ns));
    put_u64(body, f.offset->min_rtt_ns);
    put_u32(body, f.offset->samples);
    put_u8(body, f.offset->valid);
    end_record(at);
  }
  for (const auto& m : f.metrics) {
    const size_t at = begin_record(TelemetryRecordType::kMetric);
    put_u16(body, index.at(m.family));
    put_u8(body, uint8_t(m.kind));
    put_u16(body, uint16_t(m.node));
    put_u16(body, uint16_t(m.stream));
    switch (m.kind) {
      case MetricKind::kCounter:
        put_u64(body, m.count);
        break;
      case MetricKind::kGauge:
        put_u64(body, uint64_t(m.gauge));
        break;
      case MetricKind::kHistogram:
        put_u64(body, m.count);
        put_u64(body, m.sum);
        put_u8(body, uint8_t(m.buckets.size()));
        for (const auto& [idx, cnt] : m.buckets) {
          put_u8(body, idx);
          put_u64(body, cnt);
        }
        break;
    }
    end_record(at);
  }
  for (size_t base = 0; base < f.spans.size(); base += kMaxSpansPerRecord) {
    const size_t count =
        std::min(kMaxSpansPerRecord, f.spans.size() - base);
    const size_t at = begin_record(TelemetryRecordType::kSpans);
    put_u16(body, uint16_t(count));
    for (size_t i = 0; i < count; ++i) {
      const SpanRecord& s = f.spans[base + i];
      put_u16(body, index.at(s.name));
      put_u8(body, uint8_t(s.ph));
      put_u32(body, uint32_t(s.pid));
      put_u32(body, uint32_t(s.tid));
      put_u64(body, s.ts_ns);
      put_u64(body, s.dur_ns);
      put_u32(body, s.pic);
    }
    end_record(at);
  }
  if (f.bye) {
    const size_t at = begin_record(TelemetryRecordType::kBye);
    end_record(at);
  }

  std::vector<uint8_t> out;
  out.reserve(kHeaderBytes + body.size());
  put_u32(out, kTelemetryMagic);
  put_u16(out, kTelemetryVersion);
  put_u16(out, 0);  // flags
  put_u64(out, f.token);
  put_u32(out, f.seq);
  put_u16(out, records);
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

bool decode_frame(const uint8_t* data, size_t len, TelemetryFrame* out) {
  *out = TelemetryFrame{};
  Reader r{data, len};
  if (r.u32() != kTelemetryMagic) return false;
  if (r.u16() != kTelemetryVersion) return false;
  r.u16();  // flags
  out->token = r.u64();
  out->seq = r.u32();
  const uint16_t records = r.u16();
  if (r.fail) return false;

  std::vector<std::string> strings;
  for (uint16_t rec = 0; rec < records; ++rec) {
    const uint8_t type = r.u8();
    const uint16_t rlen = r.u16();
    if (r.fail || !r.need(rlen)) return false;
    Reader pr{r.p + r.off, rlen};
    r.off += rlen;
    switch (TelemetryRecordType(type)) {
      case TelemetryRecordType::kStrings: {
        const uint16_t count = pr.u16();
        for (uint16_t i = 0; i < count && !pr.fail; ++i) {
          const uint8_t slen = pr.u8();
          strings.emplace_back(pr.bytes(slen));
        }
        break;
      }
      case TelemetryRecordType::kHello: {
        HelloRecord h;
        h.os_pid = pr.u32();
        h.k = pr.u16();
        h.tiles = pr.u16();
        h.nodes = pr.u16();
        const uint16_t count = pr.u16();
        for (uint16_t i = 0; i < count && !pr.fail; ++i)
          h.hosted.push_back(pr.u16());
        if (!pr.fail) out->hello = std::move(h);
        break;
      }
      case TelemetryRecordType::kClockProbe: {
        ClockProbeRecord p;
        p.seq = pr.u32();
        p.t0 = pr.u64();
        p.reply_to.ip = pr.u32();
        p.reply_to.port = pr.u16();
        if (!pr.fail) out->probes.push_back(p);
        break;
      }
      case TelemetryRecordType::kClockReply: {
        ClockReplyRecord p;
        p.seq = pr.u32();
        p.t0 = pr.u64();
        p.t1 = pr.u64();
        p.t2 = pr.u64();
        if (!pr.fail) out->replies.push_back(p);
        break;
      }
      case TelemetryRecordType::kOffset: {
        OffsetRecord o;
        o.offset_ns = int64_t(pr.u64());
        o.min_rtt_ns = pr.u64();
        o.samples = pr.u32();
        o.valid = pr.u8();
        if (!pr.fail) out->offset = o;
        break;
      }
      case TelemetryRecordType::kMetric: {
        MetricRecord m;
        const uint16_t fam = pr.u16();
        if (fam >= strings.size()) return false;
        m.family = strings[fam];
        m.kind = MetricKind(pr.u8());
        m.node = int16_t(pr.u16());
        m.stream = int16_t(pr.u16());
        switch (m.kind) {
          case MetricKind::kCounter:
            m.count = pr.u64();
            break;
          case MetricKind::kGauge:
            m.gauge = int64_t(pr.u64());
            break;
          case MetricKind::kHistogram: {
            m.count = pr.u64();
            m.sum = pr.u64();
            const uint8_t nb = pr.u8();
            for (uint8_t i = 0; i < nb && !pr.fail; ++i) {
              const uint8_t idx = pr.u8();
              const uint64_t cnt = pr.u64();
              if (idx >= Histogram::kBuckets) return false;
              m.buckets.emplace_back(idx, cnt);
            }
            break;
          }
          default:
            return false;
        }
        if (!pr.fail) out->metrics.push_back(std::move(m));
        break;
      }
      case TelemetryRecordType::kSpans: {
        const uint16_t count = pr.u16();
        for (uint16_t i = 0; i < count && !pr.fail; ++i) {
          SpanRecord s;
          const uint16_t name = pr.u16();
          if (name >= strings.size()) return false;
          s.name = strings[name];
          s.ph = char(pr.u8());
          s.pid = int32_t(pr.u32());
          s.tid = int32_t(pr.u32());
          s.ts_ns = pr.u64();
          s.dur_ns = pr.u64();
          s.pic = pr.u32();
          if (!pr.fail) out->spans.push_back(std::move(s));
        }
        break;
      }
      case TelemetryRecordType::kBye:
        out->bye = true;
        break;
      default:
        break;  // unknown record type: skip (forward compatibility)
    }
    if (pr.fail) return false;
  }
  return !r.fail;
}

// ---------------------------------------------------------------------------
// ClockEstimator
// ---------------------------------------------------------------------------

void ClockEstimator::add_sample(uint64_t t0, uint64_t t1, uint64_t t2,
                                uint64_t t3) {
  // All arithmetic on signed deltas: the two clock domains have unrelated
  // epochs, so the raw stamps only make sense as differences.
  const int64_t rtt = int64_t(t3 - t0) - int64_t(t2 - t1);
  if (rtt < 0) return;  // nonsense sample (clock stepped / corrupt echo)
  const int64_t offset = (int64_t(t1 - t0) + int64_t(t2 - t3)) / 2;
  if (uint64_t(rtt) < min_rtt_ns_) {
    min_rtt_ns_ = uint64_t(rtt);
    offset_ns_ = offset;
  }
  ++samples_;
}

// ---------------------------------------------------------------------------
// TelemetryExporter
// ---------------------------------------------------------------------------

TelemetryExporter::TelemetryExporter(TelemetryExporterConfig cfg)
    : cfg_(std::move(cfg)) {
  token_ = (uint64_t(::getpid()) << 40) ^ steady_ticks() ^
           (uint64_t(reinterpret_cast<uintptr_t>(this)) << 17);
  if (token_ == 0) token_ = 1;
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ < 0) return;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = 0;
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd_);
    fd_ = -1;
    return;
  }
  ::fcntl(fd_, F_SETFL, ::fcntl(fd_, F_GETFL, 0) | O_NONBLOCK);
  sockaddr_in bound{};
  socklen_t blen = sizeof(bound);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &blen) == 0)
    local_ = TelemetryEndpoint{kTelemetryLoopbackIp, ntohs(bound.sin_port)};
}

TelemetryExporter::~TelemetryExporter() {
  stop();
  if (fd_ >= 0) ::close(fd_);
}

Tracer& TelemetryExporter::tracer() const {
  return cfg_.tracer ? *cfg_.tracer : Tracer::global();
}

uint64_t TelemetryExporter::local_now_ns() const { return tracer().now_ns(); }

void TelemetryExporter::start() {
  if (started_ || fd_ < 0) return;
  started_ = true;
  thread_ = std::thread([this] { run_loop(); });
}

void TelemetryExporter::run_loop() {
  std::unique_lock<std::mutex> lock(stop_mu_);
  while (!stop_) {
    lock.unlock();
    flush();
    lock.lock();
    stop_cv_.wait_for(
        lock, std::chrono::duration<double>(std::max(cfg_.interval_s, 0.01)),
        [this] { return stop_; });
  }
}

void TelemetryExporter::stop() {
  if (stopped_) return;
  stopped_ = true;
  if (started_) {
    {
      std::lock_guard<std::mutex> lock(stop_mu_);
      stop_ = true;
    }
    stop_cv_.notify_all();
    thread_.join();
  }
  if (fd_ < 0) return;
  flush();
  TelemetryFrame bye;
  bye.bye = true;
  bye.offset = [this] {
    std::lock_guard<std::mutex> lock(mu_);
    OffsetRecord o;
    o.offset_ns = clock_.offset_ns();
    o.min_rtt_ns = clock_.min_rtt_ns();
    o.samples = clock_.samples();
    o.valid = clock_.valid() ? 1 : 0;
    return o;
  }();
  bye.hello = HelloRecord{uint32_t(::getpid()), cfg_.k, cfg_.tiles, cfg_.nodes,
                          cfg_.hosted};
  send_frame(&bye);
}

void TelemetryExporter::send_frame(TelemetryFrame* frame) {
  if (fd_ < 0) return;
  frame->token = token_;
  {
    std::lock_guard<std::mutex> lock(mu_);
    frame->seq = next_frame_seq_++;
  }
  const std::vector<uint8_t> wire = encode_frame(*frame);
  sockaddr_in to{};
  to.sin_family = AF_INET;
  to.sin_addr.s_addr = htonl(cfg_.collector.ip);
  to.sin_port = htons(cfg_.collector.port);
  const ssize_t sent =
      ::sendto(fd_, wire.data(), wire.size(), 0,
               reinterpret_cast<sockaddr*>(&to), sizeof(to));
  if (sent > 0) {
    std::lock_guard<std::mutex> lock(mu_);
    ++datagrams_sent_;
    bytes_sent_ += uint64_t(sent);
  }
}

void TelemetryExporter::handle_reply(const ClockReplyRecord& r, uint64_t t3) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = outstanding_.find(r.seq);
  if (it == outstanding_.end()) return;  // Karn: stale or duplicated reply
  if (it->second.t0 != r.t0) return;     // corrupt echo
  outstanding_.erase(it);
  clock_.add_sample(r.t0, r.t1, r.t2, t3);
}

void TelemetryExporter::poll_replies() {
  if (fd_ < 0) return;
  uint8_t buf[64 * 1024];
  for (;;) {
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n <= 0) break;
    const uint64_t t3 = local_now_ns();
    TelemetryFrame f;
    if (!decode_frame(buf, size_t(n), &f)) continue;
    for (const auto& r : f.replies) handle_reply(r, t3);
  }
}

void TelemetryExporter::flush() {
  if (fd_ < 0) return;
  poll_replies();

  // --- clock probe, with a short wait so t3 is stamped on arrival ---
  uint32_t probe_seq = 0;
  {
    TelemetryFrame probe;
    ClockProbeRecord p;
    {
      std::lock_guard<std::mutex> lock(mu_);
      p.seq = probe_seq = next_probe_seq_++;
      // Bound the Karn table: a probe this old will never be answered.
      while (outstanding_.size() >= 64)
        outstanding_.erase(outstanding_.begin());
    }
    p.reply_to = cfg_.reply_to;
    p.t0 = local_now_ns();
    {
      std::lock_guard<std::mutex> lock(mu_);
      outstanding_[p.seq] = PendingProbe{p.t0};
    }
    probe.probes.push_back(p);
    send_frame(&probe);
  }
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration<double>(std::max(cfg_.probe_wait_s, 0.0));
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (outstanding_.find(probe_seq) == outstanding_.end()) break;
    }
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) break;
    const auto remain =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
    const int wait_ms = int(remain.count()) + 1;
    pollfd pfd{fd_, POLLIN, 0};
    if (::poll(&pfd, 1, wait_ms) <= 0) break;
    poll_replies();
  }

  // --- gather export payload ---
  HelloRecord hello{uint32_t(::getpid()), cfg_.k, cfg_.tiles, cfg_.nodes,
                    cfg_.hosted};
  OffsetRecord offset;
  {
    std::lock_guard<std::mutex> lock(mu_);
    offset.offset_ns = clock_.offset_ns();
    offset.min_rtt_ns = clock_.min_rtt_ns();
    offset.samples = clock_.samples();
    offset.valid = clock_.valid() ? 1 : 0;
  }

  std::vector<MetricRecord> metrics;
  const MetricsSnapshot snap = registry_or_global(cfg_.metrics).snapshot();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const MetricValue& v : snap.values) {
      const auto key = std::make_tuple(v.family, v.labels.node,
                                       v.labels.stream, int(v.kind));
      const auto cur = std::make_tuple(v.count, v.sum, v.gauge);
      auto it = last_sent_.find(key);
      if (it != last_sent_.end() && it->second == cur) continue;
      last_sent_[key] = cur;
      MetricRecord m;
      m.family = v.family;
      m.node = int16_t(v.labels.node);
      m.stream = int16_t(v.labels.stream);
      m.kind = v.kind;
      m.count = v.count;
      m.gauge = v.gauge;
      m.sum = v.sum;
      for (const auto& [lower, cnt] : v.buckets)
        m.buckets.emplace_back(
            uint8_t(Histogram::bucket_index(lower)), cnt);
      metrics.push_back(std::move(m));
    }
  }

  std::vector<TraceEvent> fresh;
  {
    std::lock_guard<std::mutex> lock(mu_);
    tracer().drain_new(&trace_cursors_, &fresh);
  }

  // --- pack into frames under the datagram budget ---
  TelemetryFrame frame;
  frame.hello = hello;
  frame.offset = offset;
  size_t est = 128;
  auto maybe_ship = [&](size_t add) {
    if (est + add <= cfg_.max_datagram_bytes * 3 / 4) {
      est += add;
      return;
    }
    send_frame(&frame);
    frame = TelemetryFrame{};
    est = 128 + add;
  };
  for (auto& m : metrics) {
    maybe_ship(32 + m.family.size() + m.buckets.size() * 9);
    frame.metrics.push_back(std::move(m));
  }
  for (const TraceEvent& e : fresh) {
    if (!e.name) continue;
    maybe_ship(48);
    SpanRecord s;
    s.name = e.name;
    s.ph = e.ph;
    s.pid = e.pid;
    s.tid = e.tid;
    s.ts_ns = e.ts_ns;
    s.dur_ns = e.dur_ns;
    s.pic = e.arg_pic;
    frame.spans.push_back(std::move(s));
  }
  send_frame(&frame);
}

ClockEstimator TelemetryExporter::clock() const {
  std::lock_guard<std::mutex> lock(mu_);
  return clock_;
}

uint64_t TelemetryExporter::datagrams_sent() const {
  std::lock_guard<std::mutex> lock(mu_);
  return datagrams_sent_;
}

uint64_t TelemetryExporter::bytes_sent() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_sent_;
}

}  // namespace pdw::obs
