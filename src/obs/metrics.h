// Unified metrics layer: one registry of typed metric families shared by all
// three engines (threaded pipeline, lockstep reference, DES).
//
// The paper's headline artifacts are observability products — Fig. 7's
// per-stage runtime breakdown, Fig. 9's bandwidth matrix, Table 4's frame
// rates — and before this layer every engine reconstructed them with bespoke
// stats structs (ClusterStats, FtStats, SplitStats, ...) that neither compose
// nor can be inspected on a live run. Here instead:
//
//   * a metric is a (family name, labels) pair: `pictures_decoded{node=6}`.
//     Labels carry the proto node id and the stream id, the two dimensions
//     every engine shares;
//   * instruments are lock-free on the hot path: Counter and Gauge are single
//     relaxed atomics, Histogram is a fixed array of atomic buckets. The
//     registry mutex is only taken when an instrument is first resolved —
//     callers resolve once and keep the pointer;
//   * Histogram uses fixed log2-scale buckets (bucket 0 = {0}, bucket i =
//     [2^(i-1), 2^i)), so per-thread shards merge by bucket-wise addition and
//     percentiles are deterministic: percentile(p) returns the lower bound of
//     the bucket holding the p-th sample;
//   * snapshot() is safe during a live run (wall_top polls it) and feeds the
//     JSON / text exporters in obs/export.h.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace pdw::obs {

// The two label dimensions shared by every engine. -1 means "not applicable"
// (process-wide metrics such as retransmit totals of a whole fabric).
struct Labels {
  int node = -1;    // proto::Topology node id
  int stream = -1;  // elementary stream id (multi-stream sessions)

  friend bool operator==(const Labels&, const Labels&) = default;
  friend auto operator<=>(const Labels&, const Labels&) = default;
};

// Monotonic counter. add() is a single relaxed fetch_add.
class Counter {
 public:
  void add(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Last-written level (queue depths, cursors).
class Gauge {
 public:
  void set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Fixed-bucket log2-scale histogram of non-negative integer samples
// (durations in ns, sizes in bytes).
//
// Bucket layout: bucket 0 holds exactly the value 0; bucket i (1..64) holds
// [2^(i-1), 2^i). A power of two is therefore always the *lower edge* of its
// bucket, and percentile() reporting lower edges returns such samples
// exactly. observe() is two relaxed fetch_adds plus one on the bucket.
class Histogram {
 public:
  static constexpr int kBuckets = 65;

  void observe(uint64_t v) {
    buckets_[size_t(bucket_index(v))].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const {
    const uint64_t n = count();
    return n ? double(sum()) / double(n) : 0.0;
  }
  uint64_t bucket(int i) const {
    return buckets_[size_t(i)].load(std::memory_order_relaxed);
  }

  // Lower bound of the bucket containing the ceil(p/100 * count)-th sample
  // (1-based); 0 for an empty histogram. p in [0, 100].
  uint64_t percentile(double p) const;
  uint64_t p50() const { return percentile(50); }
  uint64_t p95() const { return percentile(95); }
  uint64_t p99() const { return percentile(99); }

  // Bucket-wise accumulation — how per-thread shards combine.
  void merge(const Histogram& other);

  void reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
  }

  static int bucket_index(uint64_t v) {
    return v == 0 ? 0 : std::bit_width(v);
  }
  static uint64_t bucket_lower(int i) {
    return i == 0 ? 0 : uint64_t(1) << (i - 1);
  }

 private:
  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

enum class MetricKind { kCounter, kGauge, kHistogram };

// Point-in-time copy of one metric, produced by MetricsRegistry::snapshot().
struct MetricValue {
  std::string family;
  Labels labels;
  MetricKind kind = MetricKind::kCounter;
  uint64_t count = 0;  // counter value / histogram sample count
  int64_t gauge = 0;
  uint64_t sum = 0;  // histogram only
  uint64_t p50 = 0, p95 = 0, p99 = 0;
  // Non-empty histogram buckets as (lower bound, count) pairs.
  std::vector<std::pair<uint64_t, uint64_t>> buckets;
};

struct MetricsSnapshot {
  std::vector<MetricValue> values;  // sorted by (family, labels)

  // Sum of a counter family across all label sets.
  uint64_t counter_total(std::string_view family) const;
  // Value of one labeled counter (0 when absent).
  uint64_t counter_value(std::string_view family, Labels labels) const;
};

// Registry of metric families. Resolution (counter()/gauge()/histogram())
// takes a mutex and returns a stable reference — instruments are never
// deallocated before the registry — so hot paths resolve once and then only
// touch atomics. A process-wide default instance (global()) serves engines
// that were not handed an explicit registry.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(std::string_view family, Labels labels = {});
  Gauge& gauge(std::string_view family, Labels labels = {});
  Histogram& histogram(std::string_view family, Labels labels = {});

  MetricsSnapshot snapshot() const;

  // Zero every registered instrument (the instruments themselves stay
  // registered and previously resolved references stay valid). Used by
  // tools that reuse the global registry across runs.
  void reset_values();

  static MetricsRegistry& global();

 private:
  using Key = std::pair<std::string, Labels>;

  mutable std::mutex mu_;
  std::map<Key, std::unique_ptr<Counter>> counters_;
  std::map<Key, std::unique_ptr<Gauge>> gauges_;
  std::map<Key, std::unique_ptr<Histogram>> histograms_;
};

// Resolve `reg ? *reg : MetricsRegistry::global()` — the convention every
// engine uses for its optional registry parameter.
inline MetricsRegistry& registry_or_global(MetricsRegistry* reg) {
  return reg ? *reg : MetricsRegistry::global();
}

// Family names shared across engines, so the exporters and the equivalence
// tests agree on spelling. Engine-deterministic families (everything a
// fault-free run emits the same number of times in any engine) are the ones
// test_parallel_equivalence compares; heartbeat/control families are
// wall-clock driven and excluded by design.
namespace family {
inline constexpr char kPicturesDispatched[] = "pictures_dispatched";
inline constexpr char kPicturesSplit[] = "pictures_split";
inline constexpr char kPicturesDecoded[] = "pictures_decoded";
inline constexpr char kPicturesSkipped[] = "pictures_skipped";
inline constexpr char kSpBytesSent[] = "sp_bytes_sent";
inline constexpr char kExchangeBytesSent[] = "exchange_bytes_sent";
inline constexpr char kExchangeBytesRecv[] = "exchange_bytes_recv";
inline constexpr char kGoAheadsSeen[] = "go_aheads_seen";
inline constexpr char kAcksSent[] = "acks_sent";
inline constexpr char kAcksRecv[] = "acks_recv";
inline constexpr char kSkipBroadcasts[] = "skip_broadcasts";
inline constexpr char kDeathsDeclared[] = "deaths_declared";
inline constexpr char kAdoptions[] = "adoptions";
inline constexpr char kConcealedMbs[] = "concealed_mbs";
inline constexpr char kQueueDepth[] = "queue_depth";        // gauge
inline constexpr char kHeartbeatsSent[] = "heartbeats_sent";
inline constexpr char kHeartbeatsRecv[] = "heartbeats_recv";
inline constexpr char kControlBytes[] = "control_bytes";
inline constexpr char kRetransmits[] = "retransmits";
inline constexpr char kAbandonedSends[] = "abandoned_sends";
inline constexpr char kCrcDrops[] = "crc_drops";
// Buffer-pool telemetry (src/mem). Misses are exactly the hot-path mallocs
// the pools exist to eliminate: the steady-state acceptance gate asserts the
// miss delta over a warmed-up run is zero. Global-registry only (pool state
// is process-wide), so engine-local registries stay engine-deterministic.
inline constexpr char kPoolHits[] = "pool_hits";
inline constexpr char kPoolMisses[] = "pool_misses";
inline constexpr char kPoolRecycles[] = "pool_recycles";
inline constexpr char kPoolBytesInFlight[] = "pool_bytes_in_flight";  // gauge
inline constexpr char kSurfacePoolHits[] = "surface_pool_hits";
inline constexpr char kSurfacePoolMisses[] = "surface_pool_misses";
inline constexpr char kSurfacePoolRecycles[] = "surface_pool_recycles";
inline constexpr char kSurfacePoolBytesInFlight[] =
    "surface_pool_bytes_in_flight";  // gauge
// Allocations that fell back to plain heap blocks because the pool byte
// budget was spent — the memory leg of the overload/backpressure signal
// (a growing value means current demand exceeds the configured budget).
inline constexpr char kPoolBudgetFallbacks[] = "pool_budget_fallbacks";
inline constexpr char kSurfacePoolBudgetFallbacks[] =
    "surface_pool_budget_fallbacks";
// Multi-tenant admission & QoS (src/proto/admission.h). Admission counters
// are unlabeled totals; the per-tenant families are labeled {stream} and
// feed wall_top's tenant table.
inline constexpr char kAdmissionAccepted[] = "admission_accepted";
inline constexpr char kAdmissionRejected[] = "admission_rejected";
inline constexpr char kAdmissionRenegotiated[] = "admission_renegotiated";
inline constexpr char kTenantAdmitted[] = "tenant_admitted";        // gauge
inline constexpr char kTenantPriorityClass[] = "tenant_priority";   // gauge
inline constexpr char kTenantDegradeLevel[] = "tenant_degrade";     // gauge
inline constexpr char kTenantPicturesShed[] = "tenant_pictures_shed";
inline constexpr char kTenantDeadlineMisses[] = "tenant_deadline_misses";
inline constexpr char kTenantDeadlineChecks[] = "tenant_deadline_checks";
// Socket-transport families (src/net/socket_fabric.h + adaptive RTO in
// src/net/reliable.h). Labeled {node = self}; wall-clock / link driven, so
// excluded from engine-equivalence comparisons by design.
inline constexpr char kRttNs[] = "rtt_ns";                  // histogram
inline constexpr char kRttJitterNs[] = "rtt_jitter_ns";     // histogram
inline constexpr char kSocketDatagramsTx[] = "socket_datagrams_tx";
inline constexpr char kSocketDatagramsRx[] = "socket_datagrams_rx";
inline constexpr char kSocketRxDrops[] = "socket_rx_drops";
inline constexpr char kSocketPeerUnreachable[] = "socket_peer_unreachable";
inline constexpr char kSplitNs[] = "split_ns";              // histogram
inline constexpr char kDecodeNs[] = "decode_ns";            // histogram
inline constexpr char kServeNs[] = "serve_ns";              // histogram
inline constexpr char kGoAheadWaitNs[] = "go_ahead_wait_ns";  // histogram
// Adaptive-partition dashboard mirror (src/proto/nodes.cpp publishes these
// on every install, wall_top --partitions and --remote read them). Cut
// gauges are labeled {node = cut index} on the m×n grid.
inline constexpr char kPartitionEpoch[] = "partition_epoch";          // gauge
inline constexpr char kPartitionColCutMb[] = "partition_col_cut_mb";  // gauge
inline constexpr char kPartitionRowCutMb[] = "partition_row_cut_mb";  // gauge
// Flight recorder (src/obs/flight.h): post-mortem dumps written so far.
inline constexpr char kFlightDumps[] = "flight_dumps";
}  // namespace family

}  // namespace pdw::obs
