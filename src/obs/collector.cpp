#include "obs/collector.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace pdw::obs {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (uint8_t(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Percentile over merged (bucket index -> count), same definition as
// Histogram::percentile: lower edge of the bucket holding the
// ceil(p/100 * n)-th sample.
uint64_t bucket_percentile(const std::map<int, uint64_t>& buckets, uint64_t n,
                           double p) {
  if (n == 0) return 0;
  const double clamped = std::min(std::max(p, 0.0), 100.0);
  const uint64_t rank =
      std::max<uint64_t>(1, uint64_t(std::ceil(clamped / 100.0 * double(n))));
  uint64_t cum = 0;
  for (const auto& [idx, c] : buckets) {
    cum += c;
    if (cum >= rank) return Histogram::bucket_lower(idx);
  }
  return Histogram::bucket_lower(Histogram::kBuckets - 1);
}

}  // namespace

Collector::Collector(CollectorConfig cfg)
    : cfg_(cfg), epoch_(std::chrono::steady_clock::now()) {
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ < 0) return;
  int reuse = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(cfg_.port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd_);
    fd_ = -1;
    return;
  }
  // Short receive timeout: the loop stays responsive to probes (RTT
  // accuracy) and still notices stop_ promptly.
  timeval tv{};
  tv.tv_usec = 20 * 1000;
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  sockaddr_in bound{};
  socklen_t blen = sizeof(bound);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &blen) == 0)
    local_ = TelemetryEndpoint{kTelemetryLoopbackIp, ntohs(bound.sin_port)};
}

Collector::~Collector() {
  stop();
  if (fd_ >= 0) ::close(fd_);
}

uint64_t Collector::now_ns() const {
  return uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - epoch_)
                      .count());
}

void Collector::start() {
  if (started_ || fd_ < 0) return;
  started_ = true;
  stop_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this] { run_loop(); });
}

void Collector::stop() {
  if (!started_) return;
  stop_.store(true, std::memory_order_relaxed);
  thread_.join();
  started_ = false;
}

void Collector::run_loop() {
  uint8_t buf[64 * 1024];
  while (!stop_.load(std::memory_order_relaxed)) {
    sockaddr_in src{};
    socklen_t slen = sizeof(src);
    const ssize_t n = ::recvfrom(fd_, buf, sizeof(buf), 0,
                                 reinterpret_cast<sockaddr*>(&src), &slen);
    if (n <= 0) continue;  // timeout or spurious error
    handle_datagram(buf, size_t(n), ntohl(src.sin_addr.s_addr),
                    ntohs(src.sin_port));
  }
}

void Collector::poll() {
  if (fd_ < 0) return;
  uint8_t buf[64 * 1024];
  for (;;) {
    sockaddr_in src{};
    socklen_t slen = sizeof(src);
    const ssize_t n =
        ::recvfrom(fd_, buf, sizeof(buf), MSG_DONTWAIT,
                   reinterpret_cast<sockaddr*>(&src), &slen);
    if (n <= 0) break;
    handle_datagram(buf, size_t(n), ntohl(src.sin_addr.s_addr),
                    ntohs(src.sin_port));
  }
}

void Collector::handle_datagram(const uint8_t* data, size_t len,
                                uint32_t src_ip, uint16_t src_port) {
  const uint64_t t_recv = now_ns();
  TelemetryFrame f;
  if (!decode_frame(data, len, &f)) return;

  // Answer clock probes before touching any state: t2 should trail t1 by as
  // little as possible.
  for (const ClockProbeRecord& p : f.probes) {
    TelemetryFrame reply;
    reply.token = 0;
    reply.replies.push_back(
        ClockReplyRecord{p.seq, p.t0, t_recv, now_ns()});
    const std::vector<uint8_t> wire = encode_frame(reply);
    const TelemetryEndpoint to =
        p.reply_to.port != 0 ? p.reply_to
                             : TelemetryEndpoint{src_ip, src_port};
    sockaddr_in dst{};
    dst.sin_family = AF_INET;
    dst.sin_addr.s_addr = htonl(to.ip);
    dst.sin_port = htons(to.port);
    ::sendto(fd_, wire.data(), wire.size(), 0,
             reinterpret_cast<sockaddr*>(&dst), sizeof(dst));
  }
  if (f.token == 0) return;  // probe-only senders carry no state

  std::lock_guard<std::mutex> lock(mu_);
  datagrams_ += 1;
  bytes_ += len;
  Proc& proc = procs_[f.token];
  proc.info.token = f.token;
  proc.info.datagrams += 1;
  proc.info.bytes += len;
  proc.info.last_seen_ns = t_recv;
  bool stale = false;  // out-of-order frame: spans still append, absolutes skip
  if (proc.seq_seen) {
    if (f.seq > proc.last_seq + 1)
      proc.info.seq_gaps += f.seq - proc.last_seq - 1;
    stale = f.seq <= proc.last_seq;
  }
  if (!stale) {
    proc.last_seq = f.seq;
    proc.seq_seen = true;
  }
  if (f.hello) {
    proc.info.os_pid = f.hello->os_pid;
    proc.info.nodes.clear();
    for (uint16_t n : f.hello->hosted) proc.info.nodes.push_back(int(n));
    if (f.hello->nodes) {
      k_ = f.hello->k;
      tiles_ = f.hello->tiles;
      nodes_expected_ = f.hello->nodes;
    }
  }
  if (f.offset && !stale) {
    proc.info.offset_valid = f.offset->valid != 0;
    proc.info.offset_ns = f.offset->offset_ns;
    proc.info.min_rtt_ns = f.offset->min_rtt_ns;
    proc.info.clock_samples = f.offset->samples;
  }
  if (f.bye) proc.info.bye = true;
  if (!stale)
    for (MetricRecord& m : f.metrics) {
      const auto key = std::make_tuple(m.family, int(m.node), int(m.stream),
                                       int(m.kind));
      proc.metrics[key] = std::move(m);
    }
  for (SpanRecord& s : f.spans) {
    if (proc.spans.size() >= cfg_.max_spans_per_process)
      proc.spans.erase(proc.spans.begin(),
                       proc.spans.begin() +
                           long(cfg_.max_spans_per_process / 4));
    proc.info.span_events += 1;
    proc.spans.push_back(std::move(s));
  }
}

std::vector<Collector::ProcessInfo> Collector::processes() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ProcessInfo> out;
  out.reserve(procs_.size());
  for (const auto& [token, p] : procs_) out.push_back(p.info);
  return out;
}

int Collector::k() const {
  std::lock_guard<std::mutex> lock(mu_);
  return k_;
}
int Collector::tiles() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tiles_;
}
int Collector::nodes_expected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return nodes_expected_;
}

std::vector<int> Collector::nodes_seen() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<int> out;
  for (const auto& [token, p] : procs_)
    out.insert(out.end(), p.info.nodes.begin(), p.info.nodes.end());
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

bool Collector::all_nodes_seen() const {
  const int expected = nodes_expected();
  if (expected == 0) return false;
  const std::vector<int> seen = nodes_seen();
  if (int(seen.size()) < expected) return false;
  for (int n = 0; n < expected; ++n)
    if (!std::binary_search(seen.begin(), seen.end(), n)) return false;
  return true;
}

bool Collector::all_bye() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (procs_.empty()) return false;
  for (const auto& [token, p] : procs_)
    if (!p.info.bye) return false;
  return true;
}

MetricsSnapshot Collector::merged_metrics() const {
  struct Merged {
    MetricKind kind = MetricKind::kCounter;
    uint64_t count = 0;
    int64_t gauge = 0;
    uint64_t sum = 0;
    std::map<int, uint64_t> buckets;
  };
  std::map<std::tuple<std::string, int, int, int>, Merged> merged;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [token, p] : procs_)
      for (const auto& [key, m] : p.metrics) {
        Merged& g = merged[key];
        g.kind = m.kind;
        g.count += m.count;
        g.gauge += m.gauge;
        g.sum += m.sum;
        for (const auto& [idx, c] : m.buckets) g.buckets[idx] += c;
      }
  }
  MetricsSnapshot snap;
  for (const auto& [key, g] : merged) {
    MetricValue v;
    v.family = std::get<0>(key);
    v.labels = Labels{std::get<1>(key), std::get<2>(key)};
    v.kind = g.kind;
    v.count = g.count;
    v.gauge = g.gauge;
    v.sum = g.sum;
    if (g.kind == MetricKind::kHistogram) {
      v.p50 = bucket_percentile(g.buckets, g.count, 50);
      v.p95 = bucket_percentile(g.buckets, g.count, 95);
      v.p99 = bucket_percentile(g.buckets, g.count, 99);
      for (const auto& [idx, c] : g.buckets)
        v.buckets.emplace_back(Histogram::bucket_lower(idx), c);
    }
    snap.values.push_back(std::move(v));
  }
  std::sort(snap.values.begin(), snap.values.end(),
            [](const MetricValue& a, const MetricValue& b) {
              if (a.family != b.family) return a.family < b.family;
              return a.labels < b.labels;
            });
  return snap;
}

uint64_t Collector::datagrams_received() const {
  std::lock_guard<std::mutex> lock(mu_);
  return datagrams_;
}

uint64_t Collector::bytes_received() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

bool Collector::write_merged_trace(const std::string& path) const {
  struct Ev {
    std::string name;
    char ph;
    int32_t pid, tid;
    uint64_t ts_ns, dur_ns;
    uint32_t pic;
    uint64_t flow_id;  // s/f events only
  };
  std::vector<Ev> evs;
  std::vector<ProcessInfo> infos;
  int k = 0, tiles = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    k = k_;
    tiles = tiles_;
    for (const auto& [token, p] : procs_) {
      infos.push_back(p.info);
      // Rebase each process's span timestamps into the collector clock
      // domain with its estimated offset (0 until the first probe lands —
      // the trace is still loadable, just unaligned for that process).
      const int64_t off = p.info.offset_valid ? p.info.offset_ns : 0;
      for (const SpanRecord& s : p.spans) {
        const int64_t ts = int64_t(s.ts_ns) + off;
        evs.push_back(Ev{s.name, s.ph, s.pid, s.tid,
                         ts > 0 ? uint64_t(ts) : 0, s.dur_ns, s.pic, 0});
      }
    }
  }

  // Synthesize cross-process flows from the picture tags: for each picture,
  // root copy_pic -> every splitter split_pic, and each splitter split_pic
  // -> the decode_sp of the decoders it plausibly feeds (contiguous tile
  // ranges — the collector cannot recover exact SP routing from spans, and
  // the flow is a navigation aid, not accounting). Flow anchors sit at the
  // midpoint of their span so Perfetto binds them to the right slice.
  struct PicSpans {
    const Ev* copy = nullptr;
    std::map<int32_t, const Ev*> splits;   // pid -> split_pic
    std::map<int32_t, const Ev*> decodes;  // pid -> decode_sp
  };
  std::map<uint32_t, PicSpans> by_pic;
  for (const Ev& e : evs) {
    if (e.ph != 'X' || e.pic == 0xFFFFFFFFu) continue;
    PicSpans& ps = by_pic[e.pic];
    if (e.name == "copy_pic" && e.pid == 0)
      ps.copy = &e;
    else if (e.name == "split_pic")
      ps.splits[e.pid] = &e;
    else if (e.name == "decode_sp")
      ps.decodes[e.pid] = &e;
  }
  std::vector<Ev> flows;
  uint64_t next_flow = 1;
  auto link = [&](const Ev& src, const Ev& dst) {
    const uint64_t id = next_flow++;
    flows.push_back(Ev{"pic_flow", 's', src.pid, src.tid,
                       src.ts_ns + src.dur_ns / 2, 0, src.pic, id});
    flows.push_back(Ev{"pic_flow", 'f', dst.pid, dst.tid,
                       dst.ts_ns + dst.dur_ns / 2, 0, dst.pic, id});
  };
  for (const auto& [pic, ps] : by_pic) {
    for (const auto& [spid, split] : ps.splits)
      if (ps.copy) link(*ps.copy, *split);
    if (ps.splits.empty()) continue;
    std::vector<const Ev*> splits;
    for (const auto& [spid, split] : ps.splits) splits.push_back(split);
    size_t di = 0;
    const size_t per =
        (ps.decodes.size() + splits.size() - 1) / splits.size();
    for (const auto& [dpid, dec] : ps.decodes) {
      link(*splits[std::min(di / std::max<size_t>(per, 1),
                            splits.size() - 1)],
           *dec);
      ++di;
    }
  }
  for (Ev& e : flows) evs.push_back(std::move(e));

  std::stable_sort(evs.begin(), evs.end(),
                   [](const Ev& a, const Ev& b) { return a.ts_ns < b.ts_ns; });

  std::FILE* out = std::fopen(path.c_str(), "w");
  if (!out) return false;
  std::fprintf(out, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
  bool first = true;
  auto comma = [&] {
    if (!first) std::fprintf(out, ",\n");
    first = false;
  };
  // Process-name metadata: role from the announced wall shape.
  std::map<int32_t, std::string> names;
  for (const Ev& e : evs) {
    if (names.count(e.pid)) continue;
    char buf[64];
    if (e.pid == 0)
      std::snprintf(buf, sizeof(buf), "root 0");
    else if (k > 0 && e.pid <= k)
      std::snprintf(buf, sizeof(buf), "splitter %d", e.pid);
    else if (k > 0 && tiles > 0 && e.pid <= k + tiles)
      std::snprintf(buf, sizeof(buf), "decoder %d (tile %d)", e.pid,
                    e.pid - k - 1);
    else
      std::snprintf(buf, sizeof(buf), "node %d", e.pid);
    names[e.pid] = buf;
  }
  for (const auto& [pid, name] : names) {
    comma();
    std::fprintf(out,
                 "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,"
                 "\"tid\":0,\"args\":{\"name\":\"%s\"}}",
                 pid, json_escape(name).c_str());
  }
  for (const Ev& e : evs) {
    comma();
    const double ts_us = double(e.ts_ns) / 1000.0;
    if (e.ph == 'X') {
      std::fprintf(out,
                   "{\"name\":\"%s\",\"ph\":\"X\",\"pid\":%d,\"tid\":%d,"
                   "\"ts\":%.3f,\"dur\":%.3f",
                   json_escape(e.name).c_str(), e.pid, e.tid, ts_us,
                   double(e.dur_ns) / 1000.0);
    } else if (e.ph == 'i') {
      std::fprintf(out,
                   "{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"pid\":%d,"
                   "\"tid\":%d,\"ts\":%.3f",
                   json_escape(e.name).c_str(), e.pid, e.tid, ts_us);
    } else {  // 's' / 'f'
      std::fprintf(out,
                   "{\"name\":\"%s\",\"cat\":\"pic\",\"ph\":\"%c\",%s"
                   "\"id\":%llu,\"pid\":%d,\"tid\":%d,\"ts\":%.3f",
                   json_escape(e.name).c_str(), e.ph,
                   e.ph == 'f' ? "\"bp\":\"e\"," : "",
                   static_cast<unsigned long long>(e.flow_id), e.pid, e.tid,
                   ts_us);
    }
    if (e.pic != 0xFFFFFFFFu && (e.ph == 'X' || e.ph == 'i'))
      std::fprintf(out, ",\"args\":{\"pic\":%u}", e.pic);
    std::fprintf(out, "}");
  }
  std::fprintf(out, "\n],\n\"otherData\":{\"processes\":%zu", infos.size());
  uint64_t gaps = 0;
  for (const ProcessInfo& p : infos) gaps += p.seq_gaps;
  std::fprintf(out, ",\"sidebandSeqGaps\":%llu",
               static_cast<unsigned long long>(gaps));
  std::fprintf(out, ",\"clockOffsets\":[");
  for (size_t i = 0; i < infos.size(); ++i) {
    std::fprintf(
        out, "%s{\"pid\":%u,\"valid\":%s,\"offsetNs\":%lld,\"minRttNs\":%llu}",
        i ? "," : "", infos[i].os_pid, infos[i].offset_valid ? "true" : "false",
        static_cast<long long>(infos[i].offset_ns),
        static_cast<unsigned long long>(infos[i].min_rtt_ns));
  }
  std::fprintf(out, "]}}\n");
  const bool ok2 = std::fflush(out) == 0;
  std::fclose(out);
  return ok2;
}

}  // namespace pdw::obs
