#include "mpeg2/motion.h"

#include <cstring>

#include "kernels/kernels.h"

namespace pdw::mpeg2 {

void FrameRefSource::fetch(int c, int x, int y, int w, int h, uint8_t* dst,
                           int stride) const {
  const Plane& p = frame_->plane(c);
  PDW_CHECK_GE(x, 0);
  PDW_CHECK_GE(y, 0);
  PDW_CHECK_LE(x + w, p.width());
  PDW_CHECK_LE(y + h, p.height());
  for (int r = 0; r < h; ++r)
    std::memcpy(dst + size_t(r) * stride, p.row(y + r) + x, size_t(w));
}

namespace {

// Predict all three planes of one macroblock for direction s.
void predict_one_direction(const Macroblock& mb, int s, const RefSource* ref,
                           int mbx, int mby, MacroblockPixels* out) {
  PDW_CHECK(ref != nullptr) << "missing reference for prediction";
  uint8_t window[17 * 17];

  for (int c = 0; c < 3; ++c) {
    const int S = c == 0 ? 16 : 8;
    // Chroma vectors are the luma vector divided by two, truncating toward
    // zero (§7.6.3.7 for 4:2:0 frame prediction).
    const int mvx = c == 0 ? mb.mv[s][0] : mb.mv[s][0] / 2;
    const int mvy = c == 0 ? mb.mv[s][1] : mb.mv[s][1] / 2;
    const int hx = mvx & 1;
    const int hy = mvy & 1;
    const int x = S * mbx + (mvx >> 1);
    const int y = S * mby + (mvy >> 1);
    ref->fetch(c, x, y, S + hx, S + hy, window, 17);
    uint8_t* dst = c == 0 ? out->y : (c == 1 ? out->cb : out->cr);
    kernels::active().interp_halfpel(window, 17, dst, S, S, hx, hy);
  }
}

}  // namespace

void motion_compensate(const Macroblock& mb, const RefSource* fwd,
                       const RefSource* bwd, int mbx, int mby,
                       MacroblockPixels* pred) {
  const bool f = mb.has_fwd() || !mb.has_bwd();  // P "No MC" predicts forward
  const bool b = mb.has_bwd();
  if (f && b) {
    MacroblockPixels back;
    predict_one_direction(mb, 0, fwd, mbx, mby, pred);
    predict_one_direction(mb, 1, bwd, mbx, mby, &back);
    const auto& k = kernels::active();
    k.avg_pixels(pred->y, back.y, sizeof(pred->y));
    k.avg_pixels(pred->cb, back.cb, sizeof(pred->cb));
    k.avg_pixels(pred->cr, back.cr, sizeof(pred->cr));
  } else if (b) {
    predict_one_direction(mb, 1, bwd, mbx, mby, pred);
  } else {
    predict_one_direction(mb, 0, fwd, mbx, mby, pred);
  }
}

SrcWindow luma_source_window(const Macroblock& mb, int s, int mbx, int mby) {
  const int mvx = mb.mv[s][0];
  const int mvy = mb.mv[s][1];
  SrcWindow w;
  w.x0 = 16 * mbx + (mvx >> 1);
  w.y0 = 16 * mby + (mvy >> 1);
  w.x1 = w.x0 + 16 + (mvx & 1);
  w.y1 = w.y0 + 16 + (mvy & 1);
  return w;
}

}  // namespace pdw::mpeg2
