// Core MPEG-2 video data types shared by the decoder, the encoder and the
// macroblock-level splitter.
//
// Scope (see DESIGN.md §2): Main Profile, 4:2:0, progressive frame pictures,
// frame prediction / frame DCT. Interlaced coding tools and intra_vlc_format=1
// are intentionally rejected at parse time.
#pragma once

#include <array>
#include <cstdint>

#include "common/check.h"

namespace pdw::mpeg2 {

inline constexpr int kMbSize = 16;       // luma macroblock edge
inline constexpr int kBlockSize = 8;     // DCT block edge
inline constexpr int kBlocksPerMb = 6;   // 4 Y + Cb + Cr (4:2:0)

enum class PicType : uint8_t { I = 1, P = 2, B = 3 };

inline const char* pic_type_name(PicType t) {
  switch (t) {
    case PicType::I: return "I";
    case PicType::P: return "P";
    case PicType::B: return "B";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Headers (ISO/IEC 13818-2 §6.2)
// ---------------------------------------------------------------------------

struct SequenceHeader {
  int width = 0;   // horizontal_size (true size; MB-aligned internally)
  int height = 0;  // vertical_size
  int aspect_ratio_code = 1;     // 1 = square pixels
  int frame_rate_code = 5;       // 5 = 30 fps, 3 = 25 fps, 1 = 23.976 ...
  int bit_rate_value = 0x3FFFF;  // in 400 bit/s units (0x3FFFF = variable)
  int vbv_buffer_size = 112;
  std::array<uint8_t, 64> intra_quant;      // in zigzag order as transmitted
  std::array<uint8_t, 64> non_intra_quant;  // (stored in raster order here)
  bool loaded_intra_quant = false;
  bool loaded_non_intra_quant = false;

  // From the sequence extension.
  bool progressive_sequence = true;
  int profile_and_level = 0x44;  // Main@High

  int mb_width() const { return (width + kMbSize - 1) / kMbSize; }
  int mb_height() const { return (height + kMbSize - 1) / kMbSize; }
  int mbs_per_picture() const { return mb_width() * mb_height(); }

  // Frame rate in frames/s from frame_rate_code.
  double frame_rate() const;
};

struct GopHeader {
  uint32_t time_code = 0;
  bool closed_gop = true;
  bool broken_link = false;
};

struct PictureHeader {
  int temporal_reference = 0;  // display order within GOP, mod 1024
  PicType type = PicType::I;
  int vbv_delay = 0xFFFF;
};

struct PictureCodingExt {
  // f_code[s][t]: s = 0 forward / 1 backward, t = 0 horizontal / 1 vertical.
  int f_code[2][2] = {{15, 15}, {15, 15}};  // 15 = unused
  int intra_dc_precision = 0;  // 0 => 8 bits ... 3 => 11 bits
  int picture_structure = 3;   // 3 = frame picture (only supported value)
  bool top_field_first = true;
  bool frame_pred_frame_dct = true;  // only supported value
  bool concealment_motion_vectors = false;
  bool q_scale_type = false;   // false = linear, true = non-linear
  bool intra_vlc_format = false;  // only false supported
  bool alternate_scan = false;
  bool repeat_first_field = false;
  bool chroma_420_type = true;
  bool progressive_frame = true;

  int dc_reset_value() const { return 1 << (intra_dc_precision + 7); }
  int intra_dc_mult() const { return 8 >> intra_dc_precision; }
};

// Everything the macroblock layer needs to parse/decode one picture.
struct PictureContext {
  const SequenceHeader* seq = nullptr;
  PictureHeader ph;
  PictureCodingExt pce;

  int mb_width() const { return seq->mb_width(); }
  int mb_height() const { return seq->mb_height(); }
};

// ---------------------------------------------------------------------------
// Macroblock layer
// ---------------------------------------------------------------------------

// macroblock_type flag bits (decoded from tables B.2/B.3/B.4).
namespace mb_flags {
inline constexpr uint8_t kQuant = 0x01;
inline constexpr uint8_t kMotionForward = 0x02;
inline constexpr uint8_t kMotionBackward = 0x04;
inline constexpr uint8_t kPattern = 0x08;
inline constexpr uint8_t kIntra = 0x10;
}  // namespace mb_flags

// Rolling VLC-decode state at macroblock granularity. This is exactly the
// state the paper's State Propagation Header (§4.3) must carry to let a tile
// decoder resume mid-slice.
struct MbState {
  int32_t dc_pred[3] = {0, 0, 0};  // Y, Cb, Cr DC predictors
  int16_t pmv[2][2] = {{0, 0}, {0, 0}};  // [fwd/bwd][x/y] motion predictors
  uint8_t quant_scale_code = 1;          // current quantiser_scale_code
  // Direction flags of the previous macroblock; B-picture skipped macroblocks
  // repeat the previous macroblock's prediction directions.
  uint8_t prev_motion_flags = 0;

  void reset_dc(const PictureCodingExt& pce) {
    dc_pred[0] = dc_pred[1] = dc_pred[2] = pce.dc_reset_value();
  }
  void reset_pmv() { pmv[0][0] = pmv[0][1] = pmv[1][0] = pmv[1][1] = 0; }

  friend bool operator==(const MbState&, const MbState&) = default;
};

// One parsed macroblock. `coeff` holds dequantized coefficients in raster
// order when parsed in Mode::kFull; in Mode::kScan the VLCs are consumed but
// coefficients are not reconstructed (this is the splitter's cheap pass).
struct Macroblock {
  int32_t addr = 0;  // raster macroblock address in the picture
  uint8_t flags = 0;
  bool skipped = false;
  uint8_t quant_scale_code = 1;  // effective quantiser for this macroblock
  int16_t mv[2][2] = {{0, 0}, {0, 0}};  // [fwd/bwd][x/y], luma half-pel units
  int cbp = 0;                          // bit 5..0 = Y0 Y1 Y2 Y3 Cb Cr
  alignas(16) int16_t coeff[kBlocksPerMb][64] = {};

  int mb_x(int mb_width) const { return addr % mb_width; }
  int mb_y(int mb_width) const { return addr / mb_width; }
  bool intra() const { return flags & mb_flags::kIntra; }
  bool has_fwd() const { return flags & mb_flags::kMotionForward; }
  bool has_bwd() const { return flags & mb_flags::kMotionBackward; }
};

// quantiser_scale_code -> quantiser_scale (§7.4.2.2).
int quantiser_scale(bool q_scale_type, int code);

}  // namespace pdw::mpeg2
