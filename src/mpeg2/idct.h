// 8x8 inverse DCT.
//
// fast_idct_8x8 is the classic 32-bit fixed-point row/column IDCT
// (Wang's factorization, as popularized by the mpeg2play/mpeg2dec decoders).
// It forwards to the dispatched kernel table (src/kernels): a scalar
// reference plus bit-exact SSE2/AVX2 variants selected at startup, so every
// decode path — serial reference decoder and tile decoders alike — computes
// identical residuals at any dispatch level, which is what keeps the
// parallel-vs-serial bit-exactness invariant (DESIGN.md §5.1) achievable.
//
// reference_idct_8x8 is a double-precision direct implementation used only
// by accuracy unit tests (IEEE-1180-style comparison).
#pragma once

#include <cstdint>

namespace pdw::mpeg2 {

// In-place IDCT. Input: dequantized coefficients (raster order), output:
// spatial residual values clamped to [-256, 255].
void fast_idct_8x8(int16_t block[64]);

// Double-precision reference (no clamping beyond [-256,255] rounding).
void reference_idct_8x8(const int16_t in[64], double out[64]);

// Forward DCT (double precision), used by the encoder and by tests.
void forward_dct_8x8(const int16_t in[64], int16_t out[64]);

}  // namespace pdw::mpeg2
