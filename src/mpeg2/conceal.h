// Macroblock concealment for damaged slices.
//
// When slice parsing fails, every macroblock the slice should have produced
// but did not is *concealed*: replaced by the zero-motion-vector prediction
// from the forward reference (P/B pictures) or by a flat mid-grey fill
// (I pictures, or when no reference exists yet). Both the serial concealing
// decoder and the tile decoders run the exact same plan through the exact
// same executor, which is what keeps an m*n-tile wall bit-identical to the
// serial decoder on damaged input.
//
// The plan is computed by ConcealPlanner from slice-parse coverage alone —
// no pixel data — so the macroblock-level splitter (which only scans) can
// derive the identical plan and ship it to tiles as CONCEAL instructions
// alongside the MEI SEND/RECV lists.
#pragma once

#include <cstdint>
#include <vector>

#include "mpeg2/frame.h"
#include "mpeg2/motion.h"
#include "mpeg2/types.h"

namespace pdw::mpeg2 {

// One macroblock to conceal, with the flat fill to use when no reference
// prediction is possible. The fill is carried explicitly (rather than
// re-derived at the tile) so the wire format stays self-contained.
struct ConcealSpec {
  int mb_x = 0;
  int mb_y = 0;
  uint8_t fill_y = 128;
  uint8_t fill_cb = 128;
  uint8_t fill_cr = 128;

  friend bool operator==(const ConcealSpec&, const ConcealSpec&) = default;
};

// The flat fill for concealed macroblocks without a usable reference: the
// reconstruction of an intra block whose DC predictors are at their §7.2.1
// reset value and whose AC coefficients are all zero. For every
// intra_dc_precision this works out to mid-grey ((reset * mult + 4) >> 3 ==
// 128), but deriving it keeps the rule honest if the profile subset grows.
uint8_t conceal_fill_value(const PictureCodingExt& pce);

// Tracks which macroblocks of the current picture were actually delivered
// by slice parsing; everything else gets concealed. Identical inputs (the
// same parse over the same bits) yield an identical plan, whether driven by
// the serial decoder or by the splitter's scan pass.
class ConcealPlanner {
 public:
  void begin(int mb_width, int mb_height, const PictureCodingExt& pce);

  // A macroblock (coded or skipped) was successfully parsed at `addr`.
  void mark(int addr);

  int covered_count() const { return covered_count_; }
  int total() const { return int(covered_.size()); }

  // Concealment specs for every uncovered macroblock, in raster order.
  std::vector<ConcealSpec> finish() const;

 private:
  int mb_width_ = 0;
  int covered_count_ = 0;
  uint8_t fill_ = 128;
  std::vector<bool> covered_;
};

// Conceal one macroblock into `out`: zero-MV copy from `fwd` when the
// picture type allows prediction and a reference exists, flat fill
// otherwise. The zero-MV window is the macroblock's own footprint, so a
// tile never needs halo pixels to conceal.
void conceal_mb(PicType type, const RefSource* fwd, const ConcealSpec& spec,
                MacroblockPixels* out);

}  // namespace pdw::mpeg2
