#include "mpeg2/frame.h"

#include <cmath>

namespace pdw::mpeg2 {

double psnr(const Plane& a, const Plane& b) {
  PDW_CHECK_EQ(a.width(), b.width());
  PDW_CHECK_EQ(a.height(), b.height());
  double sse = 0.0;
  for (int y = 0; y < a.height(); ++y) {
    const uint8_t* pa = a.row(y);
    const uint8_t* pb = b.row(y);
    for (int x = 0; x < a.width(); ++x) {
      const double d = double(pa[x]) - double(pb[x]);
      sse += d * d;
    }
  }
  if (sse == 0.0) return 99.0;
  const double mse = sse / (double(a.width()) * a.height());
  return 10.0 * std::log10(255.0 * 255.0 / mse);
}

MacroblockPixels TileFrame::extract_mb(int mbx, int mby) const {
  PDW_CHECK(contains_mb(mbx, mby));
  MacroblockPixels out;
  for (int r = 0; r < 16; ++r)
    std::memcpy(out.y + r * 16, pixel(0, mbx * 16, mby * 16 + r), 16);
  for (int r = 0; r < 8; ++r) {
    std::memcpy(out.cb + r * 8, pixel(1, mbx * 8, mby * 8 + r), 8);
    std::memcpy(out.cr + r * 8, pixel(2, mbx * 8, mby * 8 + r), 8);
  }
  return out;
}

void TileFrame::insert_mb(int mbx, int mby, const MacroblockPixels& px) {
  PDW_CHECK(contains_mb(mbx, mby));
  for (int r = 0; r < 16; ++r)
    std::memcpy(pixel(0, mbx * 16, mby * 16 + r), px.y + r * 16, 16);
  for (int r = 0; r < 8; ++r) {
    std::memcpy(pixel(1, mbx * 8, mby * 8 + r), px.cb + r * 8, 8);
    std::memcpy(pixel(2, mbx * 8, mby * 8 + r), px.cr + r * 8, 8);
  }
}

}  // namespace pdw::mpeg2
