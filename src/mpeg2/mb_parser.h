// Macroblock-layer syntax decoder (§6.2.5/§6.3.17 + §7 reconstruction of
// coefficients and motion vectors).
//
// This single state machine serves three distinct drivers:
//   * the serial reference decoder — parse whole slices in kFull mode;
//   * the second-level (macroblock) splitter — parse whole slices in kScan
//     mode, which consumes the VLCs and tracks predictor state but skips the
//     dequantisation and coefficient stores (this is what makes the split
//     pass cheaper than a decode pass, the t_s < t_d the paper relies on);
//   * tile decoders — parse sub-picture *runs*: a forced start address, a
//     known count of coded macroblocks, and SPH-provided initial state.
//
// The driver receives every macroblock, coded or skipped, through MbSink in
// picture order, along with the decode state *before* the macroblock and the
// exact bit range its coded representation occupies (for payload extraction).
#pragma once

#include "bitstream/bit_reader.h"
#include "common/decode_status.h"
#include "mpeg2/types.h"

namespace pdw::mpeg2 {

enum class ParseMode {
  kFull,  // reconstruct dequantised coefficients into Macroblock::coeff
  kScan,  // consume syntax only (splitter's cheap pass)
};

class MbSink {
 public:
  virtual ~MbSink() = default;
  // `bit_begin`/`bit_end` delimit the macroblock's bits (including its
  // address increment) in the current reader; both are 0 for skipped
  // macroblocks, which occupy no bits.
  virtual void on_macroblock(const Macroblock& mb, const MbState& before,
                             size_t bit_begin, size_t bit_end) = 0;
};

class MbSyntaxDecoder {
 public:
  MbSyntaxDecoder(const PictureContext& ctx, ParseMode mode);

  MbState& state() { return state_; }
  const MbState& state() const { return state_; }
  const PictureContext& ctx() const { return ctx_; }

  // --- Whole-slice driver (decoder / splitter) -----------------------------

  // Result of parsing one slice body. No exceptions are thrown for damaged
  // input on this path: damage is reported in `status` and the caller
  // conceals from `end_addr` (one past the last macroblock delivered to the
  // sink) to the slice resync point.
  struct SliceResult {
    DecodeStatus status;
    int end_addr = 0;
  };

  // Parse one slice body. The reader is positioned after the slice header;
  // `mb_row` and `quant_scale_code` come from the slice header. Emits every
  // successfully parsed macroblock of the slice to `sink` (on failure the
  // damaged macroblock itself is never emitted).
  SliceResult parse_slice_body(BitReader& r, int mb_row, int quant_scale_code,
                               MbSink& sink);

  // --- Sub-picture run driver (tile decoder) --------------------------------
  //
  // Sub-picture payloads were already validated by the splitter's scan pass
  // over the same bits, so a failure here means the split machinery (not the
  // stream) is broken; callers CHECK the returned status.

  // Install SPH-provided state.
  void load_state(const MbState& s) { state_ = s; }

  // Synthesize `count` skipped macroblocks starting at `addr`. Returns false
  // on an impossible skip (skip in an I picture, B skip after intra).
  [[nodiscard]] bool synthesize_skipped(int addr, int count, MbSink& sink);

  // Parse `num_coded` coded macroblocks from `r`. The first macroblock's
  // address is forced to `first_addr` (its address increment is consumed but
  // ignored, per the SPH partial-slice convention); later increments
  // synthesize the interior skipped macroblocks normally.
  [[nodiscard]] DecodeStatus parse_run(BitReader& r, int first_addr,
                                       int num_coded, MbSink& sink);

 private:
  // Parse one coded macroblock at `addr`; updates state. Returns false on
  // damaged syntax (the macroblock is not emitted; error_ is latched).
  bool parse_coded(BitReader& r, int addr, size_t bit_begin, MbSink& sink);

  bool parse_motion_vector(BitReader& r, Macroblock& mb, int s);
  bool parse_block(BitReader& r, Macroblock& mb, int block_index);
  bool emit_skipped(int addr, MbSink& sink);

  // Latch a slice-severity error at the reader's position; returns false so
  // parse helpers can `return fail(...)`.
  bool fail(DecodeErr code, const BitReader& r);

  const PictureContext& ctx_;
  ParseMode mode_;
  MbState state_;
  DecodeStatus error_;  // first damage seen in the current slice/run
  Macroblock scratch_;  // reused to avoid 800-byte clears per macroblock
};

}  // namespace pdw::mpeg2
