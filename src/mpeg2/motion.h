// Motion-compensated prediction (§7.6): frame prediction with half-sample
// interpolation, forward / backward / bidirectional.
//
// Reference pixels are obtained through the RefSource abstraction so the
// same arithmetic serves two very different memory layouts:
//   * the serial decoder reads straight out of full reference Frames;
//   * a tile decoder reads from its tile-local reference region plus the
//     halo of remote macroblocks delivered by MEI exchanges (paper §4.2).
// Identical arithmetic over identical pixels is what makes parallel and
// serial reconstruction bit-exact.
#pragma once

#include "mpeg2/frame.h"
#include "mpeg2/types.h"

namespace pdw::mpeg2 {

class RefSource {
 public:
  virtual ~RefSource() = default;

  // Copy the reference window for plane c (0=Y, 1=Cb, 2=Cr): top-left global
  // coordinate (x, y) in that plane's resolution, size w x h, into dst rows
  // of `stride` bytes. The window is guaranteed to lie inside the picture
  // (MPEG-2 motion vectors may not reference out-of-picture samples).
  virtual void fetch(int c, int x, int y, int w, int h, uint8_t* dst,
                     int stride) const = 0;
};

// RefSource over a full decoded Frame (serial decoder fast path).
class FrameRefSource final : public RefSource {
 public:
  explicit FrameRefSource(const Frame& frame) : frame_(&frame) {}
  void fetch(int c, int x, int y, int w, int h, uint8_t* dst,
             int stride) const override;

 private:
  const Frame* frame_;
};

// Motion-compensate one macroblock at (mbx, mby) into `pred`. Uses mb.mv and
// mb.flags: forward-only, backward-only, or averaged bidirectional. The
// macroblock must have at least one prediction direction.
void motion_compensate(const Macroblock& mb, const RefSource* fwd,
                       const RefSource* bwd, int mbx, int mby,
                       MacroblockPixels* pred);

// The luma-plane source window (in pixels) that predicting direction s of
// this macroblock will read: x in [x0, x1), y in [y0, y1). Used both by MC
// itself and by the splitter's MEI pre-calculation.
struct SrcWindow {
  int x0, y0, x1, y1;
};
SrcWindow luma_source_window(const Macroblock& mb, int s, int mbx, int mby);

}  // namespace pdw::mpeg2
