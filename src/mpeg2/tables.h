// MPEG-2 VLC tables (ISO/IEC 13818-2 Annex B), scan patterns and default
// quantiser matrices, with both decode (BitReader) and encode (BitWriter)
// entry points so the codec substrate is self-consistent end to end.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "bitstream/bit_reader.h"
#include "bitstream/bit_writer.h"
#include "mpeg2/types.h"

namespace pdw::mpeg2 {

// Scan patterns (§7.3): scan index -> raster position.
extern const std::array<uint8_t, 64> kZigzagScan;     // alternate_scan = 0
extern const std::array<uint8_t, 64> kAlternateScan;  // alternate_scan = 1

inline const std::array<uint8_t, 64>& scan_table(bool alternate) {
  return alternate ? kAlternateScan : kZigzagScan;
}

// Default quantiser matrices (§6.3.11), raster order.
extern const std::array<uint8_t, 64> kDefaultIntraQuant;
extern const std::array<uint8_t, 64> kDefaultNonIntraQuant;

// ---------------------------------------------------------------------------
// Generic canonical VLC with LUT decode.
// ---------------------------------------------------------------------------

struct VlcEntry {
  uint32_t code;  // left-justified in `len` bits
  uint8_t len;
  int16_t value;
};

// Prefix-free code table with O(1) decode via a (1 << max_len) lookup table.
// Tables here are tiny (max_len <= 11), so flat LUTs are the simple choice.
class Vlc {
 public:
  Vlc(const VlcEntry* entries, size_t count);

  // Decode the next symbol; CHECKs on an invalid code (stream error).
  int decode(BitReader& r) const;

  // Decode returning false on invalid code instead of throwing.
  bool try_decode(BitReader& r, int* value) const;

  // Encode `value`; CHECKs if the value has no code.
  void encode(BitWriter& w, int value) const;

  int max_len() const { return max_len_; }
  const VlcEntry* find(int value) const;

 private:
  struct LutEntry {
    int16_t value;
    uint8_t len;  // 0 = invalid code
  };
  const VlcEntry* entries_;
  size_t count_;
  int max_len_ = 0;
  std::vector<LutEntry> lut_;
};

// Annex B tables. Values:
//   address increment: 1..33 (escape handled by callers via decode helpers)
//   macroblock type:   mb_flags bitmask
//   coded block pattern: 0..63
//   motion code:       -16..16
//   dct dc size:       0..11
const Vlc& vlc_mb_address_increment();  // B.1 (without the escape code)
const Vlc& vlc_mb_type(PicType type);   // B.2 / B.3 / B.4
const Vlc& vlc_coded_block_pattern();   // B.9
const Vlc& vlc_motion_code();           // B.10
const Vlc& vlc_dct_dc_size_luma();      // B.12
const Vlc& vlc_dct_dc_size_chroma();    // B.13

// --- macroblock_address_increment with escapes --------------------------

// Decode a full address increment (>= 1), consuming any number of
// macroblock_escape codes (each adds 33).
int decode_address_increment(BitReader& r);
// Non-throwing variant for the error-resilient parse path: returns false on
// an invalid code or a runaway escape sequence.
bool try_decode_address_increment(BitReader& r, int* increment);
void encode_address_increment(BitWriter& w, int increment);

// --- DCT coefficients, Table B.14 ----------------------------------------

struct DctCoeff {
  bool eob = false;
  int run = 0;
  int level = 0;  // signed
};

// Decode one run/level pair (or EOB). `first` selects the first-coefficient
// convention for non-intra blocks (code '1s' instead of '11s').
DctCoeff decode_dct_coeff_b14(BitReader& r, bool first);
// Non-throwing variant: returns false on an invalid code or a forbidden
// escape level.
bool try_decode_dct_coeff_b14(BitReader& r, bool first, DctCoeff* out);

// Encode one run/level pair, using the table code when one exists and the
// MPEG-2 escape (6-bit run + 12-bit signed level) otherwise.
void encode_dct_coeff_b14(BitWriter& w, int run, int level, bool first);
void encode_eob_b14(BitWriter& w);

// True if (run, |level|) has a dedicated (non-escape) code in B.14.
bool b14_has_code(int run, int level);

}  // namespace pdw::mpeg2
