#include "mpeg2/mb_parser.h"

#include <cstdlib>
#include <cstring>

#include "mpeg2/motion.h"
#include "mpeg2/quant.h"
#include "mpeg2/tables.h"

namespace pdw::mpeg2 {

using namespace mb_flags;

MbSyntaxDecoder::MbSyntaxDecoder(const PictureContext& ctx, ParseMode mode)
    : ctx_(ctx), mode_(mode) {
  state_.reset_dc(ctx.pce);
}

bool MbSyntaxDecoder::fail(DecodeErr code, const BitReader& r) {
  if (error_.ok())
    error_ = DecodeStatus::error(code, DecodeSeverity::kSlice, r.bit_pos());
  return false;
}

namespace {

// MPEG-2 forbids motion vectors that reference samples outside the picture
// (§7.6.3.8). A damaged-but-decodable VLC can still produce one; validating
// here — in the one parse shared by the serial decoder, the splitter and
// the tile decoders — turns it into an ordinary slice error everywhere at
// once, and downstream reconstruction can keep trusting its windows.
bool motion_in_picture(const PictureContext& ctx, const Macroblock& mb,
                       int mbx, int mby) {
  const bool use_fwd = (mb.flags & kMotionForward) ||
                       (ctx.ph.type == PicType::P && !(mb.flags & kIntra));
  const bool use_bwd = (mb.flags & kMotionBackward) != 0;
  for (int s = 0; s < 2; ++s) {
    if (s == 0 ? !use_fwd : !use_bwd) continue;
    const SrcWindow win = luma_source_window(mb, s, mbx, mby);
    if (win.x0 < 0 || win.y0 < 0 || win.x1 > ctx.mb_width() * 16 ||
        win.y1 > ctx.mb_height() * 16)
      return false;
  }
  return true;
}

}  // namespace

MbSyntaxDecoder::SliceResult MbSyntaxDecoder::parse_slice_body(
    BitReader& r, int mb_row, int quant_scale_code, MbSink& sink) {
  // Slice start resets all predictors (§7.2.1, §7.6.3.4).
  state_.reset_dc(ctx_.pce);
  state_.reset_pmv();
  state_.quant_scale_code = uint8_t(quant_scale_code);
  state_.prev_motion_flags = 0;
  error_ = DecodeStatus::success();

  const int row_base = mb_row * ctx_.mb_width();
  int addr = row_base - 1;  // address of the "previous" macroblock

  while (true) {
    const size_t bit_begin = r.bit_pos();
    int increment = 0;
    if (!try_decode_address_increment(r, &increment)) {
      fail(DecodeErr::kBadVlc, r);
      return {error_, addr + 1};
    }
    // Bound-check before emitting. §6.1.2: the first and last macroblock of
    // a slice lie in the same macroblock row, so an increment that leaves
    // the row is damage. Enforcing it at parse time (rather than just the
    // picture bound) also keeps the splitter's per-tile runs row-local — the
    // property that makes interior-skip re-synthesis stay inside the tile.
    if (addr + increment >= row_base + ctx_.mb_width()) {
      fail(DecodeErr::kBadValue, r);  // macroblock address leaves the slice row
      return {error_, addr + 1};
    }
    // Skipped macroblocks between the previous coded macroblock and this
    // one. (At slice start an increment > 1 is treated as leading skips,
    // matching common decoder practice.)
    for (int i = 1; i < increment; ++i)
      if (!emit_skipped(addr + i, sink)) return {error_, addr + i};
    addr += increment;
    if (!parse_coded(r, addr, bit_begin, sink)) return {error_, addr};
    // One sticky-overrun check per macroblock instead of one per read — the
    // reader zero-fills past the end, so everything between checks is
    // well-defined.
    if (r.overrun()) {
      fail(DecodeErr::kOverrun, r);  // slice overruns picture data
      return {error_, addr + 1};
    }
    // End of slice: the next 23 bits are zero (§6.2.5).
    if (r.peek(23) == 0) break;
  }
  return {DecodeStatus::success(), addr + 1};
}

bool MbSyntaxDecoder::synthesize_skipped(int addr, int count, MbSink& sink) {
  error_ = DecodeStatus::success();
  for (int i = 0; i < count; ++i)
    if (!emit_skipped(addr + i, sink)) return false;
  return true;
}

DecodeStatus MbSyntaxDecoder::parse_run(BitReader& r, int first_addr,
                                        int num_coded, MbSink& sink) {
  error_ = DecodeStatus::success();
  int addr = first_addr - 1;  // so that the forced first MB lands on first_addr
  // Runs come from slices, and slices are row-local (§6.1.2, enforced in
  // parse_slice_body) — mirror the same bound here.
  const int row_end =
      (first_addr / ctx_.mb_width() + 1) * ctx_.mb_width();
  for (int n = 0; n < num_coded; ++n) {
    const size_t bit_begin = r.bit_pos();
    int increment = 0;
    if (!try_decode_address_increment(r, &increment)) {
      fail(DecodeErr::kBadVlc, r);
      return error_;
    }
    if (n == 0) {
      // The first increment was coded relative to a macroblock that belongs
      // to another tile; SPH supplies the true address instead.
      addr = first_addr;
    } else {
      if (addr + increment >= row_end) {
        fail(DecodeErr::kBadValue, r);
        return error_;
      }
      for (int i = 1; i < increment; ++i)
        if (!emit_skipped(addr + i, sink)) return error_;
      addr += increment;
    }
    if (!parse_coded(r, addr, bit_begin, sink)) return error_;
    if (r.overrun()) {
      fail(DecodeErr::kOverrun, r);  // sub-picture run overruns payload
      return error_;
    }
  }
  return DecodeStatus::success();
}

bool MbSyntaxDecoder::emit_skipped(int addr, MbSink& sink) {
  const MbState before = state_;
  Macroblock& mb = scratch_;
  mb.addr = addr;
  mb.skipped = true;
  mb.cbp = 0;
  mb.quant_scale_code = state_.quant_scale_code;

  switch (ctx_.ph.type) {
    case PicType::P:
      // P skip: motion-compensate from the forward reference with a zero
      // vector; resets the motion vector predictors (§7.6.6).
      mb.flags = kMotionForward;
      mb.mv[0][0] = mb.mv[0][1] = 0;
      mb.mv[1][0] = mb.mv[1][1] = 0;
      state_.reset_pmv();
      break;
    case PicType::B: {
      // B skip: repeat the previous macroblock's prediction directions with
      // the current predictor values; predictors are unchanged.
      mb.flags = uint8_t(state_.prev_motion_flags & (kMotionForward | kMotionBackward));
      if (mb.flags == 0) {  // B skipped macroblock after intra: illegal
        if (error_.ok())
          error_ = DecodeStatus::error(DecodeErr::kBadStructure,
                                       DecodeSeverity::kSlice, 0);
        return false;
      }
      for (int s = 0; s < 2; ++s) {
        mb.mv[s][0] = state_.pmv[s][0];
        mb.mv[s][1] = state_.pmv[s][1];
      }
      // The inherited predictors were legal at the previous macroblock's
      // position but may leave the picture at this one.
      if (!motion_in_picture(ctx_, mb, mb.mb_x(ctx_.mb_width()),
                             mb.mb_y(ctx_.mb_width()))) {
        if (error_.ok())
          error_ = DecodeStatus::error(DecodeErr::kBadValue,
                                       DecodeSeverity::kSlice, 0);
        return false;
      }
      break;
    }
    case PicType::I:
      // Skipped macroblocks are illegal in I pictures.
      if (error_.ok())
        error_ = DecodeStatus::error(DecodeErr::kBadStructure,
                                     DecodeSeverity::kSlice, 0);
      return false;
  }
  state_.reset_dc(ctx_.pce);  // DC predictors reset after a skip (§7.2.1)
  sink.on_macroblock(mb, before, 0, 0);
  return true;
}

bool MbSyntaxDecoder::parse_coded(BitReader& r, int addr, size_t bit_begin,
                                  MbSink& sink) {
  const MbState before = state_;
  Macroblock& mb = scratch_;
  mb.addr = addr;
  mb.skipped = false;
  int mb_type = 0;
  if (!vlc_mb_type(ctx_.ph.type).try_decode(r, &mb_type))
    return fail(DecodeErr::kBadVlc, r);
  mb.flags = uint8_t(mb_type);
  mb.cbp = 0;

  // frame_pred_frame_dct == 1 (enforced at parse) means no frame_motion_type
  // or dct_type bits are present here.

  if (mb.flags & kQuant) {
    const int code = int(r.read(5));
    if (code < 1) return fail(DecodeErr::kBadValue, r);
    state_.quant_scale_code = uint8_t(code);
  }
  mb.quant_scale_code = state_.quant_scale_code;

  if (mb.flags & kMotionForward)
    if (!parse_motion_vector(r, mb, 0)) return false;
  if (mb.flags & kMotionBackward)
    if (!parse_motion_vector(r, mb, 1)) return false;

  if (mb.flags & kIntra) {
    // Intra macroblocks reset the motion predictors (no concealment MVs).
    state_.reset_pmv();
    mb.mv[0][0] = mb.mv[0][1] = mb.mv[1][0] = mb.mv[1][1] = 0;
    mb.cbp = 0x3F;  // all six blocks coded
  } else {
    if (ctx_.ph.type == PicType::P && !(mb.flags & kMotionForward)) {
      // "No MC" macroblock: zero forward vector, predictors reset (§7.6.3.5).
      state_.reset_pmv();
      mb.mv[0][0] = mb.mv[0][1] = 0;
    }
    if (mb.flags & kPattern) {
      int cbp = 0;
      if (!vlc_coded_block_pattern().try_decode(r, &cbp))
        return fail(DecodeErr::kBadVlc, r);
      mb.cbp = cbp;
    } else {
      mb.cbp = 0;
    }
  }

  // Copy unused-direction predictors so reconstruction can rely on mb.mv.
  if (!(mb.flags & kIntra)) {
    if (!(mb.flags & kMotionForward) && ctx_.ph.type == PicType::B) {
      mb.mv[0][0] = state_.pmv[0][0];
      mb.mv[0][1] = state_.pmv[0][1];
    }
    if (!(mb.flags & kMotionBackward)) {
      mb.mv[1][0] = state_.pmv[1][0];
      mb.mv[1][1] = state_.pmv[1][1];
    }
    const int mbw = ctx_.mb_width();
    if (!motion_in_picture(ctx_, mb, mb.mb_x(mbw), mb.mb_y(mbw)))
      return fail(DecodeErr::kBadValue, r);  // MV references out-of-picture
  }

  // Blocks.
  if (mode_ == ParseMode::kFull)
    for (auto& block : mb.coeff) std::memset(block, 0, sizeof(block));
  for (int b = 0; b < kBlocksPerMb; ++b)
    if (mb.cbp & (0x20 >> b))
      if (!parse_block(r, mb, b)) return false;

  // Post-macroblock state updates.
  if (!(mb.flags & kIntra)) state_.reset_dc(ctx_.pce);
  state_.prev_motion_flags = uint8_t(mb.flags & (kMotionForward | kMotionBackward));

  // Overrun check BEFORE the emit: an emitted macroblock's bit range must lie
  // inside the payload (the splitter copies [bit_begin, bit_end) verbatim),
  // so a macroblock assembled from zero-fill past the end is damage, not
  // output.
  if (r.overrun()) return fail(DecodeErr::kOverrun, r);

  sink.on_macroblock(mb, before, bit_begin, r.bit_pos());
  return true;
}

bool MbSyntaxDecoder::parse_motion_vector(BitReader& r, Macroblock& mb,
                                          int s) {
  for (int t = 0; t < 2; ++t) {
    const int f_code = ctx_.pce.f_code[s][t];
    // f_code comes from the (possibly damaged) picture coding extension;
    // 0 would make the shift below UB and >9 exceeds the MPEG-2 range.
    if (f_code < 1 || f_code > 9) return fail(DecodeErr::kBadValue, r);
    const int r_size = f_code - 1;
    const int f = 1 << r_size;

    int code = 0;
    if (!vlc_motion_code().try_decode(r, &code))
      return fail(DecodeErr::kBadVlc, r);
    int delta = 0;
    if (code != 0) {
      int residual = 0;
      if (r_size > 0) residual = int(r.read(r_size));
      delta = (std::abs(code) - 1) * f + residual + 1;
      if (code < 0) delta = -delta;
    }

    const int range = 16 * f;  // half-sample units
    int v = state_.pmv[s][t] + delta;
    if (v < -range)
      v += 2 * range;
    else if (v >= range)
      v -= 2 * range;
    state_.pmv[s][t] = int16_t(v);
    mb.mv[s][t] = int16_t(v);
  }
  return true;
}

bool MbSyntaxDecoder::parse_block(BitReader& r, Macroblock& mb,
                                  int block_index) {
  int16_t qfs[64];
  const bool full = mode_ == ParseMode::kFull;
  if (full) std::memset(qfs, 0, sizeof(qfs));

  int n;  // next scan position to fill
  const bool intra = mb.flags & kIntra;
  if (intra) {
    // DC coefficient: size VLC + differential, predicted per component.
    const int cc = block_index < 4 ? 0 : (block_index == 4 ? 1 : 2);
    const Vlc& size_vlc =
        block_index < 4 ? vlc_dct_dc_size_luma() : vlc_dct_dc_size_chroma();
    int size = 0;
    if (!size_vlc.try_decode(r, &size)) return fail(DecodeErr::kBadVlc, r);
    int diff = 0;
    if (size > 0) {
      const int bits = int(r.read(size));
      const int half = 1 << (size - 1);
      diff = bits >= half ? bits : bits - (1 << size) + 1;
    }
    state_.dc_pred[cc] += diff;
    if (full) qfs[0] = int16_t(state_.dc_pred[cc]);
    n = 1;
  } else {
    n = 0;
  }

  // AC coefficients (and the first coefficient of non-intra blocks). A
  // zero-filled overrun region decodes as an invalid B.14 code, so this loop
  // terminates on truncated input without per-read overrun checks.
  bool first = !intra;
  while (true) {
    DctCoeff c;
    if (!try_decode_dct_coeff_b14(r, first, &c))
      return fail(DecodeErr::kBadVlc, r);
    first = false;
    if (c.eob) break;
    n += c.run;
    if (n >= 64) return fail(DecodeErr::kBadValue, r);  // run beyond block
    if (full) qfs[n] = int16_t(c.level);
    ++n;
  }

  if (!full) return true;

  const auto& scan = scan_table(ctx_.pce.alternate_scan);
  const int scale =
      quantiser_scale(ctx_.pce.q_scale_type, state_.quant_scale_code);
  if (intra) {
    dequant_intra(qfs, mb.coeff[block_index], ctx_.seq->intra_quant.data(),
                  scale, ctx_.pce.intra_dc_mult(), scan.data());
  } else {
    dequant_non_intra(qfs, mb.coeff[block_index],
                      ctx_.seq->non_intra_quant.data(), scale, scan.data());
  }
  return true;
}

}  // namespace pdw::mpeg2
