#include "mpeg2/mb_parser.h"

#include <cstdlib>
#include <cstring>

#include "mpeg2/quant.h"
#include "mpeg2/tables.h"

namespace pdw::mpeg2 {

using namespace mb_flags;

MbSyntaxDecoder::MbSyntaxDecoder(const PictureContext& ctx, ParseMode mode)
    : ctx_(ctx), mode_(mode) {
  state_.reset_dc(ctx.pce);
}

int MbSyntaxDecoder::parse_slice_body(BitReader& r, int mb_row,
                                      int quant_scale_code, MbSink& sink) {
  // Slice start resets all predictors (§7.2.1, §7.6.3.4).
  state_.reset_dc(ctx_.pce);
  state_.reset_pmv();
  state_.quant_scale_code = uint8_t(quant_scale_code);
  state_.prev_motion_flags = 0;

  const int row_base = mb_row * ctx_.mb_width();
  int addr = row_base - 1;  // address of the "previous" macroblock

  while (true) {
    const size_t bit_begin = r.bit_pos();
    const int increment = decode_address_increment(r);
    // Skipped macroblocks between the previous coded macroblock and this
    // one. (At slice start an increment > 1 is treated as leading skips,
    // matching common decoder practice.)
    for (int i = 1; i < increment; ++i) emit_skipped(addr + i, sink);
    addr += increment;
    PDW_CHECK_LT(addr, ctx_.mb_width() * ctx_.mb_height())
        << "macroblock address beyond picture";
    parse_coded(r, addr, bit_begin, sink);
    PDW_CHECK(!r.overrun()) << "slice overruns picture data";
    // End of slice: the next 23 bits are zero (§6.2.5).
    if (r.peek(23) == 0) break;
  }
  return addr + 1;
}

void MbSyntaxDecoder::synthesize_skipped(int addr, int count, MbSink& sink) {
  for (int i = 0; i < count; ++i) emit_skipped(addr + i, sink);
}

void MbSyntaxDecoder::parse_run(BitReader& r, int first_addr, int num_coded,
                                MbSink& sink) {
  int addr = first_addr - 1;  // so that the forced first MB lands on first_addr
  for (int n = 0; n < num_coded; ++n) {
    const size_t bit_begin = r.bit_pos();
    const int increment = decode_address_increment(r);
    if (n == 0) {
      // The first increment was coded relative to a macroblock that belongs
      // to another tile; SPH supplies the true address instead.
      addr = first_addr;
    } else {
      for (int i = 1; i < increment; ++i) emit_skipped(addr + i, sink);
      addr += increment;
    }
    parse_coded(r, addr, bit_begin, sink);
    PDW_CHECK(!r.overrun()) << "sub-picture run overruns payload";
  }
}

void MbSyntaxDecoder::emit_skipped(int addr, MbSink& sink) {
  const MbState before = state_;
  Macroblock& mb = scratch_;
  mb.addr = addr;
  mb.skipped = true;
  mb.cbp = 0;
  mb.quant_scale_code = state_.quant_scale_code;

  switch (ctx_.ph.type) {
    case PicType::P:
      // P skip: motion-compensate from the forward reference with a zero
      // vector; resets the motion vector predictors (§7.6.6).
      mb.flags = kMotionForward;
      mb.mv[0][0] = mb.mv[0][1] = 0;
      mb.mv[1][0] = mb.mv[1][1] = 0;
      state_.reset_pmv();
      break;
    case PicType::B:
      // B skip: repeat the previous macroblock's prediction directions with
      // the current predictor values; predictors are unchanged.
      mb.flags = uint8_t(state_.prev_motion_flags & (kMotionForward | kMotionBackward));
      PDW_CHECK(mb.flags != 0) << "B skipped macroblock after intra";
      for (int s = 0; s < 2; ++s) {
        mb.mv[s][0] = state_.pmv[s][0];
        mb.mv[s][1] = state_.pmv[s][1];
      }
      break;
    case PicType::I:
      PDW_CHECK(false) << "skipped macroblock in I picture";
  }
  state_.reset_dc(ctx_.pce);  // DC predictors reset after a skip (§7.2.1)
  sink.on_macroblock(mb, before, 0, 0);
}

void MbSyntaxDecoder::parse_coded(BitReader& r, int addr, size_t bit_begin,
                                  MbSink& sink) {
  const MbState before = state_;
  Macroblock& mb = scratch_;
  mb.addr = addr;
  mb.skipped = false;
  mb.flags = uint8_t(vlc_mb_type(ctx_.ph.type).decode(r));
  mb.cbp = 0;

  // frame_pred_frame_dct == 1 (enforced at parse) means no frame_motion_type
  // or dct_type bits are present here.

  if (mb.flags & kQuant) {
    const int code = int(r.read(5));
    PDW_CHECK_GE(code, 1);
    state_.quant_scale_code = uint8_t(code);
  }
  mb.quant_scale_code = state_.quant_scale_code;

  if (mb.flags & kMotionForward) parse_motion_vector(r, mb, 0);
  if (mb.flags & kMotionBackward) parse_motion_vector(r, mb, 1);

  if (mb.flags & kIntra) {
    // Intra macroblocks reset the motion predictors (no concealment MVs).
    state_.reset_pmv();
    mb.mv[0][0] = mb.mv[0][1] = mb.mv[1][0] = mb.mv[1][1] = 0;
    mb.cbp = 0x3F;  // all six blocks coded
  } else {
    if (ctx_.ph.type == PicType::P && !(mb.flags & kMotionForward)) {
      // "No MC" macroblock: zero forward vector, predictors reset (§7.6.3.5).
      state_.reset_pmv();
      mb.mv[0][0] = mb.mv[0][1] = 0;
    }
    if (mb.flags & kPattern)
      mb.cbp = vlc_coded_block_pattern().decode(r);
    else
      mb.cbp = 0;
  }

  // Copy unused-direction predictors so reconstruction can rely on mb.mv.
  if (!(mb.flags & kIntra)) {
    if (!(mb.flags & kMotionForward) && ctx_.ph.type == PicType::B) {
      mb.mv[0][0] = state_.pmv[0][0];
      mb.mv[0][1] = state_.pmv[0][1];
    }
    if (!(mb.flags & kMotionBackward)) {
      mb.mv[1][0] = state_.pmv[1][0];
      mb.mv[1][1] = state_.pmv[1][1];
    }
  }

  // Blocks.
  if (mode_ == ParseMode::kFull)
    for (auto& block : mb.coeff) std::memset(block, 0, sizeof(block));
  for (int b = 0; b < kBlocksPerMb; ++b)
    if (mb.cbp & (0x20 >> b)) parse_block(r, mb, b);

  // Post-macroblock state updates.
  if (!(mb.flags & kIntra)) state_.reset_dc(ctx_.pce);
  state_.prev_motion_flags = uint8_t(mb.flags & (kMotionForward | kMotionBackward));

  sink.on_macroblock(mb, before, bit_begin, r.bit_pos());
}

void MbSyntaxDecoder::parse_motion_vector(BitReader& r, Macroblock& mb,
                                          int s) {
  for (int t = 0; t < 2; ++t) {
    const int f_code = ctx_.pce.f_code[s][t];
    PDW_CHECK_GE(f_code, 1);
    PDW_CHECK_LE(f_code, 9);
    const int r_size = f_code - 1;
    const int f = 1 << r_size;

    const int code = vlc_motion_code().decode(r);
    int delta = 0;
    if (code != 0) {
      int residual = 0;
      if (r_size > 0) residual = int(r.read(r_size));
      delta = (std::abs(code) - 1) * f + residual + 1;
      if (code < 0) delta = -delta;
    }

    const int range = 16 * f;  // half-sample units
    int v = state_.pmv[s][t] + delta;
    if (v < -range)
      v += 2 * range;
    else if (v >= range)
      v -= 2 * range;
    state_.pmv[s][t] = int16_t(v);
    mb.mv[s][t] = int16_t(v);
  }
}

void MbSyntaxDecoder::parse_block(BitReader& r, Macroblock& mb,
                                  int block_index) {
  int16_t qfs[64];
  const bool full = mode_ == ParseMode::kFull;
  if (full) std::memset(qfs, 0, sizeof(qfs));

  int n;  // next scan position to fill
  const bool intra = mb.flags & kIntra;
  if (intra) {
    // DC coefficient: size VLC + differential, predicted per component.
    const int cc = block_index < 4 ? 0 : (block_index == 4 ? 1 : 2);
    const Vlc& size_vlc =
        block_index < 4 ? vlc_dct_dc_size_luma() : vlc_dct_dc_size_chroma();
    const int size = size_vlc.decode(r);
    int diff = 0;
    if (size > 0) {
      const int bits = int(r.read(size));
      const int half = 1 << (size - 1);
      diff = bits >= half ? bits : bits - (1 << size) + 1;
    }
    state_.dc_pred[cc] += diff;
    if (full) qfs[0] = int16_t(state_.dc_pred[cc]);
    n = 1;
  } else {
    n = 0;
  }

  // AC coefficients (and the first coefficient of non-intra blocks).
  bool first = !intra;
  while (true) {
    const DctCoeff c = decode_dct_coeff_b14(r, first);
    first = false;
    if (c.eob) break;
    n += c.run;
    PDW_CHECK_LT(n, 64) << "DCT run beyond block";
    if (full) qfs[n] = int16_t(c.level);
    ++n;
    PDW_CHECK(!r.overrun()) << "block data overruns buffer";
  }

  if (!full) return;

  const auto& scan = scan_table(ctx_.pce.alternate_scan);
  const int scale =
      quantiser_scale(ctx_.pce.q_scale_type, state_.quant_scale_code);
  if (intra) {
    dequant_intra(qfs, mb.coeff[block_index], ctx_.seq->intra_quant.data(),
                  scale, ctx_.pce.intra_dc_mult(), scan.data());
  } else {
    dequant_non_intra(qfs, mb.coeff[block_index],
                      ctx_.seq->non_intra_quant.data(), scale, scan.data());
  }
}

}  // namespace pdw::mpeg2
