#include "mpeg2/headers.h"

#include <cstdio>

#include "bitstream/start_code.h"
#include "mpeg2/tables.h"

namespace pdw::mpeg2 {

namespace {
// Extension identifiers (§6.3.1, Table 6-2).
constexpr int kSequenceExtensionId = 1;
constexpr int kSequenceDisplayExtensionId = 2;
constexpr int kQuantMatrixExtensionId = 3;
constexpr int kPictureCodingExtensionId = 8;
}  // namespace

namespace {

DecodeStatus bad(BitReader& r, DecodeErr code, DecodeSeverity severity) {
  return DecodeStatus::error(code, severity, r.bit_pos());
}

// Upper bound on either picture dimension. MPEG-2 syntax allows 16383, but
// accepting it verbatim lets a single damaged sequence header demand
// multi-gigabyte frame buffers; 8192 comfortably covers the ultra-high-res
// walls this decoder targets (see DESIGN.md scope).
constexpr int kMaxDimension = 8192;

}  // namespace

DecodeStatus parse_sequence_header(BitReader& r, SequenceHeader* seq) {
  seq->width = int(r.read(12));
  seq->height = int(r.read(12));
  seq->aspect_ratio_code = int(r.read(4));
  seq->frame_rate_code = int(r.read(4));
  seq->bit_rate_value = int(r.read(18));
  if (!r.read_bit())
    return bad(r, DecodeErr::kBadValue, DecodeSeverity::kPicture);  // marker
  seq->vbv_buffer_size = int(r.read(10));
  r.read(1);  // constrained_parameters_flag
  seq->loaded_intra_quant = r.read_bit();
  if (seq->loaded_intra_quant) {
    for (int i = 0; i < 64; ++i)
      seq->intra_quant[kZigzagScan[i]] = uint8_t(r.read(8));
  } else {
    seq->intra_quant = kDefaultIntraQuant;
  }
  seq->loaded_non_intra_quant = r.read_bit();
  if (seq->loaded_non_intra_quant) {
    for (int i = 0; i < 64; ++i)
      seq->non_intra_quant[kZigzagScan[i]] = uint8_t(r.read(8));
  } else {
    seq->non_intra_quant = kDefaultNonIntraQuant;
  }
  if (seq->width <= 0 || seq->height <= 0 || seq->width > kMaxDimension ||
      seq->height > kMaxDimension)
    return bad(r, DecodeErr::kBadValue, DecodeSeverity::kPicture);
  if (r.overrun())
    return bad(r, DecodeErr::kTruncated, DecodeSeverity::kPicture);
  return DecodeStatus::success();
}

DecodeStatus parse_extension(BitReader& r, SequenceHeader* seq,
                             PictureCodingExt* pce) {
  const int id = int(r.read(4));
  switch (id) {
    case kSequenceExtensionId: {
      if (seq == nullptr)  // sequence extension before sequence header
        return bad(r, DecodeErr::kBadStructure, DecodeSeverity::kPicture);
      seq->profile_and_level = int(r.read(8));
      seq->progressive_sequence = r.read_bit();
      const int chroma_format = int(r.read(2));
      if (chroma_format != 1)  // only 4:2:0 is supported
        return bad(r, DecodeErr::kUnsupported, DecodeSeverity::kPicture);
      const int h_ext = int(r.read(2));
      const int v_ext = int(r.read(2));
      seq->width |= h_ext << 12;
      seq->height |= v_ext << 12;
      if (seq->width > kMaxDimension || seq->height > kMaxDimension)
        return bad(r, DecodeErr::kBadValue, DecodeSeverity::kPicture);
      const int bit_rate_ext = int(r.read(12));
      seq->bit_rate_value |= bit_rate_ext << 18;
      if (!r.read_bit())  // marker bit
        return bad(r, DecodeErr::kBadValue, DecodeSeverity::kPicture);
      r.read(8);  // vbv_buffer_size_extension
      r.read(1);  // low_delay
      r.read(2);  // frame_rate_extension_n
      r.read(5);  // frame_rate_extension_d
      break;
    }
    case kPictureCodingExtensionId: {
      if (pce == nullptr)  // picture coding extension outside picture
        return bad(r, DecodeErr::kBadStructure, DecodeSeverity::kPicture);
      for (int s = 0; s < 2; ++s)
        for (int t = 0; t < 2; ++t) pce->f_code[s][t] = int(r.read(4));
      pce->intra_dc_precision = int(r.read(2));
      pce->picture_structure = int(r.read(2));
      if (pce->picture_structure != 3)  // field pictures not supported
        return bad(r, DecodeErr::kUnsupported, DecodeSeverity::kPicture);
      pce->top_field_first = r.read_bit();
      pce->frame_pred_frame_dct = r.read_bit();
      if (!pce->frame_pred_frame_dct)  // field prediction / field DCT
        return bad(r, DecodeErr::kUnsupported, DecodeSeverity::kPicture);
      pce->concealment_motion_vectors = r.read_bit();
      if (pce->concealment_motion_vectors)
        return bad(r, DecodeErr::kUnsupported, DecodeSeverity::kPicture);
      pce->q_scale_type = r.read_bit();
      pce->intra_vlc_format = r.read_bit();
      if (pce->intra_vlc_format)  // table B.15 not supported
        return bad(r, DecodeErr::kUnsupported, DecodeSeverity::kPicture);
      pce->alternate_scan = r.read_bit();
      pce->repeat_first_field = r.read_bit();
      pce->chroma_420_type = r.read_bit();
      pce->progressive_frame = r.read_bit();
      const bool composite = r.read_bit();
      if (composite) r.skip(20);
      break;
    }
    default:
      // Skip unsupported extensions up to the next start code.
      r.align_to_byte();
      while (!r.at_start_code_prefix() && r.bits_left() >= 8) r.skip(8);
      break;
  }
  if (r.overrun())
    return bad(r, DecodeErr::kTruncated, DecodeSeverity::kPicture);
  return DecodeStatus::success();
}

DecodeStatus parse_gop_header(BitReader& r, GopHeader* gop) {
  gop->time_code = r.read(25);
  gop->closed_gop = r.read_bit();
  gop->broken_link = r.read_bit();
  if (r.overrun())
    return bad(r, DecodeErr::kTruncated, DecodeSeverity::kPicture);
  return DecodeStatus::success();
}

DecodeStatus parse_picture_header(BitReader& r, PictureHeader* ph) {
  ph->temporal_reference = int(r.read(10));
  const int type = int(r.read(3));
  if (type < 1 || type > 3)  // D pictures and reserved types
    return bad(r, DecodeErr::kUnsupported, DecodeSeverity::kPicture);
  ph->type = PicType(type);
  ph->vbv_delay = int(r.read(16));
  if (ph->type == PicType::P || ph->type == PicType::B) {
    r.read(1);  // full_pel_forward_vector (MPEG-1 legacy, must be 0)
    r.read(3);  // forward_f_code (legacy, 7)
  }
  if (ph->type == PicType::B) {
    r.read(1);  // full_pel_backward_vector
    r.read(3);  // backward_f_code
  }
  while (r.read_bit()) r.skip(8);  // extra_information_picture
  if (r.overrun())
    return bad(r, DecodeErr::kTruncated, DecodeSeverity::kPicture);
  return DecodeStatus::success();
}

DecodeStatus parse_slice_header(BitReader& r, const SequenceHeader& seq,
                                int slice_code, int* mb_row,
                                int* quant_scale_code) {
  int vertical = slice_code;
  if (seq.height > 2800) {
    const int ext = int(r.read(3));
    vertical = (ext << 7) + slice_code;
  }
  *mb_row = vertical - 1;
  if (*mb_row < 0 || *mb_row >= seq.mb_height())
    return bad(r, DecodeErr::kBadValue, DecodeSeverity::kSlice);
  const int quant = int(r.read(5));
  if (quant < 1) return bad(r, DecodeErr::kBadValue, DecodeSeverity::kSlice);
  *quant_scale_code = quant;
  while (r.read_bit()) r.skip(8);  // extra_information_slice
  if (r.overrun()) return bad(r, DecodeErr::kTruncated, DecodeSeverity::kSlice);
  return DecodeStatus::success();
}

static size_t warn_skipped_start_code(uint8_t code) {
  // Rate-limited so a fuzz run or a badly damaged stream cannot flood
  // stderr: warn once per process, count the rest silently.
  static bool warned = false;
  if (!warned) {
    warned = true;
    std::fprintf(stderr,
                 "pdw: skipping unknown start code 0x%02x in picture span "
                 "(further occurrences counted silently)\n",
                 code);
  }
  return 1;
}

DecodeStatus parse_picture_headers(std::span<const uint8_t> span,
                                   SequenceHeader* seq, bool* have_seq,
                                   ParsedPictureHeaders* out) {
  BitReader r(span);
  bool have_ph = false;
  while (true) {
    r.align_to_byte();
    // After a header parse we should land on the next start code. If we do
    // not (trailing stuffing, or a header whose bit layout was damaged in a
    // way its parser did not notice), scan forward to the next prefix — the
    // start-code scan is the resync mechanism of every MPEG-2 decoder.
    while (!r.at_start_code_prefix() && r.bits_left() >= 8) r.skip(8);
    if (r.bits_left() < 32)  // picture span without slices
      return bad(r, DecodeErr::kTruncated, DecodeSeverity::kPicture);
    const size_t offset = r.bit_pos() / 8;
    // One 32-bit read takes the whole start code (prefix + code byte).
    const uint8_t code = uint8_t(r.read(32) & 0xFF);
    if (code == start_code::kSequenceHeader) {
      DecodeStatus s = parse_sequence_header(r, seq);
      if (!s.ok()) return s;
      *have_seq = true;
      out->had_sequence_header = true;
    } else if (code == start_code::kExtension) {
      DecodeStatus s = parse_extension(r, *have_seq ? seq : nullptr,
                                       have_ph ? &out->pce : nullptr);
      if (!s.ok()) return s;
    } else if (code == start_code::kGroup) {
      GopHeader gop;
      DecodeStatus s = parse_gop_header(r, &gop);
      if (!s.ok()) return s;
      out->had_gop_header = true;
    } else if (code == start_code::kUserData) {
      while (!r.at_start_code_prefix() && r.bits_left() >= 8) r.skip(8);
    } else if (code == start_code::kPicture) {
      if (!*have_seq)  // picture before sequence header
        return bad(r, DecodeErr::kBadStructure, DecodeSeverity::kPicture);
      DecodeStatus s = parse_picture_header(r, &out->ph);
      if (!s.ok()) return s;
      have_ph = true;
    } else if (start_code::is_slice(code)) {
      if (!have_ph)  // slice data before any picture header
        return bad(r, DecodeErr::kBadStructure, DecodeSeverity::kPicture);
      out->first_slice_offset = offset;
      return DecodeStatus::success();
    } else {
      // Unknown / reserved start code (e.g. sequence_end mid-span, system
      // codes leaked into an ES): skip it and scan on. Not fatal.
      out->skipped_start_codes += int(warn_skipped_start_code(code));
    }
  }
}

// ---------------------------------------------------------------------------

void write_sequence_header(BitWriter& w, const SequenceHeader& seq) {
  w.put_start_code(start_code::kSequenceHeader);
  w.put(uint32_t(seq.width) & 0xFFF, 12);
  w.put(uint32_t(seq.height) & 0xFFF, 12);
  w.put(uint32_t(seq.aspect_ratio_code), 4);
  w.put(uint32_t(seq.frame_rate_code), 4);
  w.put(uint32_t(seq.bit_rate_value) & 0x3FFFF, 18);
  w.put_bit(1);  // marker
  w.put(uint32_t(seq.vbv_buffer_size) & 0x3FF, 10);
  w.put_bit(0);  // constrained_parameters_flag
  w.put_bit(seq.loaded_intra_quant);
  if (seq.loaded_intra_quant)
    for (int i = 0; i < 64; ++i) w.put(seq.intra_quant[kZigzagScan[i]], 8);
  w.put_bit(seq.loaded_non_intra_quant);
  if (seq.loaded_non_intra_quant)
    for (int i = 0; i < 64; ++i) w.put(seq.non_intra_quant[kZigzagScan[i]], 8);
}

void write_sequence_extension(BitWriter& w, const SequenceHeader& seq) {
  w.put_start_code(start_code::kExtension);
  w.put(kSequenceExtensionId, 4);
  w.put(uint32_t(seq.profile_and_level), 8);
  w.put_bit(seq.progressive_sequence);
  w.put(1, 2);  // chroma_format = 4:2:0
  w.put(uint32_t(seq.width) >> 12, 2);
  w.put(uint32_t(seq.height) >> 12, 2);
  w.put(uint32_t(seq.bit_rate_value) >> 18, 12);
  w.put_bit(1);  // marker
  w.put(0, 8);   // vbv_buffer_size_extension
  w.put_bit(0);  // low_delay
  w.put(0, 2);   // frame_rate_extension_n
  w.put(0, 5);   // frame_rate_extension_d
}

void write_gop_header(BitWriter& w, const GopHeader& gop) {
  w.put_start_code(start_code::kGroup);
  w.put(gop.time_code & 0x1FFFFFF, 25);
  w.put_bit(gop.closed_gop);
  w.put_bit(gop.broken_link);
}

void write_picture_header(BitWriter& w, const PictureHeader& ph) {
  w.put_start_code(start_code::kPicture);
  w.put(uint32_t(ph.temporal_reference) & 0x3FF, 10);
  w.put(uint32_t(ph.type), 3);
  w.put(uint32_t(ph.vbv_delay) & 0xFFFF, 16);
  if (ph.type == PicType::P || ph.type == PicType::B) {
    w.put_bit(0);  // full_pel_forward_vector
    w.put(7, 3);   // forward_f_code: 7 signals "see extension" in MPEG-2
  }
  if (ph.type == PicType::B) {
    w.put_bit(0);
    w.put(7, 3);
  }
  w.put_bit(0);  // extra_bit_picture
}

void write_picture_coding_extension(BitWriter& w, const PictureCodingExt& pce) {
  w.put_start_code(start_code::kExtension);
  w.put(kPictureCodingExtensionId, 4);
  for (int s = 0; s < 2; ++s)
    for (int t = 0; t < 2; ++t) w.put(uint32_t(pce.f_code[s][t]), 4);
  w.put(uint32_t(pce.intra_dc_precision), 2);
  w.put(uint32_t(pce.picture_structure), 2);
  w.put_bit(pce.top_field_first);
  w.put_bit(pce.frame_pred_frame_dct);
  w.put_bit(pce.concealment_motion_vectors);
  w.put_bit(pce.q_scale_type);
  w.put_bit(pce.intra_vlc_format);
  w.put_bit(pce.alternate_scan);
  w.put_bit(pce.repeat_first_field);
  w.put_bit(pce.chroma_420_type);
  w.put_bit(pce.progressive_frame);
  w.put_bit(0);  // composite_display_flag
}

void write_slice_header(BitWriter& w, const SequenceHeader& seq, int mb_row,
                        int quant_scale_code) {
  // For heights <= 2800 the slice start code byte is the vertical position
  // (1..175). Taller pictures (the "ultra-high resolution" case this paper is
  // about) add a 3-bit slice_vertical_position_extension:
  //   mb_row = (extension << 7) + slice_code - 1, slice_code in [1, 128].
  if (seq.height <= 2800) {
    const int vertical = mb_row + 1;
    PDW_CHECK_LE(vertical, 0xAF);
    w.put_start_code(uint8_t(vertical));
  } else {
    const int low = (mb_row & 0x7F) + 1;
    const int ext = mb_row >> 7;
    PDW_CHECK_LE(ext, 7);
    w.put_start_code(uint8_t(low));
    w.put(uint32_t(ext), 3);
  }
  w.put(uint32_t(quant_scale_code), 5);
  w.put_bit(0);  // extra_bit_slice
}

void write_sequence_end(BitWriter& w) {
  w.put_start_code(start_code::kSequenceEnd);
}

}  // namespace pdw::mpeg2
