#include "mpeg2/quant.h"

#include <algorithm>

#include "kernels/kernels.h"

namespace pdw::mpeg2 {

// Decoder-side dequant lives in src/kernels (scalar reference plus bit-exact
// SIMD variants selected at runtime). Encoder-side quantisation below stays
// scalar: it runs once per block at encode time and is not a decode hot path.
void dequant_intra(const int16_t qfs[64], int16_t out[64], const uint8_t w[64],
                   int scale, int dc_mult, const uint8_t scan[64]) {
  kernels::active().dequant_intra(qfs, out, w, scale, dc_mult, scan);
}

void dequant_non_intra(const int16_t qfs[64], int16_t out[64],
                       const uint8_t w[64], int scale,
                       const uint8_t scan[64]) {
  kernels::active().dequant_non_intra(qfs, out, w, scale, scan);
}

int quant_intra(const int16_t coeff[64], int16_t qfs[64], const uint8_t w[64],
                int scale, int dc_mult, const uint8_t scan[64]) {
  // DC: F = dc_mult * QF  =>  QF = round(F / dc_mult), clamped to the range
  // reachable with dct_dc_size <= 11.
  const int32_t dc_limit = (1 << 11) - 1;
  int32_t dc = (coeff[0] + (coeff[0] >= 0 ? dc_mult / 2 : -dc_mult / 2)) / dc_mult;
  qfs[0] = int16_t(std::clamp(dc, -dc_limit, dc_limit));

  int last = 0;
  for (int i = 1; i < 64; ++i) {
    const int pos = scan[i];
    const int32_t f = coeff[pos];
    const int32_t den = 2 * w[pos] * scale;
    // Inverse of F = 2*QF*W*scale/32: QF = round(32*F / (2*W*scale)).
    int32_t qf = (32 * std::abs(f) + den / 2) / den;
    if (f < 0) qf = -qf;
    qf = std::clamp(qf, -2047, 2047);
    qfs[i] = int16_t(qf);
    if (qf != 0) last = i;
  }
  return last;
}

int quant_non_intra(const int16_t coeff[64], int16_t qfs[64],
                    const uint8_t w[64], int scale, const uint8_t scan[64]) {
  int last = -1;
  for (int i = 0; i < 64; ++i) {
    const int pos = scan[i];
    const int32_t f = coeff[pos];
    const int32_t den = 2 * w[pos] * scale;
    // Dead-zone quantiser, inverse of F = (2*QF + sign)*W*scale/32.
    int32_t qf = (32 * std::abs(f)) / den;
    if (f < 0) qf = -qf;
    qf = std::clamp(qf, -2047, 2047);
    qfs[i] = int16_t(qf);
    if (qf != 0) last = i;
  }
  return last;
}

}  // namespace pdw::mpeg2
