#include "mpeg2/quant.h"

#include <algorithm>

namespace pdw::mpeg2 {

namespace {

inline int16_t saturate(int32_t v) {
  return int16_t(std::clamp(v, -2048, 2047));
}

// Mismatch control (§7.4.4): if the sum of all coefficients is even, toggle
// the least significant bit of F[7][7].
inline void mismatch_control(int16_t out[64], int32_t sum) {
  if ((sum & 1) == 0) {
    if (out[63] & 1)
      out[63] = int16_t(out[63] - 1);
    else
      out[63] = int16_t(out[63] + 1);
  }
}

}  // namespace

void dequant_intra(const int16_t qfs[64], int16_t out[64], const uint8_t w[64],
                   int scale, int dc_mult, const uint8_t scan[64]) {
  for (int i = 0; i < 64; ++i) out[i] = 0;
  out[0] = saturate(dc_mult * qfs[0]);
  int32_t sum = out[0];
  for (int i = 1; i < 64; ++i) {
    if (qfs[i] == 0) continue;
    const int pos = scan[i];
    const int32_t v = (2 * int32_t(qfs[i]) * w[pos] * scale) / 32;
    out[pos] = saturate(v);
    sum += out[pos];
  }
  mismatch_control(out, sum);
}

void dequant_non_intra(const int16_t qfs[64], int16_t out[64],
                       const uint8_t w[64], int scale,
                       const uint8_t scan[64]) {
  for (int i = 0; i < 64; ++i) out[i] = 0;
  int32_t sum = 0;
  for (int i = 0; i < 64; ++i) {
    const int32_t qf = qfs[i];
    if (qf == 0) continue;
    const int pos = scan[i];
    const int32_t third = qf > 0 ? 1 : -1;
    const int32_t v = ((2 * qf + third) * w[pos] * scale) / 32;
    out[pos] = saturate(v);
    sum += out[pos];
  }
  mismatch_control(out, sum);
}

int quant_intra(const int16_t coeff[64], int16_t qfs[64], const uint8_t w[64],
                int scale, int dc_mult, const uint8_t scan[64]) {
  // DC: F = dc_mult * QF  =>  QF = round(F / dc_mult), clamped to the range
  // reachable with dct_dc_size <= 11.
  const int32_t dc_limit = (1 << 11) - 1;
  int32_t dc = (coeff[0] + (coeff[0] >= 0 ? dc_mult / 2 : -dc_mult / 2)) / dc_mult;
  qfs[0] = int16_t(std::clamp(dc, -dc_limit, dc_limit));

  int last = 0;
  for (int i = 1; i < 64; ++i) {
    const int pos = scan[i];
    const int32_t f = coeff[pos];
    const int32_t den = 2 * w[pos] * scale;
    // Inverse of F = 2*QF*W*scale/32: QF = round(32*F / (2*W*scale)).
    int32_t qf = (32 * std::abs(f) + den / 2) / den;
    if (f < 0) qf = -qf;
    qf = std::clamp(qf, -2047, 2047);
    qfs[i] = int16_t(qf);
    if (qf != 0) last = i;
  }
  return last;
}

int quant_non_intra(const int16_t coeff[64], int16_t qfs[64],
                    const uint8_t w[64], int scale, const uint8_t scan[64]) {
  int last = -1;
  for (int i = 0; i < 64; ++i) {
    const int pos = scan[i];
    const int32_t f = coeff[pos];
    const int32_t den = 2 * w[pos] * scale;
    // Dead-zone quantiser, inverse of F = (2*QF + sign)*W*scale/32.
    int32_t qf = (32 * std::abs(f)) / den;
    if (f < 0) qf = -qf;
    qf = std::clamp(qf, -2047, 2047);
    qfs[i] = int16_t(qf);
    if (qf != 0) last = i;
  }
  return last;
}

}  // namespace pdw::mpeg2
