// Serial MPEG-2 video elementary-stream decoder.
//
// This is the single-node reference decoder: the parallel pipeline must
// reproduce its output bit-exactly for every tiling configuration, and the
// cluster simulator uses its per-picture cost as the baseline "t_d" when one
// decoder owns the whole screen.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "bitstream/bit_reader.h"
#include "bitstream/start_code.h"
#include "common/decode_status.h"
#include "mpeg2/frame.h"
#include "mpeg2/types.h"

namespace pdw::mpeg2 {

// Per-picture metadata surfaced with each decoded frame.
struct DecodedPictureInfo {
  int decode_index = 0;   // order in the bitstream
  int display_index = 0;  // order of presentation
  PicType type = PicType::I;
  size_t coded_bytes = 0;  // size of the picture's coded representation
};

// What to do when a picture's bitstream is malformed.
enum class ErrorPolicy {
  kStrict,   // throw BitstreamError (default; tests want loud failures)
  kConceal,  // resync at the next slice start code and conceal the damaged
             // macroblocks (zero-MV copy from the forward reference for P/B,
             // flat DC fill for I); undecodable pictures are dropped whole
};

class Mpeg2Decoder {
 public:
  using FrameCallback =
      std::function<void(const Frame&, const DecodedPictureInfo&)>;

  Mpeg2Decoder() = default;
  explicit Mpeg2Decoder(ErrorPolicy policy) : policy_(policy) {}

  // Decode an entire elementary stream, invoking `cb` once per picture in
  // *display* order (B pictures immediately, reference pictures deferred
  // until the next reference picture or end of stream).
  void decode(std::span<const uint8_t> es, const FrameCallback& cb);

  // Incremental interface used by pipeline components: feed one
  // picture-sized span (as produced by scan_pictures / the root splitter).
  void decode_picture_span(std::span<const uint8_t> es, const PictureSpan& ps,
                           const FrameCallback& cb);

  // Flush the pending reference frame at end of stream.
  void flush(const FrameCallback& cb);

  const SequenceHeader& sequence() const {
    PDW_CHECK(have_seq_);
    return seq_;
  }
  bool has_sequence() const { return have_seq_; }

  // Statistics for the cost model.
  int pictures_decoded() const { return decode_index_; }

  // Number of pictures that hit a bitstream error (kConceal mode).
  int concealed_pictures() const { return concealed_; }
  // Number of slices dropped due to errors (kConceal mode).
  int dropped_slices() const { return dropped_slices_; }
  // Number of macroblocks replaced by concealment (kConceal mode).
  int concealed_macroblocks() const { return concealed_mbs_; }
  // Number of pictures dropped whole because their headers were undecodable
  // (kConceal mode).
  int dropped_pictures() const { return dropped_pictures_; }

 private:
  DecodeStatus decode_picture(BitReader& r, size_t begin, size_t end,
                              const FrameCallback& cb);
  void emit(const Frame& f, PicType type, size_t coded_bytes,
            const FrameCallback& cb);

  SequenceHeader seq_;
  bool have_seq_ = false;

  // Reference frame management: ref_new_ is the most recent I/P.
  std::unique_ptr<Frame> ref_old_, ref_new_, cur_;
  bool pending_ref_ = false;  // ref_new_ not yet displayed
  size_t pending_ref_bytes_ = 0;
  PicType pending_ref_type_ = PicType::I;

  int decode_index_ = 0;
  int display_index_ = 0;
  ErrorPolicy policy_ = ErrorPolicy::kStrict;
  int concealed_ = 0;
  int dropped_slices_ = 0;
  int concealed_mbs_ = 0;
  int dropped_pictures_ = 0;
};

}  // namespace pdw::mpeg2
