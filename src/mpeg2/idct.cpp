#include "mpeg2/idct.h"

#include <algorithm>
#include <cmath>

namespace pdw::mpeg2 {

namespace {

// Fixed-point constants: 2048 * sqrt(2) * cos(k*pi/16).
constexpr int32_t W1 = 2841;
constexpr int32_t W2 = 2676;
constexpr int32_t W3 = 2408;
constexpr int32_t W5 = 1609;
constexpr int32_t W6 = 1108;
constexpr int32_t W7 = 565;

inline int16_t clamp256(int32_t v) {
  return int16_t(std::clamp(v, -256, 255));
}

// One row, 11-bit fixed point.
void idct_row(int16_t* blk) {
  int32_t x1 = int32_t(blk[4]) << 11;
  int32_t x2 = blk[6];
  int32_t x3 = blk[2];
  int32_t x4 = blk[1];
  int32_t x5 = blk[7];
  int32_t x6 = blk[5];
  int32_t x7 = blk[3];
  if (!(x1 | x2 | x3 | x4 | x5 | x6 | x7)) {
    const int16_t dc = int16_t(blk[0] << 3);
    for (int i = 0; i < 8; ++i) blk[i] = dc;
    return;
  }
  int32_t x0 = (int32_t(blk[0]) << 11) + 128;  // +128 for proper rounding

  // First stage.
  int32_t x8 = W7 * (x4 + x5);
  x4 = x8 + (W1 - W7) * x4;
  x5 = x8 - (W1 + W7) * x5;
  x8 = W3 * (x6 + x7);
  x6 = x8 - (W3 - W5) * x6;
  x7 = x8 - (W3 + W5) * x7;

  // Second stage.
  x8 = x0 + x1;
  x0 -= x1;
  x1 = W6 * (x3 + x2);
  x2 = x1 - (W2 + W6) * x2;
  x3 = x1 + (W2 - W6) * x3;
  x1 = x4 + x6;
  x4 -= x6;
  x6 = x5 + x7;
  x5 -= x7;

  // Third stage.
  x7 = x8 + x3;
  x8 -= x3;
  x3 = x0 + x2;
  x0 -= x2;
  x2 = (181 * (x4 + x5) + 128) >> 8;
  x4 = (181 * (x4 - x5) + 128) >> 8;

  // Fourth stage.
  blk[0] = int16_t((x7 + x1) >> 8);
  blk[1] = int16_t((x3 + x2) >> 8);
  blk[2] = int16_t((x0 + x4) >> 8);
  blk[3] = int16_t((x8 + x6) >> 8);
  blk[4] = int16_t((x8 - x6) >> 8);
  blk[5] = int16_t((x0 - x4) >> 8);
  blk[6] = int16_t((x3 - x2) >> 8);
  blk[7] = int16_t((x7 - x1) >> 8);
}

// One column, with final descale and clamp.
void idct_col(int16_t* blk) {
  int32_t x1 = int32_t(blk[8 * 4]) << 8;
  int32_t x2 = blk[8 * 6];
  int32_t x3 = blk[8 * 2];
  int32_t x4 = blk[8 * 1];
  int32_t x5 = blk[8 * 7];
  int32_t x6 = blk[8 * 5];
  int32_t x7 = blk[8 * 3];
  if (!(x1 | x2 | x3 | x4 | x5 | x6 | x7)) {
    const int16_t dc = clamp256((blk[0] + 32) >> 6);
    for (int i = 0; i < 8; ++i) blk[8 * i] = dc;
    return;
  }
  int32_t x0 = (int32_t(blk[0]) << 8) + 8192;

  int32_t x8 = W7 * (x4 + x5) + 4;
  x4 = (x8 + (W1 - W7) * x4) >> 3;
  x5 = (x8 - (W1 + W7) * x5) >> 3;
  x8 = W3 * (x6 + x7) + 4;
  x6 = (x8 - (W3 - W5) * x6) >> 3;
  x7 = (x8 - (W3 + W5) * x7) >> 3;

  x8 = x0 + x1;
  x0 -= x1;
  x1 = W6 * (x3 + x2) + 4;
  x2 = (x1 - (W2 + W6) * x2) >> 3;
  x3 = (x1 + (W2 - W6) * x3) >> 3;
  x1 = x4 + x6;
  x4 -= x6;
  x6 = x5 + x7;
  x5 -= x7;

  x7 = x8 + x3;
  x8 -= x3;
  x3 = x0 + x2;
  x0 -= x2;
  x2 = (181 * (x4 + x5) + 128) >> 8;
  x4 = (181 * (x4 - x5) + 128) >> 8;

  blk[8 * 0] = clamp256((x7 + x1) >> 14);
  blk[8 * 1] = clamp256((x3 + x2) >> 14);
  blk[8 * 2] = clamp256((x0 + x4) >> 14);
  blk[8 * 3] = clamp256((x8 + x6) >> 14);
  blk[8 * 4] = clamp256((x8 - x6) >> 14);
  blk[8 * 5] = clamp256((x0 - x4) >> 14);
  blk[8 * 6] = clamp256((x3 - x2) >> 14);
  blk[8 * 7] = clamp256((x7 - x1) >> 14);
}

}  // namespace

void fast_idct_8x8(int16_t block[64]) {
  for (int i = 0; i < 8; ++i) idct_row(block + 8 * i);
  for (int i = 0; i < 8; ++i) idct_col(block + i);
}

void reference_idct_8x8(const int16_t in[64], double out[64]) {
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      double sum = 0.0;
      for (int v = 0; v < 8; ++v) {
        for (int u = 0; u < 8; ++u) {
          const double cu = u == 0 ? 1.0 / std::sqrt(2.0) : 1.0;
          const double cv = v == 0 ? 1.0 / std::sqrt(2.0) : 1.0;
          sum += cu * cv * double(in[v * 8 + u]) *
                 std::cos((2 * x + 1) * u * M_PI / 16.0) *
                 std::cos((2 * y + 1) * v * M_PI / 16.0);
        }
      }
      out[y * 8 + x] = sum / 4.0;
    }
  }
}

namespace {

// DCT basis matrix: kDctCos[u][x] = c(u)/2 * cos((2x+1) u pi / 16).
struct DctBasis {
  float m[8][8];
  DctBasis() {
    for (int u = 0; u < 8; ++u) {
      const double cu = u == 0 ? 1.0 / std::sqrt(2.0) : 1.0;
      for (int x = 0; x < 8; ++x)
        m[u][x] = float(cu / 2.0 * std::cos((2 * x + 1) * u * M_PI / 16.0));
    }
  }
};
const DctBasis kBasis;

}  // namespace

// Separable forward DCT: out = C * in * C^T, two 8x8 matrix passes. This is
// the encoder's hot loop; float keeps it auto-vectorizable while retaining
// ample precision for quantized coefficients.
void forward_dct_8x8(const int16_t in[64], int16_t out[64]) {
  float tmp[64];
  // Rows: tmp = in * C^T  (tmp[y][u] = sum_x in[y][x] * C[u][x]).
  for (int y = 0; y < 8; ++y) {
    for (int u = 0; u < 8; ++u) {
      float sum = 0.f;
      for (int x = 0; x < 8; ++x) sum += float(in[y * 8 + x]) * kBasis.m[u][x];
      tmp[y * 8 + u] = sum;
    }
  }
  // Columns: out[v][u] = sum_y C[v][y] * tmp[y][u].
  for (int v = 0; v < 8; ++v) {
    for (int u = 0; u < 8; ++u) {
      float sum = 0.f;
      for (int y = 0; y < 8; ++y) sum += kBasis.m[v][y] * tmp[y * 8 + u];
      const float clamped = std::clamp(sum, -2048.f, 2047.f);
      out[v * 8 + u] = int16_t(std::lround(clamped));
    }
  }
}

}  // namespace pdw::mpeg2
