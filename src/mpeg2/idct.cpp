#include "mpeg2/idct.h"

#include <algorithm>
#include <cmath>

#include "kernels/kernels.h"

namespace pdw::mpeg2 {

// The fixed-point row/column IDCT lives in src/kernels (scalar reference in
// kernels_scalar.cpp; bit-exact SSE2/AVX2 versions selected by CPU dispatch).
void fast_idct_8x8(int16_t block[64]) {
  kernels::active().idct_8x8(block);
}

void reference_idct_8x8(const int16_t in[64], double out[64]) {
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      double sum = 0.0;
      for (int v = 0; v < 8; ++v) {
        for (int u = 0; u < 8; ++u) {
          const double cu = u == 0 ? 1.0 / std::sqrt(2.0) : 1.0;
          const double cv = v == 0 ? 1.0 / std::sqrt(2.0) : 1.0;
          sum += cu * cv * double(in[v * 8 + u]) *
                 std::cos((2 * x + 1) * u * M_PI / 16.0) *
                 std::cos((2 * y + 1) * v * M_PI / 16.0);
        }
      }
      out[y * 8 + x] = sum / 4.0;
    }
  }
}

namespace {

// DCT basis matrix: kDctCos[u][x] = c(u)/2 * cos((2x+1) u pi / 16).
struct DctBasis {
  float m[8][8];
  DctBasis() {
    for (int u = 0; u < 8; ++u) {
      const double cu = u == 0 ? 1.0 / std::sqrt(2.0) : 1.0;
      for (int x = 0; x < 8; ++x)
        m[u][x] = float(cu / 2.0 * std::cos((2 * x + 1) * u * M_PI / 16.0));
    }
  }
};
const DctBasis kBasis;

}  // namespace

// Separable forward DCT: out = C * in * C^T, two 8x8 matrix passes. This is
// the encoder's hot loop; float keeps it auto-vectorizable while retaining
// ample precision for quantized coefficients.
void forward_dct_8x8(const int16_t in[64], int16_t out[64]) {
  float tmp[64];
  // Rows: tmp = in * C^T  (tmp[y][u] = sum_x in[y][x] * C[u][x]).
  for (int y = 0; y < 8; ++y) {
    for (int u = 0; u < 8; ++u) {
      float sum = 0.f;
      for (int x = 0; x < 8; ++x) sum += float(in[y * 8 + x]) * kBasis.m[u][x];
      tmp[y * 8 + u] = sum;
    }
  }
  // Columns: out[v][u] = sum_y C[v][y] * tmp[y][u].
  for (int v = 0; v < 8; ++v) {
    for (int u = 0; u < 8; ++u) {
      float sum = 0.f;
      for (int y = 0; y < 8; ++y) sum += kBasis.m[v][y] * tmp[y * 8 + u];
      const float clamped = std::clamp(sum, -2048.f, 2047.f);
      out[v * 8 + u] = int16_t(std::lround(clamped));
    }
  }
}

}  // namespace pdw::mpeg2
