#include "mpeg2/recon.h"

#include <algorithm>
#include <cstring>

#include "kernels/kernels.h"

namespace pdw::mpeg2 {

namespace {

// Add an 8x8 residual block onto a prediction region (or write it directly
// for intra macroblocks), clamping to [0, 255].
void add_block(const int16_t* coeff, uint8_t* dst, int stride, bool intra) {
  const auto& k = kernels::active();
  alignas(32) int16_t block[64];
  std::memcpy(block, coeff, sizeof(block));
  k.idct_8x8(block);
  if (intra) {
    k.put_residual_8x8(block, dst, stride);
  } else {
    k.add_residual_8x8(block, dst, stride);
  }
}

}  // namespace

void reconstruct_mb(const Macroblock& mb, const RefSource* fwd,
                    const RefSource* bwd, int mbx, int mby,
                    MacroblockPixels* out) {
  const bool intra = mb.intra();
  if (!intra) {
    motion_compensate(mb, fwd, bwd, mbx, mby, out);
    if (mb.cbp == 0) return;  // pure prediction (skipped / not-coded)
  }

  // Luma blocks 0..3 tile the 16x16 region; block 4 = Cb, block 5 = Cr.
  for (int b = 0; b < 4; ++b) {
    if (!(mb.cbp & (0x20 >> b))) continue;
    const int bx = (b & 1) * 8;
    const int by = (b >> 1) * 8;
    add_block(mb.coeff[b], out->y + by * 16 + bx, 16, intra);
  }
  if (mb.cbp & 0x02) add_block(mb.coeff[4], out->cb, 8, intra);
  if (mb.cbp & 0x01) add_block(mb.coeff[5], out->cr, 8, intra);

  // Intra blocks always have cbp 0x3F, so nothing is left unwritten; for
  // non-intra macroblocks uncoded blocks keep the prediction.
}

void store_mb(Frame* frame, int mbx, int mby, const MacroblockPixels& px) {
  for (int r = 0; r < 16; ++r)
    std::memcpy(frame->y.row(mby * 16 + r) + mbx * 16, px.y + r * 16, 16);
  for (int r = 0; r < 8; ++r) {
    std::memcpy(frame->cb.row(mby * 8 + r) + mbx * 8, px.cb + r * 8, 8);
    std::memcpy(frame->cr.row(mby * 8 + r) + mbx * 8, px.cr + r * 8, 8);
  }
}

MacroblockPixels load_mb(const Frame& frame, int mbx, int mby) {
  MacroblockPixels px;
  for (int r = 0; r < 16; ++r)
    std::memcpy(px.y + r * 16, frame.y.row(mby * 16 + r) + mbx * 16, 16);
  for (int r = 0; r < 8; ++r) {
    std::memcpy(px.cb + r * 8, frame.cb.row(mby * 8 + r) + mbx * 8, 8);
    std::memcpy(px.cr + r * 8, frame.cr.row(mby * 8 + r) + mbx * 8, 8);
  }
  return px;
}

}  // namespace pdw::mpeg2
