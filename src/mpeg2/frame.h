// YUV 4:2:0 frame buffers.
//
// Two flavours:
//  * Frame      — a full picture, used by the serial decoder, the encoder and
//                 the wall assembler.
//  * TileFrame  — a rectangular sub-region of a picture with global-coordinate
//                 accessors, used by tile decoders so that a node only holds
//                 its own screen region of each reference frame (this memory
//                 distribution is the reason the paper targets a cluster
//                 rather than an SMP).
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <utility>

#include "common/check.h"
#include "mem/bytes.h"

namespace pdw::mpeg2 {

// A single 8-bit plane with row-major storage (stride == width).
//
// Storage comes from the geometry-keyed surface pool (mem/pool.h): a wall
// run allocates the same plane sizes every picture, so after warm-up a
// fresh Plane is a freelist pop, not a malloc. Value semantics are
// preserved — copies are deep — and copy-assignment reuses the existing
// block when the geometry matches (the per-emission `last_shown_` refresh
// in the tile decoder becomes a memcpy into recycled storage).
class Plane {
 public:
  Plane() = default;
  Plane(int width, int height, uint8_t fill = 0)
      : width_(width),
        height_(height),
        data_(mem::Bytes::surface(size_t(width) * height, fill)) {}

  Plane(const Plane& o)
      : width_(o.width_),
        height_(o.height_),
        data_(mem::Bytes::surface_copy(o.data_.span())) {}
  Plane& operator=(const Plane& o) {
    if (this == &o) return *this;
    width_ = o.width_;
    height_ = o.height_;
    if (data_.size() == o.data_.size() && data_.unique() && !data_.empty()) {
      std::memcpy(data_.mutable_data(), o.data_.data(), o.data_.size());
    } else {
      data_ = mem::Bytes::surface_copy(o.data_.span());
    }
    return *this;
  }
  Plane(Plane&& o) noexcept
      : width_(std::exchange(o.width_, 0)),
        height_(std::exchange(o.height_, 0)),
        data_(std::move(o.data_)) {}
  Plane& operator=(Plane&& o) noexcept {
    width_ = std::exchange(o.width_, 0);
    height_ = std::exchange(o.height_, 0);
    data_ = std::move(o.data_);
    return *this;
  }

  int width() const { return width_; }
  int height() const { return height_; }

  uint8_t* row(int y) {
    PDW_CHECK_GE(y, 0);
    PDW_CHECK_LT(y, height_);
    return data_.mutable_data() + size_t(y) * width_;
  }
  const uint8_t* row(int y) const {
    PDW_CHECK_GE(y, 0);
    PDW_CHECK_LT(y, height_);
    return data_.data() + size_t(y) * width_;
  }

  uint8_t at(int x, int y) const { return row(y)[x]; }
  void set(int x, int y, uint8_t v) { row(y)[x] = v; }

  void fill(uint8_t v) {
    if (!data_.empty()) std::memset(data_.mutable_data(), v, data_.size());
  }

  std::span<const uint8_t> data() const { return data_.span(); }
  std::span<uint8_t> data() { return data_.mutable_span(); }

  friend bool operator==(const Plane& a, const Plane& b) {
    return a.width_ == b.width_ && a.height_ == b.height_ &&
           a.data_ == b.data_;
  }

 private:
  int width_ = 0;
  int height_ = 0;
  mem::Bytes data_;  // owning, size == width * height
};

// Full-picture YUV 4:2:0 frame. Luma is width x height; chroma planes are
// half resolution in both dimensions. Dimensions are macroblock-aligned by
// the codec (the true display size may be smaller).
struct Frame {
  Frame() = default;
  Frame(int width, int height)
      : y(width, height), cb(width / 2, height / 2), cr(width / 2, height / 2) {
    PDW_CHECK_EQ(width % 2, 0);
    PDW_CHECK_EQ(height % 2, 0);
  }

  int width() const { return y.width(); }
  int height() const { return y.height(); }

  Plane& plane(int c) { return c == 0 ? y : (c == 1 ? cb : cr); }
  const Plane& plane(int c) const { return c == 0 ? y : (c == 1 ? cb : cr); }

  Plane y, cb, cr;

  friend bool operator==(const Frame&, const Frame&) = default;
};

// PSNR of the luma plane (infinity-free: returns 99.0 for identical planes).
double psnr(const Plane& a, const Plane& b);

// The pixel payload of one macroblock: 16x16 luma + two 8x8 chroma blocks.
// This is the unit of the paper's macroblock exchange (MEI) messages.
struct MacroblockPixels {
  uint8_t y[16 * 16];
  uint8_t cb[8 * 8];
  uint8_t cr[8 * 8];
};
static_assert(sizeof(MacroblockPixels) == 384);

// A tile decoder's view of one picture: the macroblock-aligned sub-rectangle
// [mb_x0, mb_x1) x [mb_y0, mb_y1) of the full picture, addressed in *global*
// picture coordinates.
class TileFrame {
 public:
  TileFrame() = default;
  TileFrame(int mb_x0, int mb_y0, int mb_x1, int mb_y1)
      : mb_x0_(mb_x0),
        mb_y0_(mb_y0),
        mb_x1_(mb_x1),
        mb_y1_(mb_y1),
        y_((mb_x1 - mb_x0) * 16, (mb_y1 - mb_y0) * 16),
        cb_((mb_x1 - mb_x0) * 8, (mb_y1 - mb_y0) * 8),
        cr_((mb_x1 - mb_x0) * 8, (mb_y1 - mb_y0) * 8) {}

  int mb_x0() const { return mb_x0_; }
  int mb_y0() const { return mb_y0_; }
  int mb_x1() const { return mb_x1_; }
  int mb_y1() const { return mb_y1_; }

  // Global luma pixel rect covered by this tile frame.
  int px0() const { return mb_x0_ * 16; }
  int py0() const { return mb_y0_ * 16; }
  int px1() const { return mb_x1_ * 16; }
  int py1() const { return mb_y1_ * 16; }

  bool contains_mb(int mbx, int mby) const {
    return mbx >= mb_x0_ && mbx < mb_x1_ && mby >= mb_y0_ && mby < mb_y1_;
  }

  // Plane accessors in global picture coordinates (luma coords for plane 0,
  // chroma coords for planes 1/2).
  uint8_t* pixel(int c, int gx, int gy) {
    const int shift = c == 0 ? 0 : 1;
    Plane& p = c == 0 ? y_ : (c == 1 ? cb_ : cr_);
    return p.row(gy - (py0() >> shift)) + (gx - (px0() >> shift));
  }
  const uint8_t* pixel(int c, int gx, int gy) const {
    return const_cast<TileFrame*>(this)->pixel(c, gx, gy);
  }

  // True if global luma-plane pixel rect [gx, gx+w) x [gy, gy+h) (scaled for
  // chroma by the caller) lies inside this tile frame for plane c.
  bool contains_rect(int c, int gx, int gy, int w, int h) const {
    const int shift = c == 0 ? 0 : 1;
    return gx >= (px0() >> shift) && gy >= (py0() >> shift) &&
           gx + w <= (px1() >> shift) && gy + h <= (py1() >> shift);
  }

  // Extract / insert a whole macroblock (global macroblock coordinates).
  MacroblockPixels extract_mb(int mbx, int mby) const;
  void insert_mb(int mbx, int mby, const MacroblockPixels& px);

  Plane& y() { return y_; }
  Plane& cb() { return cb_; }
  Plane& cr() { return cr_; }
  const Plane& y() const { return y_; }
  const Plane& cb() const { return cb_; }
  const Plane& cr() const { return cr_; }

 private:
  int mb_x0_ = 0, mb_y0_ = 0, mb_x1_ = 0, mb_y1_ = 0;
  Plane y_, cb_, cr_;
};

}  // namespace pdw::mpeg2
