// Parsing and writing of the MPEG-2 video header layers above the slice:
// sequence header + sequence extension, GOP header, picture header +
// picture coding extension, and the slice header prefix.
//
// Readers are positioned just *after* the 4-byte start code; writers emit the
// start code themselves.
#pragma once

#include <span>

#include "bitstream/bit_reader.h"
#include "bitstream/bit_writer.h"
#include "mpeg2/types.h"

namespace pdw::mpeg2 {

// --- Parse -----------------------------------------------------------------

// Sequence header (start code 0xB3 already consumed).
SequenceHeader parse_sequence_header(BitReader& r);

// Extension start code (0xB5) already consumed; dispatches on extension id.
// Supported: sequence extension (updates `seq`), picture coding extension
// (fills `pce`). Other extensions are skipped.
void parse_extension(BitReader& r, SequenceHeader* seq, PictureCodingExt* pce);

GopHeader parse_gop_header(BitReader& r);
PictureHeader parse_picture_header(BitReader& r);

// Slice header after the start code: returns the quantiser_scale_code and
// sets *mb_row from the slice vertical position (handles the >2800-line
// slice_vertical_position_extension needed by ultra-high-res walls).
int parse_slice_header(BitReader& r, const SequenceHeader& seq, int slice_code,
                       int* mb_row);

// Walk the headers of one picture-sized span (as produced by scan_pictures):
// sequence header (updates *seq, sets *have_seq), GOP header, picture header
// and extensions. Returns the byte offset of the first slice start code in
// `span`. Shared by the serial decoder and the macroblock-level splitter.
struct ParsedPictureHeaders {
  PictureHeader ph;
  PictureCodingExt pce;
  bool had_sequence_header = false;
  bool had_gop_header = false;
};
size_t parse_picture_headers(std::span<const uint8_t> span,
                             SequenceHeader* seq, bool* have_seq,
                             ParsedPictureHeaders* out);

// --- Write -----------------------------------------------------------------

void write_sequence_header(BitWriter& w, const SequenceHeader& seq);
void write_sequence_extension(BitWriter& w, const SequenceHeader& seq);
void write_gop_header(BitWriter& w, const GopHeader& gop);
void write_picture_header(BitWriter& w, const PictureHeader& ph);
void write_picture_coding_extension(BitWriter& w, const PictureCodingExt& pce);

// Writes the slice start code (with vertical position extension when needed)
// and the quantiser_scale_code + extra_bit_slice.
void write_slice_header(BitWriter& w, const SequenceHeader& seq, int mb_row,
                        int quant_scale_code);

void write_sequence_end(BitWriter& w);

}  // namespace pdw::mpeg2
