// Parsing and writing of the MPEG-2 video header layers above the slice:
// sequence header + sequence extension, GOP header, picture header +
// picture coding extension, and the slice header prefix.
//
// Readers are positioned just *after* the 4-byte start code; writers emit the
// start code themselves.
#pragma once

#include <span>

#include "bitstream/bit_reader.h"
#include "bitstream/bit_writer.h"
#include "common/decode_status.h"
#include "mpeg2/types.h"

namespace pdw::mpeg2 {

// --- Parse -----------------------------------------------------------------
//
// All parse functions return a DecodeStatus instead of throwing: a corrupt
// header is input damage, not a program bug. On failure the out-params may
// be partially written and the reader position is unspecified — the caller
// restores its own snapshot and contains the damage at the boundary named
// by the status severity.

// Sequence header (start code 0xB3 already consumed).
DecodeStatus parse_sequence_header(BitReader& r, SequenceHeader* seq);

// Extension start code (0xB5) already consumed; dispatches on extension id.
// Supported: sequence extension (updates `seq`), picture coding extension
// (fills `pce`). Other extensions are skipped.
DecodeStatus parse_extension(BitReader& r, SequenceHeader* seq,
                             PictureCodingExt* pce);

DecodeStatus parse_gop_header(BitReader& r, GopHeader* gop);
DecodeStatus parse_picture_header(BitReader& r, PictureHeader* ph);

// Slice header after the start code: fills *quant_scale_code and sets
// *mb_row from the slice vertical position (handles the >2800-line
// slice_vertical_position_extension needed by ultra-high-res walls).
DecodeStatus parse_slice_header(BitReader& r, const SequenceHeader& seq,
                                int slice_code, int* mb_row,
                                int* quant_scale_code);

// Walk the headers of one picture-sized span (as produced by scan_pictures):
// sequence header (updates *seq, sets *have_seq), GOP header, picture header
// and extensions. On success `out->first_slice_offset` is the byte offset of
// the first slice start code in `span`. Unknown start codes (user data we
// don't parse, reserved codes) are skipped and counted, not fatal. Shared by
// the serial decoder and the macroblock-level splitter, so both resync
// identically on the same damage.
struct ParsedPictureHeaders {
  PictureHeader ph;
  PictureCodingExt pce;
  bool had_sequence_header = false;
  bool had_gop_header = false;
  size_t first_slice_offset = 0;
  int skipped_start_codes = 0;  // unknown codes skipped (not an error)
};
DecodeStatus parse_picture_headers(std::span<const uint8_t> span,
                                   SequenceHeader* seq, bool* have_seq,
                                   ParsedPictureHeaders* out);

// --- Write -----------------------------------------------------------------

void write_sequence_header(BitWriter& w, const SequenceHeader& seq);
void write_sequence_extension(BitWriter& w, const SequenceHeader& seq);
void write_gop_header(BitWriter& w, const GopHeader& gop);
void write_picture_header(BitWriter& w, const PictureHeader& ph);
void write_picture_coding_extension(BitWriter& w, const PictureCodingExt& pce);

// Writes the slice start code (with vertical position extension when needed)
// and the quantiser_scale_code + extra_bit_slice.
void write_slice_header(BitWriter& w, const SequenceHeader& seq, int mb_row,
                        int quant_scale_code);

void write_sequence_end(BitWriter& w);

}  // namespace pdw::mpeg2
