#include "mpeg2/conceal.h"

#include <algorithm>
#include <cstring>

#include "common/check.h"

namespace pdw::mpeg2 {

uint8_t conceal_fill_value(const PictureCodingExt& pce) {
  const int dc = pce.dc_reset_value() * pce.intra_dc_mult();
  const int v = (dc + 4) >> 3;
  return uint8_t(std::clamp(v, 0, 255));
}

void ConcealPlanner::begin(int mb_width, int mb_height,
                           const PictureCodingExt& pce) {
  PDW_CHECK_GT(mb_width, 0);
  PDW_CHECK_GT(mb_height, 0);
  mb_width_ = mb_width;
  covered_count_ = 0;
  fill_ = conceal_fill_value(pce);
  covered_.assign(size_t(mb_width) * mb_height, false);
}

void ConcealPlanner::mark(int addr) {
  PDW_CHECK_GE(addr, 0);
  PDW_CHECK_LT(addr, int(covered_.size()));
  if (!covered_[addr]) {
    covered_[addr] = true;
    ++covered_count_;
  }
}

std::vector<ConcealSpec> ConcealPlanner::finish() const {
  std::vector<ConcealSpec> specs;
  for (size_t addr = 0; addr < covered_.size(); ++addr) {
    if (covered_[addr]) continue;
    ConcealSpec s;
    s.mb_x = int(addr) % mb_width_;
    s.mb_y = int(addr) / mb_width_;
    s.fill_y = s.fill_cb = s.fill_cr = fill_;
    specs.push_back(s);
  }
  return specs;
}

void conceal_mb(PicType type, const RefSource* fwd, const ConcealSpec& spec,
                MacroblockPixels* out) {
  if (type != PicType::I && fwd != nullptr) {
    // Zero-MV full-pel copy from the forward reference: exactly the
    // macroblock's own footprint, never out of picture, never into a halo.
    fwd->fetch(0, spec.mb_x * 16, spec.mb_y * 16, 16, 16, out->y, 16);
    fwd->fetch(1, spec.mb_x * 8, spec.mb_y * 8, 8, 8, out->cb, 8);
    fwd->fetch(2, spec.mb_x * 8, spec.mb_y * 8, 8, 8, out->cr, 8);
    return;
  }
  std::memset(out->y, spec.fill_y, sizeof(out->y));
  std::memset(out->cb, spec.fill_cb, sizeof(out->cb));
  std::memset(out->cr, spec.fill_cr, sizeof(out->cr));
}

}  // namespace pdw::mpeg2
