// Inverse quantisation (§7.4) and the encoder-side forward quantiser.
//
// Decode-side arithmetic follows ISO/IEC 13818-2 exactly (including
// saturation and mismatch control) because both the serial reference decoder
// and the tile decoders share it — any deviation would still be internally
// consistent, but we keep it conformant so third-party streams in scope
// (MP, 4:2:0, frame pictures) decode correctly.
#pragma once

#include <cstdint>

#include "mpeg2/types.h"

namespace pdw::mpeg2 {

// Dequantise an intra block.
//   qfs:   quantised coefficients in *scan* order (QFS)
//   out:   dequantised coefficients in *raster* order
//   w:     intra quantiser matrix, raster order
//   scale: quantiser_scale (already mapped from the 5-bit code)
//   dc_mult: 8 >> intra_dc_precision
//   scan:  scan-index -> raster-position table
void dequant_intra(const int16_t qfs[64], int16_t out[64], const uint8_t w[64],
                   int scale, int dc_mult, const uint8_t scan[64]);

// Dequantise a non-intra block (adds the +/-1 "third" term, §7.4.2.3).
void dequant_non_intra(const int16_t qfs[64], int16_t out[64],
                       const uint8_t w[64], int scale,
                       const uint8_t scan[64]);

// --- Encoder side ----------------------------------------------------------

// Quantise an intra block: coefficients (raster) -> QFS (scan order).
// Returns the index of the last nonzero scan coefficient, or 0 if only DC.
int quant_intra(const int16_t coeff[64], int16_t qfs[64], const uint8_t w[64],
                int scale, int dc_mult, const uint8_t scan[64]);

// Quantise a non-intra block. Returns the last nonzero scan index, or -1 if
// the block quantises to all zeros (block then not coded).
int quant_non_intra(const int16_t coeff[64], int16_t qfs[64],
                    const uint8_t w[64], int scale, const uint8_t scan[64]);

}  // namespace pdw::mpeg2
