#include "mpeg2/tables.h"

#include <unordered_map>

namespace pdw::mpeg2 {

// ---------------------------------------------------------------------------
// Scan patterns and quantiser matrices
// ---------------------------------------------------------------------------

const std::array<uint8_t, 64> kZigzagScan = {
    0,  1,  8,  16, 9,  2,  3,  10, 17, 24, 32, 25, 18, 11, 4,  5,
    12, 19, 26, 33, 40, 48, 41, 34, 27, 20, 13, 6,  7,  14, 21, 28,
    35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51,
    58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63};

const std::array<uint8_t, 64> kAlternateScan = {
    0,  8,  16, 24, 1,  9,  2,  10, 17, 25, 32, 40, 48, 56, 57, 49,
    41, 33, 26, 18, 3,  11, 4,  12, 19, 27, 34, 42, 50, 58, 35, 43,
    51, 59, 20, 28, 5,  13, 6,  14, 21, 29, 36, 44, 52, 60, 37, 45,
    53, 61, 22, 30, 7,  15, 23, 31, 38, 46, 54, 62, 39, 47, 55, 63};

const std::array<uint8_t, 64> kDefaultIntraQuant = {
    8,  16, 19, 22, 26, 27, 29, 34, 16, 16, 22, 24, 27, 29, 34, 37,
    19, 22, 26, 27, 29, 34, 34, 38, 22, 22, 26, 27, 29, 34, 37, 40,
    22, 26, 27, 29, 32, 35, 40, 48, 26, 27, 29, 32, 35, 40, 48, 58,
    26, 27, 29, 34, 38, 46, 56, 69, 27, 29, 35, 38, 46, 56, 69, 83};

const std::array<uint8_t, 64> kDefaultNonIntraQuant = {
    16, 16, 16, 16, 16, 16, 16, 16, 16, 16, 16, 16, 16, 16, 16, 16,
    16, 16, 16, 16, 16, 16, 16, 16, 16, 16, 16, 16, 16, 16, 16, 16,
    16, 16, 16, 16, 16, 16, 16, 16, 16, 16, 16, 16, 16, 16, 16, 16,
    16, 16, 16, 16, 16, 16, 16, 16, 16, 16, 16, 16, 16, 16, 16, 16};

// quantiser_scale_code -> quantiser_scale, non-linear variant (Table 7-6).
static const int kNonLinearQScale[32] = {
    0,  1,  2,  3,  4,  5,   6,   7,   8,   10,  12,  14,  16,  18, 20, 22,
    24, 28, 32, 36, 40, 44,  48,  52,  56,  64,  72,  80,  88,  96, 104, 112};

int quantiser_scale(bool q_scale_type, int code) {
  PDW_CHECK_GE(code, 1);
  PDW_CHECK_LE(code, 31);
  return q_scale_type ? kNonLinearQScale[code] : code * 2;
}

// ---------------------------------------------------------------------------
// Generic VLC
// ---------------------------------------------------------------------------

Vlc::Vlc(const VlcEntry* entries, size_t count)
    : entries_(entries), count_(count) {
  for (size_t i = 0; i < count; ++i) max_len_ = std::max<int>(max_len_, entries[i].len);
  PDW_CHECK_LE(max_len_, 16);
  lut_.assign(size_t(1) << max_len_, LutEntry{0, 0});
  for (size_t i = 0; i < count; ++i) {
    const VlcEntry& e = entries[i];
    const uint32_t base = e.code << (max_len_ - e.len);
    const uint32_t span = 1u << (max_len_ - e.len);
    for (uint32_t j = 0; j < span; ++j) {
      PDW_CHECK_EQ(lut_[base + j].len, 0u) << "VLC table not prefix-free";
      lut_[base + j] = LutEntry{e.value, e.len};
    }
  }
}

int Vlc::decode(BitReader& r) const {
  int value = 0;
  PDW_CHECK(try_decode(r, &value)) << "invalid VLC code";
  return value;
}

bool Vlc::try_decode(BitReader& r, int* value) const {
  const LutEntry e = lut_[r.peek(max_len_)];
  if (e.len == 0) return false;
  r.skip(e.len);
  *value = e.value;
  return true;
}

const VlcEntry* Vlc::find(int value) const {
  for (size_t i = 0; i < count_; ++i)
    if (entries_[i].value == value) return &entries_[i];
  return nullptr;
}

void Vlc::encode(BitWriter& w, int value) const {
  const VlcEntry* e = find(value);
  PDW_CHECK(e != nullptr) << "no VLC code for value " << value;
  w.put(e->code, e->len);
}

// ---------------------------------------------------------------------------
// Table B.1: macroblock_address_increment
// ---------------------------------------------------------------------------

static const VlcEntry kAddrIncEntries[] = {
    {0b1, 1, 1},
    {0b011, 3, 2},         {0b010, 3, 3},
    {0b0011, 4, 4},        {0b0010, 4, 5},
    {0b00011, 5, 6},       {0b00010, 5, 7},
    {0b0000111, 7, 8},     {0b0000110, 7, 9},
    {0b00001011, 8, 10},   {0b00001010, 8, 11},
    {0b00001001, 8, 12},   {0b00001000, 8, 13},
    {0b00000111, 8, 14},   {0b00000110, 8, 15},
    {0b0000010111, 10, 16}, {0b0000010110, 10, 17},
    {0b0000010101, 10, 18}, {0b0000010100, 10, 19},
    {0b0000010011, 10, 20}, {0b0000010010, 10, 21},
    {0b00000100011, 11, 22}, {0b00000100010, 11, 23},
    {0b00000100001, 11, 24}, {0b00000100000, 11, 25},
    {0b00000011111, 11, 26}, {0b00000011110, 11, 27},
    {0b00000011101, 11, 28}, {0b00000011100, 11, 29},
    {0b00000011011, 11, 30}, {0b00000011010, 11, 31},
    {0b00000011001, 11, 32}, {0b00000011000, 11, 33},
};
// macroblock_escape: 0000 0001 000 (11 bits), adds 33.
static constexpr uint32_t kAddrEscapeCode = 0b00000001000;
static constexpr int kAddrEscapeLen = 11;

const Vlc& vlc_mb_address_increment() {
  static const Vlc table(kAddrIncEntries, std::size(kAddrIncEntries));
  return table;
}

int decode_address_increment(BitReader& r) {
  int increment = 0;
  PDW_CHECK(try_decode_address_increment(r, &increment))
      << "invalid macroblock_address_increment";
  return increment;
}

bool try_decode_address_increment(BitReader& r, int* increment) {
  int escapes = 0;
  while (r.peek(kAddrEscapeLen) == kAddrEscapeCode) {
    r.skip(kAddrEscapeLen);
    escapes += 33;
    // A zero-filled overrun region peeks as all-zero bits, which matches the
    // escape code forever; bound the loop so a truncated slice terminates.
    if (escapes >= 1 << 20 || r.overrun()) return false;
  }
  int base = 0;
  if (!vlc_mb_address_increment().try_decode(r, &base)) return false;
  *increment = escapes + base;
  return true;
}

void encode_address_increment(BitWriter& w, int increment) {
  PDW_CHECK_GE(increment, 1);
  while (increment > 33) {
    w.put(kAddrEscapeCode, kAddrEscapeLen);
    increment -= 33;
  }
  vlc_mb_address_increment().encode(w, increment);
}

// ---------------------------------------------------------------------------
// Tables B.2/B.3/B.4: macroblock_type
// ---------------------------------------------------------------------------

using namespace mb_flags;

static const VlcEntry kMbTypeI[] = {
    {0b1, 1, kIntra},
    {0b01, 2, kIntra | kQuant},
};

static const VlcEntry kMbTypeP[] = {
    {0b1, 1, kMotionForward | kPattern},
    {0b01, 2, kPattern},  // No MC, coded
    {0b001, 3, kMotionForward},
    {0b00011, 5, kIntra},
    {0b00010, 5, kMotionForward | kPattern | kQuant},
    {0b00001, 5, kPattern | kQuant},
    {0b000001, 6, kIntra | kQuant},
};

static const VlcEntry kMbTypeB[] = {
    {0b10, 2, kMotionForward | kMotionBackward},
    {0b11, 2, kMotionForward | kMotionBackward | kPattern},
    {0b010, 3, kMotionBackward},
    {0b011, 3, kMotionBackward | kPattern},
    {0b0010, 4, kMotionForward},
    {0b0011, 4, kMotionForward | kPattern},
    {0b00011, 5, kIntra},
    {0b00010, 5, kMotionForward | kMotionBackward | kPattern | kQuant},
    {0b000011, 6, kMotionForward | kPattern | kQuant},
    {0b000010, 6, kMotionBackward | kPattern | kQuant},
    {0b000001, 6, kIntra | kQuant},
};

const Vlc& vlc_mb_type(PicType type) {
  static const Vlc table_i(kMbTypeI, std::size(kMbTypeI));
  static const Vlc table_p(kMbTypeP, std::size(kMbTypeP));
  static const Vlc table_b(kMbTypeB, std::size(kMbTypeB));
  switch (type) {
    case PicType::I: return table_i;
    case PicType::P: return table_p;
    case PicType::B: return table_b;
  }
  PDW_CHECK(false) << "bad picture type";
  __builtin_unreachable();
}

// ---------------------------------------------------------------------------
// Table B.9: coded_block_pattern (4:2:0)
// ---------------------------------------------------------------------------

static const VlcEntry kCbpEntries[] = {
    {0b111, 3, 60},
    {0b1101, 4, 4},   {0b1100, 4, 8},   {0b1011, 4, 16},  {0b1010, 4, 32},
    {0b10011, 5, 12}, {0b10010, 5, 48}, {0b10001, 5, 20}, {0b10000, 5, 40},
    {0b01111, 5, 28}, {0b01110, 5, 44}, {0b01101, 5, 52}, {0b01100, 5, 56},
    {0b01011, 5, 1},  {0b01010, 5, 61}, {0b01001, 5, 2},  {0b01000, 5, 62},
    {0b001111, 6, 24}, {0b001110, 6, 36}, {0b001101, 6, 3}, {0b001100, 6, 63},
    {0b0010111, 7, 5},  {0b0010110, 7, 9},  {0b0010101, 7, 17},
    {0b0010100, 7, 33}, {0b0010011, 7, 6},  {0b0010010, 7, 10},
    {0b0010001, 7, 18}, {0b0010000, 7, 34},
    {0b00011111, 8, 7},  {0b00011110, 8, 11}, {0b00011101, 8, 19},
    {0b00011100, 8, 35}, {0b00011011, 8, 13}, {0b00011010, 8, 49},
    {0b00011001, 8, 21}, {0b00011000, 8, 41}, {0b00010111, 8, 14},
    {0b00010110, 8, 50}, {0b00010101, 8, 22}, {0b00010100, 8, 42},
    {0b00010011, 8, 15}, {0b00010010, 8, 51}, {0b00010001, 8, 23},
    {0b00010000, 8, 43}, {0b00001111, 8, 25}, {0b00001110, 8, 37},
    {0b00001101, 8, 26}, {0b00001100, 8, 38}, {0b00001011, 8, 29},
    {0b00001010, 8, 45}, {0b00001001, 8, 53}, {0b00001000, 8, 57},
    {0b00000111, 8, 30}, {0b00000110, 8, 46}, {0b00000101, 8, 54},
    {0b00000100, 8, 58},
    {0b000000111, 9, 31}, {0b000000110, 9, 47}, {0b000000101, 9, 55},
    {0b000000100, 9, 59}, {0b000000001, 9, 0},
    {0b0000000111, 10, 27}, {0b0000000110, 10, 39},
};

const Vlc& vlc_coded_block_pattern() {
  static const Vlc table(kCbpEntries, std::size(kCbpEntries));
  return table;
}

// ---------------------------------------------------------------------------
// Table B.10: motion_code
//
// Structurally, the code for magnitude m >= 1 is the B.1 code for (2m) with
// its final bit replaced by the sign (0 positive, 1 negative); magnitude 0 is
// '1'. We generate the table from B.1 and cross-check it in unit tests
// against literal codes from the standard.
// ---------------------------------------------------------------------------

static std::vector<VlcEntry> make_motion_code_entries() {
  std::vector<VlcEntry> out;
  out.push_back({0b1, 1, 0});
  for (int m = 1; m <= 16; ++m) {
    const VlcEntry* base = vlc_mb_address_increment().find(2 * m);
    PDW_CHECK(base != nullptr);
    const uint32_t prefix = base->code >> 1;  // drop the final bit
    const uint8_t len = base->len;
    out.push_back({(prefix << 1) | 0u, len, int16_t(m)});    // positive
    out.push_back({(prefix << 1) | 1u, len, int16_t(-m)});   // negative
  }
  return out;
}

const Vlc& vlc_motion_code() {
  static const std::vector<VlcEntry> entries = make_motion_code_entries();
  static const Vlc table(entries.data(), entries.size());
  return table;
}

// ---------------------------------------------------------------------------
// Tables B.12/B.13: dct_dc_size
// ---------------------------------------------------------------------------

static const VlcEntry kDcSizeLuma[] = {
    {0b100, 3, 0}, {0b00, 2, 1},  {0b01, 2, 2},   {0b101, 3, 3},
    {0b110, 3, 4}, {0b1110, 4, 5}, {0b11110, 5, 6}, {0b111110, 6, 7},
    {0b1111110, 7, 8}, {0b11111110, 8, 9}, {0b111111110, 9, 10},
    {0b111111111, 9, 11},
};

static const VlcEntry kDcSizeChroma[] = {
    {0b00, 2, 0},  {0b01, 2, 1},   {0b10, 2, 2},   {0b110, 3, 3},
    {0b1110, 4, 4}, {0b11110, 5, 5}, {0b111110, 6, 6}, {0b1111110, 7, 7},
    {0b11111110, 8, 8}, {0b111111110, 9, 9}, {0b1111111110, 10, 10},
    {0b1111111111, 10, 11},
};

const Vlc& vlc_dct_dc_size_luma() {
  static const Vlc table(kDcSizeLuma, std::size(kDcSizeLuma));
  return table;
}

const Vlc& vlc_dct_dc_size_chroma() {
  static const Vlc table(kDcSizeChroma, std::size(kDcSizeChroma));
  return table;
}

// ---------------------------------------------------------------------------
// Table B.14: DCT coefficients, table zero
// ---------------------------------------------------------------------------

namespace {

struct B14Entry {
  uint8_t run;
  uint8_t level;  // magnitude; sign bit follows the code in the stream
  uint16_t code;  // without sign bit
  uint8_t len;    // without sign bit
};

// All 111 run/level codes of Table B.14 ('11' form of run 0 / level 1; the
// '1' first-coefficient form is special-cased in decode/encode).
const B14Entry kB14[] = {
    {0, 1, 0b11, 2},
    {1, 1, 0b011, 3},
    {0, 2, 0b0100, 4},
    {2, 1, 0b0101, 4},
    {0, 3, 0b00101, 5},
    {3, 1, 0b00111, 5},
    {4, 1, 0b00110, 5},
    {1, 2, 0b000110, 6},
    {5, 1, 0b000111, 6},
    {6, 1, 0b000101, 6},
    {7, 1, 0b000100, 6},
    {0, 4, 0b0000110, 7},
    {2, 2, 0b0000100, 7},
    {8, 1, 0b0000111, 7},
    {9, 1, 0b0000101, 7},
    {0, 5, 0b00100110, 8},
    {0, 6, 0b00100001, 8},
    {1, 3, 0b00100101, 8},
    {3, 2, 0b00100100, 8},
    {10, 1, 0b00100111, 8},
    {11, 1, 0b00100011, 8},
    {12, 1, 0b00100010, 8},
    {13, 1, 0b00100000, 8},
    {0, 7, 0b0000001010, 10},
    {1, 4, 0b0000001100, 10},
    {2, 3, 0b0000001011, 10},
    {4, 2, 0b0000001111, 10},
    {5, 2, 0b0000001001, 10},
    {14, 1, 0b0000001110, 10},
    {15, 1, 0b0000001101, 10},
    {16, 1, 0b0000001000, 10},
    {0, 8, 0b000000011101, 12},
    {0, 9, 0b000000011000, 12},
    {0, 10, 0b000000010011, 12},
    {0, 11, 0b000000010000, 12},
    {1, 5, 0b000000011011, 12},
    {2, 4, 0b000000010100, 12},
    {3, 3, 0b000000011100, 12},
    {4, 3, 0b000000010010, 12},
    {6, 2, 0b000000011110, 12},
    {7, 2, 0b000000010101, 12},
    {8, 2, 0b000000010001, 12},
    {17, 1, 0b000000011111, 12},
    {18, 1, 0b000000011010, 12},
    {19, 1, 0b000000011001, 12},
    {20, 1, 0b000000010111, 12},
    {21, 1, 0b000000010110, 12},
    {0, 12, 0b0000000011010, 13},
    {0, 13, 0b0000000011001, 13},
    {0, 14, 0b0000000011000, 13},
    {0, 15, 0b0000000010111, 13},
    {1, 6, 0b0000000010110, 13},
    {1, 7, 0b0000000010101, 13},
    {2, 5, 0b0000000010100, 13},
    {3, 4, 0b0000000010011, 13},
    {5, 3, 0b0000000010010, 13},
    {9, 2, 0b0000000010001, 13},
    {10, 2, 0b0000000010000, 13},
    {22, 1, 0b0000000011111, 13},
    {23, 1, 0b0000000011110, 13},
    {24, 1, 0b0000000011101, 13},
    {25, 1, 0b0000000011100, 13},
    {26, 1, 0b0000000011011, 13},
    {0, 16, 0b00000000011111, 14},
    {0, 17, 0b00000000011110, 14},
    {0, 18, 0b00000000011101, 14},
    {0, 19, 0b00000000011100, 14},
    {0, 20, 0b00000000011011, 14},
    {0, 21, 0b00000000011010, 14},
    {0, 22, 0b00000000011001, 14},
    {0, 23, 0b00000000011000, 14},
    {0, 24, 0b00000000010111, 14},
    {0, 25, 0b00000000010110, 14},
    {0, 26, 0b00000000010101, 14},
    {0, 27, 0b00000000010100, 14},
    {0, 28, 0b00000000010011, 14},
    {0, 29, 0b00000000010010, 14},
    {0, 30, 0b00000000010001, 14},
    {0, 31, 0b00000000010000, 14},
    {0, 32, 0b000000000011000, 15},
    {0, 33, 0b000000000010111, 15},
    {0, 34, 0b000000000010110, 15},
    {0, 35, 0b000000000010101, 15},
    {0, 36, 0b000000000010100, 15},
    {0, 37, 0b000000000010011, 15},
    {0, 38, 0b000000000010010, 15},
    {0, 39, 0b000000000010001, 15},
    {0, 40, 0b000000000010000, 15},
    {1, 8, 0b000000000011111, 15},
    {1, 9, 0b000000000011110, 15},
    {1, 10, 0b000000000011101, 15},
    {1, 11, 0b000000000011100, 15},
    {1, 12, 0b000000000011011, 15},
    {1, 13, 0b000000000011010, 15},
    {1, 14, 0b000000000011001, 15},
    {1, 15, 0b0000000000011111, 16},
    {1, 16, 0b0000000000011110, 16},
    {1, 17, 0b0000000000011101, 16},
    {1, 18, 0b0000000000011100, 16},
    {11, 2, 0b0000000000011011, 16},
    {12, 2, 0b0000000000011010, 16},
    {13, 2, 0b0000000000011001, 16},
    {14, 2, 0b0000000000011000, 16},
    {15, 2, 0b0000000000010111, 16},
    {6, 3, 0b0000000000010110, 16},
    {16, 2, 0b0000000000010101, 16},
    {27, 1, 0b0000000000010100, 16},
    {28, 1, 0b0000000000010011, 16},
    {29, 1, 0b0000000000010010, 16},
    {30, 1, 0b0000000000010001, 16},
    {31, 1, 0b0000000000010000, 16},
};

constexpr uint16_t kEobCode = 0b10;
constexpr int kEobLen = 2;
constexpr uint16_t kEscapeCode = 0b000001;
constexpr int kEscapeLen = 6;

// Decode LUT over a 16-bit peek window (code without sign).
struct DctLut {
  int8_t run;    // -1 = EOB, -2 = escape, -3 = invalid
  int8_t level;  // magnitude
  uint8_t len;   // code length without sign
};

const DctLut* dct_lut() {
  static const std::vector<DctLut>* lut = [] {
    auto* t = new std::vector<DctLut>(1 << 16, DctLut{-3, 0, 0});
    auto fill = [&](uint16_t code, int len, DctLut v) {
      const uint32_t base = uint32_t(code) << (16 - len);
      const uint32_t span = 1u << (16 - len);
      for (uint32_t j = 0; j < span; ++j) {
        PDW_CHECK_EQ((*t)[base + j].run, -3) << "B.14 not prefix-free";
        (*t)[base + j] = v;
      }
    };
    for (const B14Entry& e : kB14)
      fill(e.code, e.len, DctLut{int8_t(e.run), int8_t(e.level), e.len});
    fill(kEobCode, kEobLen, DctLut{-1, 0, kEobLen});
    fill(kEscapeCode, kEscapeLen, DctLut{-2, 0, kEscapeLen});
    return t;
  }();
  return lut->data();
}

// Encode lookup keyed by run * 64 + |level| (levels above 40 always escape).
const std::unordered_map<int, const B14Entry*>& b14_encode_map() {
  static const auto* map = [] {
    auto* m = new std::unordered_map<int, const B14Entry*>();
    for (const B14Entry& e : kB14) (*m)[e.run * 64 + e.level] = &e;
    return m;
  }();
  return *map;
}

}  // namespace

DctCoeff decode_dct_coeff_b14(BitReader& r, bool first) {
  DctCoeff c;
  PDW_CHECK(try_decode_dct_coeff_b14(r, first, &c))
      << "invalid DCT coefficient code";
  return c;
}

bool try_decode_dct_coeff_b14(BitReader& r, bool first, DctCoeff* out) {
  if (first && r.peek(1) == 1) {
    // First coefficient of a non-intra block: '1s'.
    r.skip(1);
    *out = {false, 0, r.read_bit() ? -1 : 1};
    return true;
  }
  const DctLut e = dct_lut()[r.peek(16)];
  if (e.run == -3) return false;  // invalid code
  r.skip(e.len);
  if (e.run == -1) {
    *out = {true, 0, 0};
    return true;
  }
  if (e.run == -2) {
    // MPEG-2 escape: 6-bit run, 12-bit two's complement level.
    const int run = int(r.read(6));
    int level = int(r.read(12));
    if (level >= 2048) level -= 4096;
    if (level == 0 || level == -2048) return false;  // forbidden
    *out = {false, run, level};
    return true;
  }
  const bool negative = r.read_bit();
  *out = {false, e.run, negative ? -int(e.level) : int(e.level)};
  return true;
}

bool b14_has_code(int run, int level) {
  const int mag = level < 0 ? -level : level;
  if (run > 31 || mag > 40) return false;
  return b14_encode_map().count(run * 64 + mag) != 0;
}

void encode_dct_coeff_b14(BitWriter& w, int run, int level, bool first) {
  PDW_CHECK(level != 0);
  const int mag = level < 0 ? -level : level;
  if (first && run == 0 && mag == 1) {
    w.put_bit(1);
    w.put_bit(level < 0 ? 1 : 0);
    return;
  }
  const auto& map = b14_encode_map();
  const auto it = run <= 31 && mag <= 40 ? map.find(run * 64 + mag) : map.end();
  if (it != map.end()) {
    const B14Entry& e = *it->second;
    w.put(e.code, e.len);
    w.put_bit(level < 0 ? 1 : 0);
    return;
  }
  PDW_CHECK_LE(run, 63);
  PDW_CHECK_GE(level, -2047);
  PDW_CHECK_LE(level, 2047);
  w.put(kEscapeCode, kEscapeLen);
  w.put(uint32_t(run), 6);
  w.put(uint32_t(level) & 0xFFF, 12);
}

void encode_eob_b14(BitWriter& w) { w.put(kEobCode, kEobLen); }

double SequenceHeader::frame_rate() const {
  static const double kRates[16] = {0,     23.976, 24, 25, 29.97, 30, 50,
                                    59.94, 60,     30, 30, 30,    30, 30,
                                    30,    30};
  return kRates[frame_rate_code & 15];
}

}  // namespace pdw::mpeg2
