// Macroblock reconstruction: IDCT of the dequantised residual, motion
// compensation, clamp-and-add (§7.5/§7.6.8). Shared by the serial decoder
// and the tile decoders (same arithmetic => bit-exact partitioned decode).
#pragma once

#include "mpeg2/frame.h"
#include "mpeg2/motion.h"
#include "mpeg2/types.h"

namespace pdw::mpeg2 {

// Reconstruct one macroblock (parsed in ParseMode::kFull) into `out`.
// `fwd`/`bwd` may be null when the corresponding direction is unused
// (I pictures, intra macroblocks).
void reconstruct_mb(const Macroblock& mb, const RefSource* fwd,
                    const RefSource* bwd, int mbx, int mby,
                    MacroblockPixels* out);

// Write a macroblock's pixels into a full frame at macroblock coordinates.
void store_mb(Frame* frame, int mbx, int mby, const MacroblockPixels& px);

// Read a macroblock's pixels from a full frame.
MacroblockPixels load_mb(const Frame& frame, int mbx, int mby);

}  // namespace pdw::mpeg2
