#include "mpeg2/decoder.h"

#include "bitstream/bit_reader.h"
#include "mpeg2/headers.h"
#include "mpeg2/mb_parser.h"
#include "mpeg2/recon.h"

namespace pdw::mpeg2 {

namespace {

// Slice sink that reconstructs each macroblock into the current frame.
class ReconSink final : public MbSink {
 public:
  ReconSink(const PictureContext& ctx, Frame* cur, const Frame* fwd,
            const Frame* bwd)
      : ctx_(ctx),
        cur_(cur),
        fwd_src_(fwd ? std::make_unique<FrameRefSource>(*fwd) : nullptr),
        bwd_src_(bwd ? std::make_unique<FrameRefSource>(*bwd) : nullptr) {}

  void on_macroblock(const Macroblock& mb, const MbState&, size_t,
                     size_t) override {
    MacroblockPixels px;
    reconstruct_mb(mb, fwd_src_.get(), bwd_src_.get(), mb.mb_x(ctx_.mb_width()),
                   mb.mb_y(ctx_.mb_width()), &px);
    store_mb(cur_, mb.mb_x(ctx_.mb_width()), mb.mb_y(ctx_.mb_width()), px);
  }

 private:
  const PictureContext& ctx_;
  Frame* cur_;
  std::unique_ptr<FrameRefSource> fwd_src_, bwd_src_;
};

}  // namespace

void Mpeg2Decoder::decode(std::span<const uint8_t> es,
                          const FrameCallback& cb) {
  const std::vector<PictureSpan> spans = scan_pictures(es);
  for (const PictureSpan& ps : spans) {
    if (policy_ == ErrorPolicy::kStrict) {
      decode_picture_span(es, ps, cb);
      continue;
    }
    try {
      decode_picture_span(es, ps, cb);
    } catch (const CheckError&) {
      // Header-level damage: drop the whole picture and resync at the next
      // picture start code (its content is repeated via the stale buffers).
      ++concealed_;
    }
  }
  flush(cb);
}

void Mpeg2Decoder::decode_picture_span(std::span<const uint8_t> es,
                                       const PictureSpan& ps,
                                       const FrameCallback& cb) {
  BitReader r(es.subspan(ps.begin, ps.end - ps.begin));
  decode_picture(r, es, ps.begin, ps.end, cb);
}

void Mpeg2Decoder::decode_picture(BitReader& r, std::span<const uint8_t> es,
                                  size_t begin, size_t end,
                                  const FrameCallback& cb) {
  (void)es;
  ParsedPictureHeaders headers;
  const size_t first_slice =
      parse_picture_headers(r.data(), &seq_, &have_seq_, &headers);
  const PictureHeader& ph = headers.ph;

  PictureContext ctx;
  ctx.seq = &seq_;
  ctx.ph = headers.ph;
  ctx.pce = headers.pce;

  const int w = seq_.mb_width() * kMbSize;
  const int h = seq_.mb_height() * kMbSize;

  // Frame buffer management.
  const Frame* fwd = nullptr;
  const Frame* bwd = nullptr;
  if (ph.type == PicType::B) {
    PDW_CHECK(ref_old_ && ref_new_) << "B picture without two references";
    fwd = ref_old_.get();
    bwd = ref_new_.get();
  } else if (ph.type == PicType::P) {
    PDW_CHECK(ref_new_) << "P picture without reference";
    fwd = ref_new_.get();
  }
  if (!cur_ || cur_->width() != w || cur_->height() != h)
    cur_ = std::make_unique<Frame>(w, h);

  // Slice loop: walk the span's start codes from the first slice onward.
  std::span<const uint8_t> span = r.data();
  MbSyntaxDecoder syntax(ctx, ParseMode::kFull);
  ReconSink sink(ctx, cur_.get(), fwd, bwd);
  bool picture_had_error = false;
  size_t pos = first_slice;
  while (true) {
    const StartCodeHit hit = find_start_code(span, pos);
    if (hit.offset >= span.size()) break;
    pos = hit.offset + 4;
    if (!start_code::is_slice(hit.code)) continue;
    BitReader sr(span.subspan(hit.offset + 4));
    if (policy_ == ErrorPolicy::kStrict) {
      int mb_row = 0;
      const int qscale = parse_slice_header(sr, seq_, hit.code, &mb_row);
      syntax.parse_slice_body(sr, mb_row, qscale, sink);
    } else {
      // Conceal: a corrupt slice is dropped (its macroblocks keep whatever
      // the frame buffer held — the previous picture's samples, classic
      // slice-level error concealment); decoding resyncs at the next start
      // code, which the corrupt VLC data cannot emulate.
      try {
        int mb_row = 0;
        const int qscale = parse_slice_header(sr, seq_, hit.code, &mb_row);
        syntax.parse_slice_body(sr, mb_row, qscale, sink);
      } catch (const CheckError&) {
        ++dropped_slices_;
        picture_had_error = true;
      }
    }
  }
  if (picture_had_error) ++concealed_;

  const size_t coded_bytes = end - begin;
  ++decode_index_;

  // Display-order emission.
  if (ph.type == PicType::B) {
    emit(*cur_, ph.type, coded_bytes, cb);
  } else {
    if (pending_ref_) emit(*ref_new_, pending_ref_type_, pending_ref_bytes_, cb);
    // Current becomes the newest reference.
    std::swap(ref_old_, ref_new_);
    std::swap(ref_new_, cur_);
    pending_ref_ = true;
    pending_ref_type_ = ph.type;
    pending_ref_bytes_ = coded_bytes;
  }
}

void Mpeg2Decoder::flush(const FrameCallback& cb) {
  if (pending_ref_) {
    emit(*ref_new_, pending_ref_type_, pending_ref_bytes_, cb);
    pending_ref_ = false;
  }
}

void Mpeg2Decoder::emit(const Frame& f, PicType type, size_t coded_bytes,
                        const FrameCallback& cb) {
  DecodedPictureInfo info;
  info.decode_index = decode_index_;
  info.display_index = display_index_++;
  info.type = type;
  info.coded_bytes = coded_bytes;
  if (cb) cb(f, info);
}

}  // namespace pdw::mpeg2
