#include "mpeg2/decoder.h"

#include <sstream>

#include "bitstream/bit_reader.h"
#include "mpeg2/conceal.h"
#include "mpeg2/headers.h"
#include "mpeg2/mb_parser.h"
#include "mpeg2/recon.h"

namespace pdw::mpeg2 {

namespace {

// Slice sink that reconstructs each macroblock into the current frame and
// marks it covered in the concealment plan.
class ReconSink final : public MbSink {
 public:
  ReconSink(const PictureContext& ctx, Frame* cur, const Frame* fwd,
            const Frame* bwd, ConcealPlanner* planner)
      : ctx_(ctx),
        cur_(cur),
        planner_(planner),
        fwd_src_(fwd ? std::make_unique<FrameRefSource>(*fwd) : nullptr),
        bwd_src_(bwd ? std::make_unique<FrameRefSource>(*bwd) : nullptr) {}

  void on_macroblock(const Macroblock& mb, const MbState&, size_t,
                     size_t) override {
    MacroblockPixels px;
    reconstruct_mb(mb, fwd_src_.get(), bwd_src_.get(), mb.mb_x(ctx_.mb_width()),
                   mb.mb_y(ctx_.mb_width()), &px);
    store_mb(cur_, mb.mb_x(ctx_.mb_width()), mb.mb_y(ctx_.mb_width()), px);
    if (planner_) planner_->mark(mb.addr);
  }

  const RefSource* fwd_src() const { return fwd_src_.get(); }

 private:
  const PictureContext& ctx_;
  Frame* cur_;
  ConcealPlanner* planner_;
  std::unique_ptr<FrameRefSource> fwd_src_, bwd_src_;
};

[[noreturn]] void throw_decode_error(const DecodeStatus& s) {
  std::ostringstream os;
  os << "bitstream damage: " << s;
  throw BitstreamError(os.str());
}

}  // namespace

void Mpeg2Decoder::decode(std::span<const uint8_t> es,
                          const FrameCallback& cb) {
  const std::vector<PictureSpan> spans = scan_pictures(es);
  for (const PictureSpan& ps : spans) decode_picture_span(es, ps, cb);
  flush(cb);
}

void Mpeg2Decoder::decode_picture_span(std::span<const uint8_t> es,
                                       const PictureSpan& ps,
                                       const FrameCallback& cb) {
  BitReader r(es.subspan(ps.begin, ps.end - ps.begin));
  const DecodeStatus s = decode_picture(r, ps.begin, ps.end, cb);
  if (!s.ok()) {
    if (policy_ == ErrorPolicy::kStrict) throw_decode_error(s);
    // kConceal: the picture was dropped whole; the next picture resyncs.
    ++dropped_pictures_;
    ++concealed_;
  }
}

DecodeStatus Mpeg2Decoder::decode_picture(BitReader& r, size_t begin,
                                          size_t end,
                                          const FrameCallback& cb) {
  // Snapshot the sequence state: a damaged embedded sequence header must not
  // poison the geometry used for every following picture.
  const SequenceHeader seq_snapshot = seq_;
  const bool have_seq_snapshot = have_seq_;

  ParsedPictureHeaders headers;
  DecodeStatus hs = parse_picture_headers(r.data(), &seq_, &have_seq_, &headers);
  if (!hs.ok()) {
    seq_ = seq_snapshot;
    have_seq_ = have_seq_snapshot;
    return hs.escalate(DecodeSeverity::kPicture);
  }
  const PictureHeader& ph = headers.ph;

  const int w = seq_.mb_width() * kMbSize;
  const int h = seq_.mb_height() * kMbSize;

  // A dimension change relative to the live reference frames means either a
  // mid-GOP stream splice or a damaged sequence header; for a P/B picture
  // the references are unusable either way, so drop the picture.
  if (ph.type != PicType::I && ref_new_ &&
      (ref_new_->width() != w || ref_new_->height() != h)) {
    seq_ = seq_snapshot;
    have_seq_ = have_seq_snapshot;
    return DecodeStatus::error(DecodeErr::kBadStructure,
                               DecodeSeverity::kPicture, 0);
  }

  // Frame buffer management.
  const Frame* fwd = nullptr;
  const Frame* bwd = nullptr;
  if (ph.type == PicType::B) {
    if (!ref_old_ || !ref_new_)  // B picture without two references
      return DecodeStatus::error(DecodeErr::kBadStructure,
                                 DecodeSeverity::kPicture, 0);
    fwd = ref_old_.get();
    bwd = ref_new_.get();
  } else if (ph.type == PicType::P) {
    if (!ref_new_)  // P picture without reference
      return DecodeStatus::error(DecodeErr::kBadStructure,
                                 DecodeSeverity::kPicture, 0);
    fwd = ref_new_.get();
  }
  if (!cur_ || cur_->width() != w || cur_->height() != h)
    cur_ = std::make_unique<Frame>(w, h);
  // An I picture that changes dimensions restarts the sequence: the old
  // references are for another geometry.
  if (ph.type == PicType::I && ref_new_ &&
      (ref_new_->width() != w || ref_new_->height() != h)) {
    ref_old_.reset();
    ref_new_.reset();
    pending_ref_ = false;
  }

  PictureContext ctx;
  ctx.seq = &seq_;
  ctx.ph = headers.ph;
  ctx.pce = headers.pce;

  // Slice loop: walk the span's start codes from the first slice onward.
  std::span<const uint8_t> span = r.data();
  MbSyntaxDecoder syntax(ctx, ParseMode::kFull);
  ConcealPlanner planner;
  planner.begin(seq_.mb_width(), seq_.mb_height(), ctx.pce);
  ReconSink sink(ctx, cur_.get(), fwd, bwd,
                 policy_ == ErrorPolicy::kConceal ? &planner : nullptr);
  bool picture_had_error = false;
  size_t pos = headers.first_slice_offset;
  while (true) {
    const StartCodeHit hit = find_start_code(span, pos);
    if (hit.offset >= span.size()) break;
    pos = hit.offset + 4;
    if (!start_code::is_slice(hit.code)) continue;
    BitReader sr(span.subspan(hit.offset + 4));
    int mb_row = 0;
    int qscale = 0;
    DecodeStatus ss = parse_slice_header(sr, seq_, hit.code, &mb_row, &qscale);
    if (ss.ok()) {
      const MbSyntaxDecoder::SliceResult res =
          syntax.parse_slice_body(sr, mb_row, qscale, sink);
      ss = res.status;
    }
    if (!ss.ok()) {
      if (policy_ == ErrorPolicy::kStrict) return ss;
      // Conceal mode: resync at the next slice start code. The macroblocks
      // this slice failed to deliver stay unmarked in the plan and are
      // concealed below.
      ++dropped_slices_;
      picture_had_error = true;
    }
  }

  // Concealment pass: every macroblock no slice delivered — damaged slices,
  // slices whose start code itself was destroyed, rows missing entirely —
  // gets the standard concealment (zero-MV reference copy / flat fill).
  if (policy_ == ErrorPolicy::kConceal &&
      planner.covered_count() < planner.total()) {
    const std::vector<ConcealSpec> specs = planner.finish();
    for (const ConcealSpec& spec : specs) {
      MacroblockPixels px;
      conceal_mb(ph.type, sink.fwd_src(), spec, &px);
      store_mb(cur_.get(), spec.mb_x, spec.mb_y, px);
    }
    concealed_mbs_ += int(specs.size());
    picture_had_error = true;
  }
  if (picture_had_error) ++concealed_;

  const size_t coded_bytes = end - begin;
  ++decode_index_;

  // Display-order emission.
  if (ph.type == PicType::B) {
    emit(*cur_, ph.type, coded_bytes, cb);
  } else {
    if (pending_ref_) emit(*ref_new_, pending_ref_type_, pending_ref_bytes_, cb);
    // Current becomes the newest reference.
    std::swap(ref_old_, ref_new_);
    std::swap(ref_new_, cur_);
    pending_ref_ = true;
    pending_ref_type_ = ph.type;
    pending_ref_bytes_ = coded_bytes;
  }
  return DecodeStatus::success();
}

void Mpeg2Decoder::flush(const FrameCallback& cb) {
  if (pending_ref_) {
    emit(*ref_new_, pending_ref_type_, pending_ref_bytes_, cb);
    pending_ref_ = false;
  }
}

void Mpeg2Decoder::emit(const Frame& f, PicType type, size_t coded_bytes,
                        const FrameCallback& cb) {
  DecodedPictureInfo info;
  info.decode_index = decode_index_;
  info.display_index = display_index_++;
  info.type = type;
  info.coded_bytes = coded_bytes;
  if (cb) cb(f, info);
}

}  // namespace pdw::mpeg2
