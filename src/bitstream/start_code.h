// MPEG-2 start-code constants and the byte-aligned start-code scanner used
// by the root (picture-level) splitter.
//
// Start codes are the reason picture-level splitting is cheap (paper §3,
// Table 1): a 32-bit byte-aligned pattern 00 00 01 xx delimits sequences,
// GOPs, pictures and slices, so the root splitter never parses VLC data.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace pdw {

// Start code values (the byte following the 00 00 01 prefix).
namespace start_code {
inline constexpr uint8_t kPicture = 0x00;
inline constexpr uint8_t kSliceFirst = 0x01;   // slices: 0x01 .. 0xAF
inline constexpr uint8_t kSliceLast = 0xAF;    //   (vertical position of slice)
inline constexpr uint8_t kUserData = 0xB2;
inline constexpr uint8_t kSequenceHeader = 0xB3;
inline constexpr uint8_t kSequenceError = 0xB4;
inline constexpr uint8_t kExtension = 0xB5;
inline constexpr uint8_t kSequenceEnd = 0xB7;
inline constexpr uint8_t kGroup = 0xB8;

inline bool is_slice(uint8_t code) {
  return code >= kSliceFirst && code <= kSliceLast;
}
}  // namespace start_code

// A located start code: `offset` is the byte index of the first 0x00 of the
// 00 00 01 prefix; `code` is the fourth byte.
struct StartCodeHit {
  size_t offset;
  uint8_t code;
};

// Find the next start code at or after `from`. Returns an offset of
// data.size() (and code 0xFF) when none remains.
StartCodeHit find_start_code(std::span<const uint8_t> data, size_t from);

// All start codes in the buffer, in order.
std::vector<StartCodeHit> find_all_start_codes(std::span<const uint8_t> data);

// A picture-sized work unit located by the root splitter: the byte range
// covers the picture start code through the last slice of the picture
// (exclusive of the next picture/GOP/sequence start code). `preceded_by_*`
// report whether a sequence header / GOP header immediately preceded this
// picture (those bytes are included in the range so downstream consumers see
// quant-matrix and timing updates).
struct PictureSpan {
  size_t begin = 0;  // byte offset of first header belonging to this picture
  size_t end = 0;    // one past the picture's last byte
  bool has_sequence_header = false;
  bool has_gop_header = false;
  // picture_coding_type peeked from the picture header (1 = I, 2 = P,
  // 3 = B; 0 when the header is truncated). The scan reads it anyway, and
  // the admission/shed layer needs the type *before* anything is split —
  // shedding a B picture must cost no parse work.
  uint8_t coding_type = 0;
};

// Split an elementary stream into picture spans (the root splitter's scan).
// The sequence end code, if present, is not part of any span.
std::vector<PictureSpan> scan_pictures(std::span<const uint8_t> data);

}  // namespace pdw
