#include "bitstream/start_code.h"

#include <cstring>

namespace pdw {

StartCodeHit find_start_code(std::span<const uint8_t> data, size_t from) {
  // Classic two-zero scan: look for 00 00 01. memchr-accelerated search for
  // the 01 byte keeps this fast enough that picture-level splitting is
  // effectively free, as the paper assumes.
  size_t i = from;
  while (i + 3 < data.size() + 1 && i + 2 < data.size()) {
    const uint8_t* p = static_cast<const uint8_t*>(
        std::memchr(data.data() + i + 2, 0x01, data.size() - i - 2));
    if (p == nullptr) break;
    const size_t one = size_t(p - data.data());
    if (data[one - 1] == 0x00 && data[one - 2] == 0x00) {
      if (one + 1 < data.size()) return {one - 2, data[one + 1]};
      break;
    }
    i = one - 1;
  }
  return {data.size(), 0xFF};
}

std::vector<StartCodeHit> find_all_start_codes(std::span<const uint8_t> data) {
  std::vector<StartCodeHit> out;
  size_t pos = 0;
  while (true) {
    const StartCodeHit hit = find_start_code(data, pos);
    if (hit.offset >= data.size()) break;
    out.push_back(hit);
    pos = hit.offset + 4;
  }
  return out;
}

std::vector<PictureSpan> scan_pictures(std::span<const uint8_t> data) {
  std::vector<PictureSpan> out;
  PictureSpan cur;
  bool have_open = false;       // a picture start code has been seen
  size_t pending_begin = 0;     // start of seq/GOP headers awaiting a picture
  bool pending_seq = false;
  bool pending_gop = false;
  bool have_pending = false;

  size_t pos = 0;
  while (true) {
    const StartCodeHit hit = find_start_code(data, pos);
    if (hit.offset >= data.size()) break;

    const bool boundary = hit.code == start_code::kPicture ||
                          hit.code == start_code::kSequenceHeader ||
                          hit.code == start_code::kGroup ||
                          hit.code == start_code::kSequenceEnd;
    if (boundary && have_open) {
      cur.end = hit.offset;
      out.push_back(cur);
      have_open = false;
    }

    switch (hit.code) {
      case start_code::kSequenceHeader:
        if (!have_pending) {
          pending_begin = hit.offset;
          have_pending = true;
        }
        pending_seq = true;
        break;
      case start_code::kGroup:
        if (!have_pending) {
          pending_begin = hit.offset;
          have_pending = true;
        }
        pending_gop = true;
        break;
      case start_code::kPicture:
        cur = PictureSpan{};
        cur.begin = have_pending ? pending_begin : hit.offset;
        cur.has_sequence_header = pending_seq;
        cur.has_gop_header = pending_gop;
        // picture_coding_type: 10 bits of temporal_reference, then 3 bits of
        // type — bits 5..3 of the picture header's second byte.
        if (hit.offset + 5 < data.size())
          cur.coding_type = uint8_t((data[hit.offset + 5] >> 3) & 0x7);
        have_pending = pending_seq = pending_gop = false;
        have_open = true;
        break;
      default:
        break;  // slices, extensions, user data: interior to the picture
    }
    pos = hit.offset + 4;
  }

  if (have_open) {
    cur.end = data.size();
    out.push_back(cur);
  }
  return out;
}

}  // namespace pdw
