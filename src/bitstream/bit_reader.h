// MSB-first bit reader over a borrowed byte buffer.
//
// This is the hot inner loop of both the decoder and the macroblock-level
// splitter, so the design follows the usual codec idiom: a 64-bit cache
// refilled byte-wise, with peek/skip split so VLC decoding can peek a fixed
// window and then consume the matched length.
#pragma once

#include <cstdint>
#include <span>

#include "common/check.h"

namespace pdw {

class BitReader {
 public:
  BitReader() = default;
  explicit BitReader(std::span<const uint8_t> data) : data_(data) {}

  // Construct positioned at an arbitrary bit offset (used when decoding
  // sub-picture partial slices, whose payload starts mid-byte). O(1): jumps
  // whole bytes directly.
  BitReader(std::span<const uint8_t> data, size_t bit_offset)
      : BitReader(data) {
    byte_pos_ = bit_offset / 8;
    skip(bit_offset % 8);
  }

  // Next `n` bits (n in [0,32]) left-aligned into the low bits, without
  // consuming. Bits past the end of the buffer read as zero; callers detect
  // overrun via overrun() / CHECK at a safe boundary.
  uint32_t peek(int n) {
    PDW_CHECK_LE(n, 32);
    fill(n);
    return n == 0 ? 0u : uint32_t(cache_ >> (kCacheBits - n));
  }

  void skip(size_t n) {
    while (n > 32) {
      consume(32);
      n -= 32;
    }
    consume(int(n));
  }

  // Read and consume `n` bits, n in [0,32]. Wide enough for a whole start
  // code (prefix + code byte) in one call.
  uint32_t read(int n) {
    const uint32_t v = peek(n);
    consume(n);
    return v;
  }

  // Read a value wider than 32 bits (e.g. 42-bit fields in tests).
  uint64_t read_wide(int n) {
    PDW_CHECK_LE(n, 64);
    uint64_t v = 0;
    while (n > 0) {
      const int chunk = n > 32 ? 32 : n;
      v = (v << chunk) | read(chunk);
      n -= chunk;
    }
    return v;
  }

  bool read_bit() { return read(1) != 0; }

  // Absolute position in bits from the start of the buffer.
  size_t bit_pos() const { return byte_pos_ * 8 - size_t(cache_bits_); }

  size_t size_bits() const { return data_.size() * 8; }
  size_t bits_left() const {
    const size_t pos = bit_pos();
    return pos >= size_bits() ? 0 : size_bits() - pos;
  }

  // True if any read has consumed bits beyond the end of the buffer. Sticky:
  // once set it stays set even if the position is rewound, so callers can
  // hoist the check from per-read to per-slice. All reads past the end
  // return zero bits, so parsing on after an overrun is well-defined (the
  // result is garbage, but never UB).
  bool overrun() const { return overrun_; }

  bool byte_aligned() const { return bit_pos() % 8 == 0; }

  void align_to_byte() {
    const size_t rem = bit_pos() % 8;
    if (rem) skip(8 - rem);
  }

  // True if the aligned reader is looking at 0x000001 (a start code prefix).
  // Only meaningful when byte_aligned().
  bool at_start_code_prefix() {
    return byte_aligned() && bits_left() >= 24 && peek(24) == 0x000001;
  }

  // MPEG-2 "next_start_code()": align, then true if the next bits are a start
  // code prefix or the stream is exhausted.
  std::span<const uint8_t> data() const { return data_; }

 private:
  static constexpr int kCacheBits = 64;

  void fill(int n) {
    while (cache_bits_ < n) {
      const uint64_t byte =
          byte_pos_ < data_.size() ? data_[byte_pos_] : 0;  // zero-pad past end
      ++byte_pos_;
      cache_ |= byte << (kCacheBits - 8 - cache_bits_);
      cache_bits_ += 8;
    }
  }

  void consume(int n) {
    fill(n);
    cache_ <<= n;
    cache_bits_ -= n;
    if (byte_pos_ * 8 - size_t(cache_bits_) > data_.size() * 8) {
      overrun_ = true;
    }
  }

  std::span<const uint8_t> data_;
  size_t byte_pos_ = 0;  // next byte to load into the cache
  uint64_t cache_ = 0;   // left-aligned
  int cache_bits_ = 0;
  bool overrun_ = false;
};

}  // namespace pdw
