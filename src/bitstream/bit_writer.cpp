#include "bitstream/bit_writer.h"

// Header-only today; this TU anchors the library target.
