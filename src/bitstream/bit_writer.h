// MSB-first bit writer appending to an owned byte vector.
//
// Used by the MPEG-2 encoder and by unit tests that synthesize bitstream
// fragments. The encoder emits one bit at a time for hundreds of thousands
// of macroblocks per picture, so growth matters: the buffer grows in
// power-of-two size classes from a non-trivial floor instead of whatever
// small steps the std::vector implementation picks, and callers that know
// the output size can reserve() it up front.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "common/check.h"

namespace pdw {

class BitWriter {
 public:
  // Append the low `n` bits of `value`, MSB first. n in [0,32].
  void put(uint32_t value, int n) {
    PDW_CHECK_LE(n, 32);
    if (n < 32) PDW_CHECK_LT(uint64_t(value), uint64_t(1) << n);
    for (int i = n - 1; i >= 0; --i) put_bit((value >> i) & 1u);
  }

  void put_bit(uint32_t bit) {
    cur_ = uint8_t((cur_ << 1) | (bit & 1u));
    if (++nbits_ == 8) {
      push_byte(cur_);
      cur_ = 0;
      nbits_ = 0;
    }
  }

  // Pad with zero bits to the next byte boundary.
  void align_to_byte() {
    while (nbits_ != 0) put_bit(0);
  }

  // MPEG-2 start code: align, then 00 00 01 <code>.
  void put_start_code(uint8_t code) {
    align_to_byte();
    grow_for(4);
    bytes_.push_back(0x00);
    bytes_.push_back(0x00);
    bytes_.push_back(0x01);
    bytes_.push_back(code);
  }

  // Pre-size the buffer for ~`n` total bytes of output (rounded up to a
  // power-of-two size class). Call before a large encode to skip the
  // doubling ladder entirely.
  void reserve(size_t n) {
    if (n > bytes_.capacity()) bytes_.reserve(std::bit_ceil(n));
  }

  size_t bit_pos() const { return bytes_.size() * 8 + size_t(nbits_); }
  bool byte_aligned() const { return nbits_ == 0; }

  // Hand out the completed buffer. Requires byte alignment.
  std::vector<uint8_t> take() {
    PDW_CHECK(byte_aligned());
    std::vector<uint8_t> out = std::move(bytes_);
    bytes_.clear();
    return out;
  }

  // Borrow completed bytes without taking ownership (partial bits excluded).
  const std::vector<uint8_t>& bytes() const { return bytes_; }

 private:
  static constexpr size_t kMinCapacity = 256;

  void grow_for(size_t n) {
    const size_t need = bytes_.size() + n;
    if (need > bytes_.capacity())
      bytes_.reserve(std::max(kMinCapacity, std::bit_ceil(need)));
  }

  void push_byte(uint8_t b) {
    grow_for(1);
    bytes_.push_back(b);
  }

  std::vector<uint8_t> bytes_;
  uint8_t cur_ = 0;
  int nbits_ = 0;
};

}  // namespace pdw
