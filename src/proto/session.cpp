#include "proto/session.h"

#include <map>
#include <utility>

#include "common/check.h"
#include "common/timing.h"
#include "core/mei.h"
#include "core/subpicture.h"
#include "obs/trace.h"

namespace pdw::proto {

// One decoder node plus the tile decoders it hosts (one per owned tile;
// serial streams never adopt, so in practice exactly the home tile).
struct SerialStream::DecoderHost {
  DecoderNode node;
  std::map<int, std::unique_ptr<core::TileDecoder>> decs;

  DecoderHost(const Topology& topo, int tile, const DecoderNode::Options& o)
      : node(topo, tile, o) {}

  core::TileDecoder& dec(int tile, const wall::TileGeometry& geo,
                         const core::StreamInfo& info) {
    auto& slot = decs[tile];
    if (!slot) slot = std::make_unique<core::TileDecoder>(geo, tile, info);
    return *slot;
  }
};

SerialStream::SerialStream(const wall::TileGeometry& geo, int k,
                           std::span<const uint8_t> es, uint8_t stream_id,
                           obs::MetricsRegistry* metrics)
    : geo_(geo),
      topo_{k, geo.tiles()},
      stream_id_(stream_id),
      root_(es) {
  PDW_CHECK_GE(k, 1);
  obs::MetricsRegistry& mreg = obs::registry_or_global(metrics);
  for (int s = 0; s < k; ++s) {
    splitters_.push_back(std::make_unique<core::MacroblockSplitter>(geo));
    splitters_.back()->set_stream_info(root_.stream_info());
    splitter_nodes_.push_back(
        std::make_unique<SplitterNode>(topo_, s, stream_id));
    splitter_nodes_.back()->set_metrics(metrics);
    sm_.emplace_back();
    sm_.back().resolve(mreg, topo_.splitter(s), int(stream_id));
  }
  DecoderNode::Options dopts;
  dopts.total_pictures = uint32_t(root_.picture_count());
  dopts.stream = stream_id;
  for (int t = 0; t < topo_.tiles; ++t) {
    decoders_.push_back(std::make_unique<DecoderHost>(topo_, t, dopts));
    decoders_.back()->node.set_metrics(metrics);
    dm_.emplace_back();
    dm_.back().resolve(mreg, topo_.decoder(t), int(stream_id));
  }

  std::vector<PictureMeta> metas(size_t(root_.picture_count()));
  for (int i = 0; i < root_.picture_count(); ++i)
    metas[size_t(i)].has_gop_header = root_.span(i).has_gop_header;
  RootNode::Options ropts;
  ropts.stream = stream_id;
  root_node_ =
      std::make_unique<RootNode>(topo_, ropts, std::move(metas), /*now=*/0.0);
  root_node_->set_metrics(metrics);

  acct_.reset(topo_.nodes());
  acct_.per_picture_tiles = topo_.tiles;
}

SerialStream::~SerialStream() = default;

int SerialStream::picture_count() const { return root_.picture_count(); }

void SerialStream::deliver(int src, const Outgoing& o) {
  acct_.record(src, o.dst, o.msg.type, o.msg.body.size());
  std::optional<AnyMsg> msg = decode_any(o.msg.body);
  PDW_CHECK(msg.has_value());  // we packed it ourselves
  dispatch(src, o.dst, std::move(*msg));
}

void SerialStream::deliver_sp(int src, int dst, SpMsg msg) {
  acct_.record(src, dst, MsgType::kSubPicture,
               sp_msg_wire_bytes(msg.subpicture.size(), msg.mei.size()));
  dispatch(src, dst, AnyMsg(std::move(msg)));
}

void SerialStream::deliver_exchange(int src, int dst, ExchangeMsg msg) {
  acct_.record_exchange(src, dst, msg);
  dispatch(src, dst, AnyMsg(std::move(msg)));
}

void SerialStream::dispatch(int src, int dst, AnyMsg msg) {
  // The serial bus is lossless and instantaneous: nothing ever times out,
  // dies, or gets adopted, which the PDW_CHECKs below pin down.
  if (dst == topo_.root()) {
    RootNode::Step step = root_node_->on_message(src, msg, /*now=*/0.0);
    PDW_CHECK(step.deaths.empty());
    for (const Outgoing& o : step.send) deliver(dst, o);
    return;
  }
  if (!topo_.is_decoder(dst)) {
    SplitterNode::Step step =
        splitter_nodes_[size_t(dst - 1)]->on_message(src, std::move(msg), 0.0);
    PDW_CHECK(step.forget.empty());
    for (const Outgoing& o : step.send) deliver(dst, o);
    return;
  }
  DecoderNode::Step step = decoders_[size_t(topo_.tile_of(dst))]->node
                               .on_message(src, std::move(msg), 0.0);
  PDW_CHECK(step.forget.empty());
  PDW_CHECK(!step.adopt_tile.has_value());
  for (const Outgoing& o : step.send) deliver(dst, o);
}

void SerialStream::step(const DisplayFn& on_display, const TraceFn& on_trace) {
  PDW_CHECK(!finished_);
  PDW_CHECK(!done());
  const int tiles = topo_.tiles;
  const uint32_t i = cursor_++;

  PictureTrace tr;
  tr.pic_index = i;
  tr.sp_msg_bytes.assign(size_t(tiles), 0);
  tr.decode_s.assign(size_t(tiles), 0.0);
  tr.serve_s.assign(size_t(tiles), 0.0);
  tr.halo_mbs.assign(size_t(tiles), 0);
  tr.exchange_bytes.reset(tiles);

  const std::span<const uint8_t> span = root_.picture(int(i));
  tr.picture_bytes = span.size();
  tr.has_gop_header = root_.span(int(i)).has_gop_header;

  // Root: the one copy — the ES span is packed straight into a pooled wire
  // body; everything downstream (splitter, sub-pictures) views that block.
  PDW_CHECK(root_node_->may_dispatch());
  Outgoing dispatched;
  {
    PDW_TRACE_SPAN(obs::span::kCopyPic, topo_.root(), i);
    WallTimer t;
    dispatched = root_node_->dispatch(span);
    tr.copy_s = t.seconds();
  }
  deliver(topo_.root(), dispatched);

  // Splitter: dequeue (go-ahead back to the root), split, gate on the
  // ANID-redirected acks of picture i-1, route the sub-pictures.
  const int s = topo_.splitter_for_picture(i);
  tr.splitter = s;
  SplitterNode& sn = *splitter_nodes_[size_t(s)];
  PDW_CHECK(sn.has_picture());
  Outgoing go_ahead;
  PictureMsg pic = sn.pop_picture(&go_ahead);
  PDW_CHECK_EQ(pic.pic_index, i);
  deliver(topo_.splitter(s), go_ahead);

  core::SplitResult result;
  std::vector<SpMsg> sp_msgs(static_cast<size_t>(tiles));
  {
    PDW_TRACE_SPAN(obs::span::kSplitPic, topo_.splitter(s), i);
    WallTimer t;
    result = splitters_[size_t(s)]->split(pic.coded, i);
    if (result.status.ok()) {
      // Serializing SPs and MEIs into wire messages is splitter work.
      for (int d = 0; d < tiles; ++d) {
        SpMsg& m = sp_msgs[size_t(d)];
        m.pic_index = i;
        m.tile = uint16_t(d);
        m.stream = stream_id_;
        m.subpicture = result.subpictures[size_t(d)].serialize_pooled();
        m.mei = std::move(result.mei[size_t(d)]);
        tr.sp_msg_bytes[size_t(d)] =
            sp_msg_wire_bytes(m.subpicture.size(), m.mei.size());
      }
    }
    tr.split_s = t.seconds();
  }
  tr.type = result.info.type;
  tr.split_stats = result.stats;
  if (result.status.ok() && sm_[size_t(s)].pictures_split)
    sm_[size_t(s)].pictures_split->add();
  if (sm_[size_t(s)].split_ns)
    sm_[size_t(s)].split_ns->observe(uint64_t(tr.split_s * 1e9));

  PDW_CHECK(sn.prev_acked(i));
  if (!result.status.ok()) {
    // Undecodable headers: nobody can split or decode the picture. The skip
    // broadcast keeps the one-emission-per-slot display invariant.
    for (const Outgoing& o : sn.skip_picture(i)) deliver(topo_.splitter(s), o);
  } else {
    PDW_TRACE_SPAN(obs::span::kRouteSp, topo_.splitter(s), i);
    for (const SplitterNode::SpRoute& rt : sn.routes(i)) {
      if (sm_[size_t(s)].sp_bytes_sent)
        sm_[size_t(s)].sp_bytes_sent->add(tr.sp_msg_bytes[size_t(rt.tile)]);
      deliver_sp(topo_.splitter(s), rt.dst_node,
                 std::move(sp_msgs[size_t(rt.tile)]));
    }
  }

  // Serve phase: every tile executes its SEND instructions and the halo
  // exchanges flow, all before any decode starts (in the real system the ack
  // protocol guarantees reference data is already decoded).
  for (int d = 0; d < tiles; ++d) {
    DecoderHost& h = *decoders_[size_t(d)];
    const DecoderNode::SpState st = h.node.poll_sp(d, i);
    if (st == DecoderNode::SpState::kSkipped) continue;
    PDW_CHECK(st == DecoderNode::SpState::kReady);  // the bus never lags
    core::TileDecoder& dec = h.dec(d, geo_, root_.stream_info());
    const SpMsg& sp = h.node.sp(d);
    std::map<int, ExchangeMsg> out;  // by destination tile
    PDW_TRACE_SPAN(obs::span::kServeSp, topo_.decoder(d), i);
    WallTimer t;
    for (const core::MeiInstruction& instr : sp.mei) {
      if (instr.op == core::MeiOp::kConceal) {
        dec.stage_conceal(instr);
        continue;
      }
      if (instr.op != core::MeiOp::kSend) continue;
      ExchangeEntry e;
      e.px = dec.extract_for_send(result.info, instr);
      e.instr = instr;
      e.instr.op = core::MeiOp::kRecv;
      e.instr.peer = uint16_t(d);
      ExchangeMsg& m = out[int(instr.peer)];
      if (m.entries.empty()) {
        m.pic_index = i;
        m.src_tile = uint16_t(d);
        m.dst_tile = instr.peer;
        m.stream = stream_id_;
      }
      m.entries.push_back(std::move(e));
    }
    for (auto& [peer, m] : out) {
      const DecoderNode::ExchangeRoute rt = h.node.route_exchange(peer, i);
      PDW_CHECK(rt.kind == DecoderNode::ExchangeRoute::Kind::kRemote);
      tr.exchange_bytes.add(d, peer,
                            m.entries.size() * kExchangeEntryWireBytes);
      if (dm_[size_t(d)].exchange_bytes_sent)
        dm_[size_t(d)].exchange_bytes_sent->add(
            exchange_msg_wire_bytes(m.entries.size()));
      deliver_exchange(topo_.decoder(d), rt.dst_node, std::move(m));
    }
    tr.serve_s[size_t(d)] = t.seconds();
    if (dm_[size_t(d)].serve_ns)
      dm_[size_t(d)].serve_ns->observe(uint64_t(tr.serve_s[size_t(d)] * 1e9));
  }

  // Decode phase.
  for (int d = 0; d < tiles; ++d) {
    DecoderHost& h = *decoders_[size_t(d)];
    core::TileDecoder& dec = h.dec(d, geo_, root_.stream_info());
    const auto display = [&](const mpeg2::TileFrame& tf,
                             const core::TileDisplayInfo& info) {
      if (on_display) on_display(d, tf, info);
    };
    if (h.node.skipped(d)) {
      dec.skip_picture(i, display);
      if (dm_[size_t(d)].pictures_skipped)
        dm_[size_t(d)].pictures_skipped->add();
      continue;
    }
    PDW_CHECK(h.node.have_sp(d));
    PDW_CHECK(h.node.halos_complete(d, i));
    for (const ExchangeMsg& m : h.node.take_exchanges(d, i)) {
      if (dm_[size_t(d)].exchange_bytes_recv)
        dm_[size_t(d)].exchange_bytes_recv->add(
            exchange_msg_wire_bytes(m.entries.size()));
      for (const ExchangeEntry& e : m.entries)
        dec.add_halo_mb(e.instr, e.px, e.tainted);
    }
    PDW_TRACE_SPAN(obs::span::kDecodeSp, topo_.decoder(d), i);
    WallTimer t;
    const core::SubPicture sub =
        core::SubPicture::deserialize(h.node.sp(d).subpicture);
    dec.decode(sub, display);
    tr.decode_s[size_t(d)] = t.seconds();
    tr.halo_mbs[size_t(d)] = int(dec.halo_mbs_last_picture());
    if (dm_[size_t(d)].pictures_decoded) dm_[size_t(d)].pictures_decoded->add();
    if (dm_[size_t(d)].decode_ns)
      dm_[size_t(d)].decode_ns->observe(uint64_t(tr.decode_s[size_t(d)] * 1e9));
    if (dm_[size_t(d)].concealed_mbs)
      dm_[size_t(d)].concealed_mbs->add(
          uint64_t(dec.concealed_mbs_last_picture()));
  }

  // Per-picture epilogue: buffer GC plus the ANID-redirected ack.
  for (int d = 0; d < tiles; ++d) {
    PDW_TRACE_SPAN(obs::span::kAckPic, topo_.decoder(d), i);
    for (const Outgoing& o : decoders_[size_t(d)]->node.finish_picture(i))
      deliver(topo_.decoder(d), o);
  }

  if (on_trace) on_trace(tr);
}

void SerialStream::finish(const DisplayFn& on_display) {
  PDW_CHECK(!finished_);
  finished_ = true;
  for (const Outgoing& o : root_node_->end_of_stream())
    deliver(topo_.root(), o);
  for (int d = 0; d < topo_.tiles; ++d) {
    DecoderHost& h = *decoders_[size_t(d)];
    h.dec(d, geo_, root_.stream_info())
        .flush([&](const mpeg2::TileFrame& tf,
                   const core::TileDisplayInfo& info) {
          if (on_display) on_display(d, tf, info);
        });
    for (const Outgoing& o : h.node.finished())
      deliver(topo_.decoder(d), o);
  }
  PDW_CHECK(root_node_->all_reported());
}

StreamSession::StreamSession(const wall::TileGeometry& geo, int k)
    : geo_(geo), k_(k) {}

StreamSession::~StreamSession() = default;

int StreamSession::add_stream(std::span<const uint8_t> es) {
  PDW_CHECK_LT(int(streams_.size()), 256);  // the wire `stream` tag is a byte
  const int id = int(streams_.size());
  streams_.push_back(std::make_unique<SerialStream>(geo_, k_, es, uint8_t(id)));
  return id;
}

StreamSession::Result StreamSession::run(const DisplayFn& on_display) {
  Result r;
  r.streams = streams();
  r.stream_pictures.assign(streams_.size(), 0);
  WallTimer timer;
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (size_t sidx = 0; sidx < streams_.size(); ++sidx) {
      SerialStream& ss = *streams_[sidx];
      if (ss.done()) continue;
      ss.step(
          [&](int tile, const mpeg2::TileFrame& tf,
              const core::TileDisplayInfo& info) {
            if (on_display) on_display(int(sidx), tile, tf, info);
          },
          /*on_trace=*/nullptr);
      ++r.stream_pictures[sidx];
      ++r.pictures;
      progressed = true;
    }
  }
  for (size_t sidx = 0; sidx < streams_.size(); ++sidx)
    streams_[sidx]->finish([&](int tile, const mpeg2::TileFrame& tf,
                               const core::TileDisplayInfo& info) {
      if (on_display) on_display(int(sidx), tile, tf, info);
    });
  r.wall_seconds = timer.seconds();
  r.aggregate_fps =
      r.wall_seconds > 0 ? double(r.pictures) / r.wall_seconds : 0.0;
  return r;
}

}  // namespace pdw::proto
