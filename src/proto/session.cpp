#include "proto/session.h"

#include <algorithm>
#include <map>
#include <utility>

#include "mem/pool.h"

#include "common/check.h"
#include "common/timing.h"
#include "core/mei.h"
#include "core/subpicture.h"
#include "obs/trace.h"

namespace pdw::proto {

// One decoder node plus the tile decoders it hosts (one per owned tile;
// serial streams never adopt, so in practice exactly the home tile).
struct SerialStream::DecoderHost {
  DecoderNode node;
  std::map<int, std::unique_ptr<core::TileDecoder>> decs;

  DecoderHost(const Topology& topo, int tile, const DecoderNode::Options& o)
      : node(topo, tile, o) {}

  core::TileDecoder& dec(int tile, const wall::TileGeometry& geo,
                         const core::StreamInfo& info) {
    auto& slot = decs[tile];
    if (!slot)
      slot = std::make_unique<core::TileDecoder>(geo, tile, info);
    else if (slot->epoch() != geo.epoch())
      slot->rebase(geo);
    return *slot;
  }
};

SerialStream::SerialStream(const wall::TileGeometry& geo, int k,
                           std::span<const uint8_t> es, uint8_t stream_id,
                           obs::MetricsRegistry* metrics,
                           RootNode::AdaptivePartition adaptive)
    : geo_(geo),
      table_(geo),
      adaptive_(adaptive.enabled),
      topo_{k, geo.tiles()},
      stream_id_(stream_id),
      root_(es) {
  PDW_CHECK_GE(k, 1);
  obs::MetricsRegistry& mreg = obs::registry_or_global(metrics);
  for (int s = 0; s < k; ++s) {
    splitters_.push_back(std::make_unique<core::MacroblockSplitter>(geo));
    splitters_.back()->set_stream_info(root_.stream_info());
    splitter_nodes_.push_back(
        std::make_unique<SplitterNode>(topo_, s, stream_id));
    splitter_nodes_.back()->set_metrics(metrics);
    sm_.emplace_back();
    sm_.back().resolve(mreg, topo_.splitter(s), int(stream_id));
  }
  DecoderNode::Options dopts;
  dopts.total_pictures = uint32_t(root_.picture_count());
  dopts.stream = stream_id;
  for (int t = 0; t < topo_.tiles; ++t) {
    decoders_.push_back(std::make_unique<DecoderHost>(topo_, t, dopts));
    decoders_.back()->node.set_metrics(metrics);
    dm_.emplace_back();
    dm_.back().resolve(mreg, topo_.decoder(t), int(stream_id));
  }

  std::vector<PictureMeta> metas(size_t(root_.picture_count()));
  for (int i = 0; i < root_.picture_count(); ++i)
    metas[size_t(i)].has_gop_header = root_.span(i).has_gop_header;
  RootNode::Options ropts;
  ropts.stream = stream_id;
  ropts.adaptive = adaptive;
  ropts.adaptive.geo = &geo_;
  root_node_ =
      std::make_unique<RootNode>(topo_, ropts, std::move(metas), /*now=*/0.0);
  root_node_->set_metrics(metrics);

  acct_.reset(topo_.nodes());
  acct_.per_picture_tiles = topo_.tiles;
}

SerialStream::~SerialStream() = default;

int SerialStream::picture_count() const { return root_.picture_count(); }

mpeg2::PicType SerialStream::next_picture_type() const {
  PDW_CHECK(!done());
  return root_.picture_type(int(cursor_));
}

bool SerialStream::next_gop_start() const {
  PDW_CHECK(!done());
  return root_.span(int(cursor_)).has_gop_header;
}

void SerialStream::deliver(int src, const Outgoing& o) {
  acct_.record(src, o.dst, o.msg.type, o.msg.body.size());
  std::optional<AnyMsg> msg = decode_any(o.msg.body);
  PDW_CHECK(msg.has_value());  // we packed it ourselves
  dispatch(src, o.dst, std::move(*msg));
}

void SerialStream::deliver_sp(int src, int dst, SpMsg msg) {
  acct_.record(src, dst, MsgType::kSubPicture,
               sp_msg_wire_bytes(msg.subpicture.size(), msg.mei.size()));
  dispatch(src, dst, AnyMsg(std::move(msg)));
}

void SerialStream::deliver_exchange(int src, int dst, ExchangeMsg msg) {
  acct_.record_exchange(src, dst, msg);
  dispatch(src, dst, AnyMsg(std::move(msg)));
}

void SerialStream::dispatch(int src, int dst, AnyMsg msg) {
  // The serial bus is lossless and instantaneous: nothing ever times out,
  // dies, or gets adopted, which the PDW_CHECKs below pin down.
  if (dst == topo_.root()) {
    RootNode::Step step = root_node_->on_message(src, msg, /*now=*/0.0);
    PDW_CHECK(step.deaths.empty());
    for (const Outgoing& o : step.send) deliver(dst, o);
    return;
  }
  if (!topo_.is_decoder(dst)) {
    SplitterNode::Step step =
        splitter_nodes_[size_t(dst - 1)]->on_message(src, std::move(msg), 0.0);
    PDW_CHECK(step.forget.empty());
    if (step.partition) install_partition(*step.partition);
    for (const Outgoing& o : step.send) deliver(dst, o);
    return;
  }
  DecoderNode::Step step = decoders_[size_t(topo_.tile_of(dst))]->node
                               .on_message(src, std::move(msg), 0.0);
  PDW_CHECK(step.forget.empty());
  PDW_CHECK(!step.adopt_tile.has_value());
  if (step.partition) install_partition(*step.partition);
  for (const Outgoing& o : step.send) deliver(dst, o);
}

void SerialStream::install_partition(const PartitionUpdateMsg& pu) {
  // The root broadcasts one update to every splitter and decoder; the
  // serial engine hosts them all over one shared table, so only the first
  // arrival installs.
  table_.install_wire(pu.epoch, pu.apply_from_pic, pu.col_cuts_mb,
                      pu.row_cuts_mb);
}

void SerialStream::step(const DisplayFn& on_display, const TraceFn& on_trace,
                        bool shed) {
  PDW_CHECK(!finished_);
  PDW_CHECK(!done());
  const int tiles = topo_.tiles;
  const uint32_t i = cursor_++;

  PictureTrace tr;
  tr.pic_index = i;
  tr.sp_msg_bytes.assign(size_t(tiles), 0);
  tr.decode_s.assign(size_t(tiles), 0.0);
  tr.serve_s.assign(size_t(tiles), 0.0);
  tr.halo_mbs.assign(size_t(tiles), 0);
  tr.exchange_bytes.reset(tiles);

  const std::span<const uint8_t> span = root_.picture(int(i));
  tr.picture_bytes = span.size();
  tr.has_gop_header = root_.span(int(i)).has_gop_header;

  // Root: the one copy — the ES span is packed straight into a pooled wire
  // body; everything downstream (splitter, sub-pictures) views that block.
  PDW_CHECK(root_node_->may_dispatch());
  std::vector<Outgoing> dispatched;
  {
    PDW_TRACE_SPAN(obs::span::kCopyPic, topo_.root(), i);
    WallTimer t;
    dispatched = root_node_->dispatch(span);
    tr.copy_s = t.seconds();
  }
  // A rebalance decided at this picture rides ahead of it: the partition
  // update lands (and installs into the shared table) before the picture.
  for (const Outgoing& o : dispatched) deliver(topo_.root(), o);

  // Splitter: dequeue (go-ahead back to the root), split, gate on the
  // ANID-redirected acks of picture i-1, route the sub-pictures.
  const int s = topo_.splitter_for_picture(i);
  tr.splitter = s;
  SplitterNode& sn = *splitter_nodes_[size_t(s)];
  PDW_CHECK(sn.has_picture());
  Outgoing go_ahead;
  PictureMsg pic = sn.pop_picture(&go_ahead);
  PDW_CHECK_EQ(pic.pic_index, i);
  deliver(topo_.splitter(s), go_ahead);
  tr.epoch = pic.epoch;
  PDW_CHECK(table_.has_epoch(pic.epoch));
  const wall::TileGeometry& egeo = table_.geometry(pic.epoch);

  core::SplitResult result;
  std::vector<SpMsg> sp_msgs(static_cast<size_t>(tiles));
  if (shed) {
    // QoS shed: the picture costs no split work at all — the start-code
    // scan's peeked type stands in for the parse, and the failure status
    // routes the step down the same skip-broadcast path an undecodable
    // picture takes.
    ++pictures_shed_;
    result.status = DecodeStatus::error(DecodeErr::kUnsupported,
                                        DecodeSeverity::kPicture, 0);
    result.info.type = root_.picture_type(int(i));
    tr.type = result.info.type;
    tr.split_stats = result.stats;
  } else {
    {
      PDW_TRACE_SPAN(obs::span::kSplitPic, topo_.splitter(s), i);
      WallTimer t;
      result = splitters_[size_t(s)]->split(pic.coded, i, egeo);
      if (result.status.ok()) {
        // Serializing SPs and MEIs into wire messages is splitter work.
        for (int d = 0; d < tiles; ++d) {
          SpMsg& m = sp_msgs[size_t(d)];
          m.pic_index = i;
          m.tile = uint16_t(d);
          m.stream = stream_id_;
          m.epoch = pic.epoch;
          m.subpicture = result.subpictures[size_t(d)].serialize_pooled();
          m.mei = std::move(result.mei[size_t(d)]);
          tr.sp_msg_bytes[size_t(d)] =
              sp_msg_wire_bytes(m.subpicture.size(), m.mei.size());
        }
      }
      tr.split_s = t.seconds();
    }
    tr.type = result.info.type;
    tr.split_stats = result.stats;
    if (result.status.ok() && sm_[size_t(s)].pictures_split)
      sm_[size_t(s)].pictures_split->add();
    if (sm_[size_t(s)].split_ns)
      sm_[size_t(s)].split_ns->observe(uint64_t(tr.split_s * 1e9));
  }

  // Cost report for the planner — one per picture, empty vectors when the
  // picture was shed or undecodable, so the root's completeness count holds.
  if (adaptive_) {
    CostReportMsg cr;
    cr.pic_index = i;
    cr.stream = stream_id_;
    cr.col_cost = result.stats.cost_col;
    cr.row_cost = result.stats.cost_row;
    deliver(topo_.splitter(s), Outgoing{topo_.root(), true, pack(cr)});
  }

  PDW_CHECK(sn.prev_acked(i));
  if (!result.status.ok()) {
    // Undecodable headers: nobody can split or decode the picture. The skip
    // broadcast keeps the one-emission-per-slot display invariant.
    for (const Outgoing& o : sn.skip_picture(i)) deliver(topo_.splitter(s), o);
  } else {
    PDW_TRACE_SPAN(obs::span::kRouteSp, topo_.splitter(s), i);
    for (const SplitterNode::SpRoute& rt : sn.routes(i)) {
      if (sm_[size_t(s)].sp_bytes_sent)
        sm_[size_t(s)].sp_bytes_sent->add(tr.sp_msg_bytes[size_t(rt.tile)]);
      deliver_sp(topo_.splitter(s), rt.dst_node,
                 std::move(sp_msgs[size_t(rt.tile)]));
    }
  }

  // Serve phase: every tile executes its SEND instructions and the halo
  // exchanges flow, all before any decode starts (in the real system the ack
  // protocol guarantees reference data is already decoded).
  for (int d = 0; d < tiles; ++d) {
    DecoderHost& h = *decoders_[size_t(d)];
    const DecoderNode::SpState st = h.node.poll_sp(d, i);
    if (st == DecoderNode::SpState::kSkipped) continue;
    PDW_CHECK(st == DecoderNode::SpState::kReady);  // the bus never lags
    core::TileDecoder& dec = h.dec(d, egeo, root_.stream_info());
    const SpMsg& sp = h.node.sp(d);
    std::map<int, ExchangeMsg> out;  // by destination tile
    PDW_TRACE_SPAN(obs::span::kServeSp, topo_.decoder(d), i);
    WallTimer t;
    for (const core::MeiInstruction& instr : sp.mei) {
      if (instr.op == core::MeiOp::kConceal) {
        dec.stage_conceal(instr);
        continue;
      }
      if (instr.op != core::MeiOp::kSend) continue;
      ExchangeEntry e;
      e.px = dec.extract_for_send(result.info, instr);
      e.instr = instr;
      e.instr.op = core::MeiOp::kRecv;
      e.instr.peer = uint16_t(d);
      ExchangeMsg& m = out[int(instr.peer)];
      if (m.entries.empty()) {
        m.pic_index = i;
        m.src_tile = uint16_t(d);
        m.dst_tile = instr.peer;
        m.stream = stream_id_;
      }
      m.entries.push_back(std::move(e));
    }
    for (auto& [peer, m] : out) {
      const DecoderNode::ExchangeRoute rt = h.node.route_exchange(peer, i);
      PDW_CHECK(rt.kind == DecoderNode::ExchangeRoute::Kind::kRemote);
      tr.exchange_bytes.add(d, peer,
                            m.entries.size() * kExchangeEntryWireBytes);
      if (dm_[size_t(d)].exchange_bytes_sent)
        dm_[size_t(d)].exchange_bytes_sent->add(
            exchange_msg_wire_bytes(m.entries.size()));
      deliver_exchange(topo_.decoder(d), rt.dst_node, std::move(m));
    }
    tr.serve_s[size_t(d)] = t.seconds();
    if (dm_[size_t(d)].serve_ns)
      dm_[size_t(d)].serve_ns->observe(uint64_t(tr.serve_s[size_t(d)] * 1e9));
  }

  // Decode phase.
  for (int d = 0; d < tiles; ++d) {
    DecoderHost& h = *decoders_[size_t(d)];
    core::TileDecoder& dec = h.dec(d, egeo, root_.stream_info());
    const auto display = [&](const mpeg2::TileFrame& tf,
                             const core::TileDisplayInfo& info) {
      if (on_display) on_display(d, tf, info);
    };
    if (h.node.skipped(d)) {
      dec.skip_picture(i, display);
      if (dm_[size_t(d)].pictures_skipped)
        dm_[size_t(d)].pictures_skipped->add();
      continue;
    }
    PDW_CHECK(h.node.have_sp(d));
    PDW_CHECK(h.node.halos_complete(d, i));
    for (const ExchangeMsg& m : h.node.take_exchanges(d, i)) {
      if (dm_[size_t(d)].exchange_bytes_recv)
        dm_[size_t(d)].exchange_bytes_recv->add(
            exchange_msg_wire_bytes(m.entries.size()));
      for (const ExchangeEntry& e : m.entries)
        dec.add_halo_mb(e.instr, e.px, e.tainted);
    }
    PDW_TRACE_SPAN(obs::span::kDecodeSp, topo_.decoder(d), i);
    WallTimer t;
    const core::SubPicture sub =
        core::SubPicture::deserialize(h.node.sp(d).subpicture);
    dec.decode(sub, display);
    tr.decode_s[size_t(d)] = t.seconds();
    tr.halo_mbs[size_t(d)] = int(dec.halo_mbs_last_picture());
    if (dm_[size_t(d)].pictures_decoded) dm_[size_t(d)].pictures_decoded->add();
    if (dm_[size_t(d)].decode_ns)
      dm_[size_t(d)].decode_ns->observe(uint64_t(tr.decode_s[size_t(d)] * 1e9));
    if (dm_[size_t(d)].concealed_mbs)
      dm_[size_t(d)].concealed_mbs->add(
          uint64_t(dec.concealed_mbs_last_picture()));
  }

  // Per-picture epilogue: buffer GC plus the ANID-redirected ack.
  for (int d = 0; d < tiles; ++d) {
    PDW_TRACE_SPAN(obs::span::kAckPic, topo_.decoder(d), i);
    for (const Outgoing& o : decoders_[size_t(d)]->node.finish_picture(i))
      deliver(topo_.decoder(d), o);
  }

  if (on_trace) on_trace(tr);
}

void SerialStream::finish(const DisplayFn& on_display) {
  PDW_CHECK(!finished_);
  finished_ = true;
  for (const Outgoing& o : root_node_->end_of_stream())
    deliver(topo_.root(), o);
  for (int d = 0; d < topo_.tiles; ++d) {
    DecoderHost& h = *decoders_[size_t(d)];
    h.dec(d, table_.geometry(table_.latest_epoch()), root_.stream_info())
        .flush([&](const mpeg2::TileFrame& tf,
                   const core::TileDisplayInfo& info) {
          if (on_display) on_display(d, tf, info);
        });
    for (const Outgoing& o : h.node.finished())
      deliver(topo_.decoder(d), o);
  }
  PDW_CHECK(root_node_->all_reported());
}

StreamSession::StreamSession(const wall::TileGeometry& geo, int k)
    : geo_(geo), k_(k) {}

StreamSession::~StreamSession() = default;

int StreamSession::add_stream(std::span<const uint8_t> es) {
  const int id = streams_.empty() ? 0 : streams_.rbegin()->first + 1;
  PDW_CHECK_LT(id, 256);  // the wire `stream` tag is a byte
  Slot& slot = streams_[id];
  slot.ss = std::make_unique<SerialStream>(geo_, k_, es, uint8_t(id));
  return id;
}

void StreamSession::enable_admission(AdmissionController::Config cfg) {
  PDW_CHECK(streams_.empty());  // gate before anything attaches
  adm_ = std::make_unique<AdmissionController>(cfg);
}

StreamReply StreamSession::attach_stream(int stream_id,
                                         std::span<const uint8_t> es,
                                         const TenantSpec& spec) {
  PDW_CHECK(adm_ != nullptr);
  StreamReply rep;
  rep.verdict = AdmissionVerdict::kReject;
  rep.level = DegradeLevel::kFreeze;
  if (stream_id < 0 || stream_id > 255) return rep;
  rep.stream = uint8_t(stream_id);
  if (streams_.count(stream_id)) return rep;  // duplicate attach
  rep = adm_->offer(to_request(spec, uint8_t(stream_id)));
  if (rep.verdict == AdmissionVerdict::kReject) return rep;
  Slot& slot = streams_[stream_id];
  slot.ss = std::make_unique<SerialStream>(geo_, k_, es, uint8_t(stream_id));
  slot.spec = spec;
  slot.gated = true;
  return rep;
}

StreamSession::Result StreamSession::run(const DisplayFn& on_display) {
  Result r;
  r.streams = streams();
  const int max_id = streams_.empty() ? -1 : streams_.rbegin()->first;
  r.stream_pictures.assign(size_t(max_id + 1), 0);
  WallTimer timer;
  // Pool-pressure baseline: only fallbacks that happen *during* this run
  // count as backpressure (the process-global pool carries history).
  uint64_t pool_fallbacks =
      adm_ ? mem::BufferPool::wire().pressure().budget_fallbacks : 0;
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (auto& [id, slot] : streams_) {
      SerialStream& ss = *slot.ss;
      if (ss.done()) continue;
      bool shed = false;
      if (adm_ && slot.gated)
        shed = adm_->should_shed(uint8_t(id), ss.next_picture_type(),
                                 ss.next_gop_start());
      WallTimer step_timer;
      ss.step(
          [&, id = id](int tile, const mpeg2::TileFrame& tf,
                       const core::TileDisplayInfo& info) {
            if (on_display) on_display(id, tile, tf, info);
          },
          /*on_trace=*/nullptr, shed);
      if (adm_ && slot.gated && slot.spec.fps > 0)
        adm_->deadline_check(
            uint8_t(id), step_timer.seconds() > 1.0 / double(slot.spec.fps));
      if (shed) ++r.shed;
      ++r.stream_pictures[size_t(id)];
      ++r.pictures;
      progressed = true;
      // A tenant's budget frees the moment its stream ends — mid-GOP or
      // not — so later rounds admit/revert against the true load.
      if (ss.done() && adm_ && slot.gated) adm_->release(uint8_t(id));
    }
    if (adm_ && progressed) {
      // One backpressure reading per round (bounding ladder movement to one
      // step per round). Base signal: committed load against *raw* capacity,
      // so a merely-full wall sits in the dead band. A wire-pool budget
      // fallback during the round means memory demand outran the budget —
      // that forces the signal to the degrade threshold.
      double signal = adm_->committed_load() / adm_->config().capacity.mb_per_s;
      const mem::PoolPressure bp = mem::BufferPool::wire().pressure();
      if (bp.budget_fallbacks > pool_fallbacks)
        signal = std::max(signal, adm_->config().degrade_at);
      pool_fallbacks = bp.budget_fallbacks;
      adm_->on_pressure(signal);
    }
  }
  for (auto& [id, slot] : streams_)
    slot.ss->finish([&, id = id](int tile, const mpeg2::TileFrame& tf,
                                 const core::TileDisplayInfo& info) {
      if (on_display) on_display(id, tile, tf, info);
    });
  r.wall_seconds = timer.seconds();
  r.aggregate_fps =
      r.wall_seconds > 0 ? double(r.pictures) / r.wall_seconds : 0.0;
  return r;
}

}  // namespace pdw::proto
