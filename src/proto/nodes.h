// Transport-agnostic node state machines for the Table-3 display-wall
// protocol — the single home of every protocol decision.
//
// Three machines mirror the paper's three node roles:
//   * RootNode     — picture dispatch order, round-robin splitter choice and
//                    NSID stamping, one-picture-ahead go-ahead gating,
//                    heartbeat bookkeeping, death detection, resynchronization
//                    picture selection and adopt-vs-degrade rerouting;
//   * SplitterNode — picture queue, go-ahead emission, ANID ack-redirection
//                    gating (wait for every live decoder's ack of the
//                    previous picture), tile -> node sub-picture routing
//                    through deaths and adoptions, skip broadcast for
//                    undeliverable or undecodable pictures;
//   * DecoderNode  — sub-picture / exchange / skip buffering, MEI RECV
//                    expectation tracking with serviceability (a dead,
//                    unadopted or skipped peer sends nothing), exchange
//                    routing (drop / local co-hosted delivery / remote),
//                    tile adoption, heartbeat emission and the ANID-
//                    redirected per-picture ack.
//
// The machines are event-driven and pure with respect to transport and
// compute: on_message(src, msg, now) consumes one typed wire message and
// returns the messages to transmit plus any host commands; compute (picture
// splitting, pixel extraction, tile decoding) stays in the hosting engine,
// which queries the machine for every decision. The same three machines run
// under the threaded pipeline's per-node message pumps, the lockstep
// engine's serial scheduler and the discrete-event simulator's modeled
// cluster — which is what keeps the three engines protocol-identical by
// construction.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "common/traffic_matrix.h"
#include "obs/metrics.h"
#include "proto/wire.h"
#include "wall/partition.h"
#include "wall/planner.h"

namespace pdw::proto {

// Node numbering shared by every engine: node 0 is the root (console PC),
// nodes 1..k the second-level splitters, nodes k+1..k+tiles the tile
// decoders. Also the home of the Table-3 ordering arithmetic:
//   * picture i is split by splitter i % k (round-robin);
//   * the NSID stamped on picture i names splitter (i + 1) % k, the owner of
//     the next picture;
//   * a decoder acks picture i not to its sender but to the NSID splitter
//     (ANID redirection), which therefore cannot dispatch picture i + 1
//     until every live decoder consumed picture i.
struct Topology {
  int k = 1;      // second-level splitters
  int tiles = 1;  // tile decoders

  int nodes() const { return 1 + k + tiles; }
  int root() const { return 0; }
  int splitter(int s) const { return 1 + s; }
  int decoder(int t) const { return 1 + k + t; }
  bool is_decoder(int node) const { return node > k; }
  int tile_of(int node) const { return node - 1 - k; }

  int splitter_for_picture(uint32_t pic) const {
    return int(pic % uint32_t(k));
  }
  uint16_t nsid(uint32_t pic) const {
    return uint16_t((pic + 1) % uint32_t(k));
  }
  // Where a decoder's ack of picture `pic` goes (the ANID target).
  int ack_target(uint32_t pic) const {
    return splitter(int((pic + 1) % uint32_t(k)));
  }
};

// What to do with a dead tile: reroute its sub-pictures to a surviving
// decoder (kAdopt) or freeze it for the rest of the run (kDegrade).
enum class RecoveryPolicy { kAdopt, kDegrade };

// A message the state machine wants transmitted. The host maps this onto
// its transport (ReliableEndpoint, serial bus, or modeled link).
struct Outgoing {
  int dst = -1;
  bool reliable = true;  // false: fire-and-forget (heartbeats)
  Packed msg;
};

// A reliable send the transport gave up on; fed back into the state machine
// so it can arrange recovery (skip broadcasts).
struct SendFailure {
  int dst = -1;
  MsgType type = MsgType::kHeartbeat;
  uint32_t seq = 0;
  uint16_t aux = 0;
};

// Protocol-level traffic accounting, recorded once per emitted protocol
// message (retransmits are a transport concern and do not appear here).
// Heartbeats are kept out of `traffic`/`counts`: their cadence is wall-clock
// driven, so their count is the one thing that legitimately differs between
// a threaded run and a serial one — and everything else a fault-free run
// emits is deterministic, which is what test_parallel_equivalence asserts
// across engines. They are NOT dropped, though: control-plane overhead is
// tallied separately in `control` / `control_msgs` so it stays visible.
struct WireAccounting {
  TrafficMatrix traffic;  // body + envelope bytes, node x node
  std::map<MsgType, uint64_t> counts;

  // Control-plane (heartbeat) bytes, node x node. Deliberately separate from
  // `traffic` so engine-equivalence comparisons stay exact.
  TrafficMatrix control;
  uint64_t control_msgs = 0;

  // > 0: also keep a per-picture tile x tile matrix of exchange body bytes
  // (what PictureTrace::exchange_bytes records on the lockstep side).
  int per_picture_tiles = 0;
  std::map<uint32_t, TrafficMatrix> exchange_by_picture;

  void reset(int nodes) {
    traffic.reset(nodes);
    counts.clear();
    control.reset(nodes);
    control_msgs = 0;
    exchange_by_picture.clear();
  }

  void record(int src, int dst, MsgType type, size_t body_bytes) {
    if (type == MsgType::kHeartbeat) {
      if (!control.empty())
        control.add(src, dst, body_bytes + Packed::kEnvelopeBytes);
      ++control_msgs;
      return;
    }
    traffic.add(src, dst, body_bytes + Packed::kEnvelopeBytes);
    ++counts[type];
  }

  void record_exchange(int src_node, int dst_node, const ExchangeMsg& m) {
    record(src_node, dst_node, MsgType::kExchange,
           exchange_msg_wire_bytes(m.entries.size()));
    if (per_picture_tiles <= 0) return;
    TrafficMatrix& tm = exchange_by_picture[m.pic_index];
    if (tm.empty()) tm.reset(per_picture_tiles);
    tm.add(int(m.src_tile), int(m.dst_tile),
           m.entries.size() * kExchangeEntryWireBytes);
  }
};

// --- Shared policy helpers (also used by the DES) --------------------------

// Per-picture metadata the protocol needs from the stream: whether the
// picture starts a (closed) GOP — i.e. can serve as a resynchronization
// point after a node death.
struct PictureMeta {
  bool has_gop_header = false;
};

// Resynchronization point after a death: the first closed-GOP picture at or
// after `cursor` (the first picture not yet dispatched). Everything from
// that picture's display slot on is bit-exact again. Returns
// pictures.size() when no such picture remains.
uint32_t pick_resync_picture(const std::vector<PictureMeta>& pictures,
                             int cursor);

// Adopter for a dead tile: the first tile whose serving node is neither the
// dead node nor itself dead. -1 when nobody can adopt (or policy forbids).
int pick_adopter_tile(const std::vector<int>& tile_owner_node,
                      const std::set<int>& dead_nodes, int dead_node,
                      RecoveryPolicy policy);

// --- RootNode --------------------------------------------------------------

class RootNode {
 public:
  // Adaptive tile partitioning (ROADMAP item 2). When enabled, splitters
  // report per-axis cost profiles after every split; at each closed-GOP I
  // picture the root stalls dispatch until every report for the preceding
  // pictures arrived, runs the balanced-cut planner over the last window,
  // and — when hysteresis approves — broadcasts a PartitionUpdate before
  // dispatching the first picture of the new epoch. The decision is a pure
  // function of the bitstream, so every engine rebalances identically.
  struct AdaptivePartition {
    bool enabled = false;
    double gain_threshold = 0.05;
    int min_band_mbs = 2;
    // Base wall geometry (epoch 0). Required when enabled.
    const wall::TileGeometry* geo = nullptr;
  };

  struct Options {
    double heartbeat_timeout_s = 1e9;
    RecoveryPolicy recovery = RecoveryPolicy::kAdopt;
    uint8_t stream = 0;
    AdaptivePartition adaptive;
  };

  // One tile death decided by the health monitor. The host must fence the
  // node off its transport (kill + forget) and may log the recovery.
  struct Death {
    int node = -1;  // the node declared dead (fence it)
    int dead_tile = -1;
    int adopter_tile = -1;  // -1: degraded mode
    uint32_t resync_pic = 0;
  };

  struct Step {
    std::vector<Outgoing> send;
    std::vector<Death> deaths;
  };

  RootNode(const Topology& topo, const Options& opts,
           std::vector<PictureMeta> pictures, double now);

  // Resolve and cache this node's metric instruments in `reg` (nullptr: the
  // process-global registry). Optional — machines without it skip telemetry.
  void set_metrics(obs::MetricsRegistry* reg);

  Step on_message(int src, const AnyMsg& msg, double now);
  // Health-monitor sweep; call at every pump.
  Step on_tick(double now);

  // A transport-level hard peer error against `node` (the socket backend's
  // ICMP port-unreachable — the network telling us the process is gone).
  // After kTransportSuspectThreshold reports a live decoder node is
  // declared dead immediately, feeding the same adopt-or-freeze recovery
  // path as a heartbeat timeout but without waiting the timeout out.
  // Non-decoder nodes are ignored (splitter recovery is not modeled).
  Step on_transport_suspect(int node, double now);
  static constexpr int kTransportSuspectThreshold = 3;

  // One-picture-ahead gating: picture `cursor()` may be dispatched once the
  // go-ahead for every earlier picture arrived. With adaptive partitioning,
  // a closed-GOP boundary additionally waits for every outstanding cost
  // report, so the planner always decides on the complete previous window.
  bool may_dispatch() const;
  uint32_t cursor() const { return cursor_; }
  bool stream_done() const { return cursor_ >= total_pictures(); }
  // Dispatch the picture at cursor() (the host provides its coded bytes;
  // the span is packed into a pooled body and may die after the call);
  // advances the cursor. With adaptive partitioning a rebalance decided at
  // this picture prepends a PartitionUpdate broadcast (all splitters, all
  // live decoders) — those sends MUST reach the transport before the
  // picture itself.
  std::vector<Outgoing> dispatch(std::span<const uint8_t> coded);

  // The partition table (epoch 0 + every installed rebalance). Null unless
  // adaptive partitioning is enabled.
  const wall::PartitionTable* partitions() const { return table_.get(); }
  // Partition epochs stop moving once any death occurred (recovery resync
  // and rebalance interleaving is not worth the state space).
  bool partition_frozen() const { return partition_frozen_; }
  // End-of-stream notices for every splitter.
  std::vector<Outgoing> end_of_stream() const;

  // Every decoder node is accounted for (finished or declared dead) — the
  // teardown precondition: exiting earlier would strand a decoder
  // retransmitting its finished notice at a mailbox nobody reads.
  bool all_reported() const;

 private:
  uint32_t total_pictures() const { return uint32_t(pictures_.size()); }
  void declare_dead(int node, Step* step);
  // Mirror the current partition (epoch + cut lines) into gauges so live
  // dashboards — local wall_top and the remote collector — can render it.
  void publish_partition_gauges();
  // True when the picture at cursor() is a closed-GOP boundary at which the
  // planner may still move the partition.
  bool rebalance_pending() const;

  Topology topo_;
  Options opts_;
  std::vector<PictureMeta> pictures_;
  std::vector<double> last_hb_;   // by tile
  std::map<int, int> suspects_;   // node -> transport hard-error count
  std::set<int> dead_nodes_, finished_nodes_;
  std::vector<int> owner_;        // tile -> node now serving it
  int64_t acks_seen_ = 0;         // go-aheads from splitters
  uint32_t cursor_ = 0;           // next picture index to dispatch

  // Adaptive partitioning state (table_ null when disabled).
  std::unique_ptr<wall::PartitionTable> table_;
  wall::CostProfile window_cost_;  // accumulated since the last GOP decision
  int64_t cost_reports_seen_ = 0;  // one per dispatched picture, eventually
  bool partition_frozen_ = false;

  obs::Counter* m_dispatched_ = nullptr;
  obs::Counter* m_go_aheads_ = nullptr;
  obs::Counter* m_hb_recv_ = nullptr;
  obs::Counter* m_deaths_ = nullptr;
  obs::MetricsRegistry* metrics_reg_ = nullptr;  // for partition gauges
};

// --- SplitterNode ----------------------------------------------------------

class SplitterNode {
 public:
  struct Step {
    std::vector<Outgoing> send;
    std::vector<int> forget;  // dead nodes the transport should drop
    // A partition rebalance announced by the root. The host must install
    // the epoch's geometry before splitting any picture stamped with it
    // (the root broadcasts the update ahead of such pictures, and links
    // deliver in order, so it is already here when they arrive).
    std::optional<PartitionUpdateMsg> partition;
  };

  SplitterNode(const Topology& topo, int index, uint8_t stream = 0);

  // See RootNode::set_metrics.
  void set_metrics(obs::MetricsRegistry* reg);

  Step on_message(int src, AnyMsg msg, double now);
  // A reliable send was abandoned: a lost sub-picture becomes a skip
  // broadcast to every live decoder; a lost skip is resent to its target
  // (it is tiny and must eventually land, or the pipeline deadlocks — if
  // the node is truly dead the death notice ends the retrying).
  Step on_send_failure(const SendFailure& f);

  bool has_picture() const { return !pictures_.empty(); }
  // Pictures queued and not yet popped (the queue_depth gauge).
  int queue_depth() const { return int(pictures_.size()); }
  bool ended() const { return ended_; }
  // Dequeue the next picture; `go_ahead` is the ack that releases the root
  // to send one more.
  PictureMsg pop_picture(Outgoing* go_ahead);

  // ANID gating: true once every live decoder acked picture `pic` - 1 (the
  // acks were redirected here by the NSID on picture `pic` - 1). Collects
  // consumed ack state when satisfied.
  bool prev_acked(uint32_t pic);

  // Sub-picture routing for `pic` through deaths and adoptions: one entry
  // per tile that somebody serves at this picture.
  struct SpRoute {
    int tile = -1;
    int dst_node = -1;
  };
  std::vector<SpRoute> routes(uint32_t pic) const;

  // The picture is undecodable (damaged headers): nobody can split or
  // decode it. Skip notices for every tile to every live decoder.
  std::vector<Outgoing> skip_picture(uint32_t pic) const;

 private:
  Topology topo_;
  int index_ = 0;
  uint8_t stream_ = 0;
  std::vector<PictureMsg> pictures_;  // FIFO (front = next)
  std::map<uint32_t, std::set<int>> acked_;  // picture -> decoder nodes
  std::set<int> live_;
  struct Route {
    int node = -1;
    uint32_t valid_from = 0;  // only send pictures >= this index
  };
  std::vector<Route> route_;  // by tile
  bool ended_ = false;

  obs::Counter* m_acks_recv_ = nullptr;
  obs::Counter* m_skips_ = nullptr;
};

// --- DecoderNode -----------------------------------------------------------

class DecoderNode {
 public:
  struct Options {
    double heartbeat_interval_s = 0.02;
    uint32_t total_pictures = 0;
    uint8_t stream = 0;
  };

  struct Step {
    std::vector<Outgoing> send;
    std::vector<int> forget;        // dead nodes the transport should drop
    std::optional<int> adopt_tile;  // host: create decode state, add credits
    // A partition rebalance announced by the root; the host installs the
    // epoch's geometry into its table (see latest_epoch()).
    std::optional<PartitionUpdateMsg> partition;
  };

  DecoderNode(const Topology& topo, int home_tile, const Options& opts);

  // See RootNode::set_metrics.
  void set_metrics(obs::MetricsRegistry* reg);

  Step on_message(int src, AnyMsg msg, double now);
  // Heartbeat emission when due; call at every pump.
  std::vector<Outgoing> on_tick(double now);

  // Tiles this node serves (grows on adoption; order is decode order).
  struct OwnedTile {
    int tile = -1;
    uint32_t active_from = 0;  // first picture this node decodes for it
  };
  const std::vector<OwnedTile>& owned() const { return owned_; }
  bool tile_active(const OwnedTile& ot, uint32_t pic) const {
    return ot.active_from <= pic;
  }

  // Phase-1 entry for (tile, pic): resolve the sub-picture. kReady moves the
  // typed message into the tile's scratch (read it back via sp(tile)) and
  // registers the MEI RECV expectations, minus tiles co-hosted here.
  // A sub-picture stamped with an epoch this node has not yet learned from
  // the root stays kPending: sub-pictures travel splitter -> decoder while
  // PartitionUpdates travel root -> decoder, so the two can cross.
  enum class SpState { kPending, kReady, kSkipped };
  SpState poll_sp(int tile, uint32_t pic);
  // Highest partition epoch announced by the root so far (0 on a static
  // wall). Every sub-picture handed out by poll_sp satisfies
  // sp.epoch <= latest_epoch().
  uint32_t latest_epoch() const { return latest_epoch_; }
  // Sub-pictures buffered and not yet consumed (the queue_depth gauge).
  int pending_sps() const { return int(sps_.size()); }
  const SpMsg& sp(int tile) const;
  bool have_sp(int tile) const;
  bool skipped(int tile) const;

  // Where the halo data this node extracted for `dst_tile` must go. kDrop:
  // nobody serves that picture (the tile is dead and pic precedes its
  // resync point). kLocal: a tile co-hosted on this node.
  struct ExchangeRoute {
    enum class Kind { kDrop, kLocal, kRemote } kind = Kind::kDrop;
    int dst_node = -1;
  };
  ExchangeRoute route_exchange(int dst_tile, uint32_t pic) const;

  // Phase-2 gate: every RECV expectation of (tile, pic) is either buffered
  // or unserviceable (its source tile is skipped this picture, or dead with
  // no adopter serving pic yet).
  bool halos_complete(int tile, uint32_t pic) const;
  std::vector<ExchangeMsg> take_exchanges(int tile, uint32_t pic);

  // Per-picture epilogue: garbage-collect buffers at or below `pic` and ack
  // to the splitter owning the next picture (ANID redirection).
  std::vector<Outgoing> finish_picture(uint32_t pic);

  // End-of-stream notice for the root (stop monitoring this node).
  std::vector<Outgoing> finished() const;

 private:
  struct Scratch {
    int64_t pic = -1;  // picture this scratch belongs to
    bool have_sp = false;
    bool skip = false;
    SpMsg sp;
    std::set<int> expected;  // source tiles with SENDs for us
  };

  // Key ordering state by (pic, tile) so everything at or below a picture
  // index can be erased with one lower_bound sweep.
  static uint64_t key(int tile, uint32_t pic) {
    return (uint64_t(pic) << 16) | uint16_t(tile);
  }
  Scratch& scratch_for(int tile, uint32_t pic);
  bool serviceable(int src_tile, uint32_t pic) const;

  Topology topo_;
  int home_tile_ = -1;
  int self_ = -1;
  Options opts_;

  std::vector<OwnedTile> owned_;
  std::map<uint64_t, SpMsg> sps_;
  std::map<uint64_t, std::map<int, ExchangeMsg>> exchanges_;
  std::set<uint64_t> skips_;
  // What every node knows about a dead tile once the root's death notice
  // arrived: nobody serves its pictures before `resync`; from there on the
  // adopter does (or nobody, in degraded mode).
  struct DeadTileInfo {
    uint32_t resync = 0;
    int adopter_tile = -1;
  };
  std::map<int, DeadTileInfo> dead_tiles_;
  std::vector<int> owner_;  // tile -> node now serving it
  std::map<int, Scratch> scratch_;  // by tile
  uint32_t latest_epoch_ = 0;
  double last_hb_ = -1e9;

  obs::Counter* m_hb_sent_ = nullptr;
  obs::Counter* m_acks_sent_ = nullptr;
  obs::Counter* m_adoptions_ = nullptr;
};

}  // namespace pdw::proto
