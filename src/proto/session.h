// Serial hosting of the protocol state machines, and multi-stream sessions.
//
// SerialStream is one elementary stream's full 1-k-(m,n) pipeline —
// RootNode, k SplitterNodes, one DecoderNode per tile, plus the compute they
// orchestrate — advanced one picture at a time by a serial scheduler. Every
// message still flows through the proto wire layer and every protocol
// decision is made by the same state machines the threaded pipeline pumps,
// so the lockstep reference (core::LockstepPipeline wraps a SerialStream)
// cannot drift from the cluster runtime. It also times every operation on
// real data, producing the per-picture PictureTraces the discrete-event
// simulator replays.
//
// StreamSession is the multi-stream layer the wire format's `stream` byte
// exists for: N independent elementary streams decoded through one wall,
// pictures interleaved round-robin across streams (the paper's Table-4
// catalog served concurrently). Each stream keeps its own protocol machines
// and reference state, tagged with its stream id; bench_multistream measures
// aggregate fps as N grows.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <span>

#include "core/mb_splitter.h"
#include "core/root_splitter.h"
#include "core/tile_decoder.h"
#include "obs/instruments.h"
#include "proto/admission.h"
#include "proto/nodes.h"
#include "wall/geometry.h"

namespace pdw::proto {

// Measured trace of one picture's journey through the pipeline (replayed by
// sim::simulate_cluster). core::PictureTrace aliases this.
struct PictureTrace {
  uint32_t pic_index = 0;
  mpeg2::PicType type = mpeg2::PicType::I;
  bool has_gop_header = false;  // picture starts a (closed) GOP — resync point
  uint32_t epoch = 0;           // partition epoch the picture was split under
  size_t picture_bytes = 0;  // root -> splitter message size
  double copy_s = 0;         // root: copy picture into the send buffer
  double split_s = 0;        // second-level: parse + build SPs and MEIs
  int splitter = 0;          // which second-level splitter handled it

  // Per tile decoder:
  std::vector<size_t> sp_msg_bytes;   // splitter -> decoder wire body size
  std::vector<double> decode_s;       // decode + display ("Work")
  std::vector<double> serve_s;        // executing SEND instructions ("Serve")
  std::vector<int> halo_mbs;          // remote macroblocks received
  TrafficMatrix exchange_bytes;       // tile x tile exchange wire bytes

  core::SplitStats split_stats;
};

class SerialStream {
 public:
  using DisplayFn = std::function<void(
      int tile, const mpeg2::TileFrame&, const core::TileDisplayInfo&)>;
  using TraceFn = std::function<void(const PictureTrace&)>;

  // `es` is borrowed and must outlive the stream. `stream_id` tags every
  // wire message (0 for single-stream engines). `metrics` selects the
  // registry telemetry lands in (nullptr: the process-global one).
  // `adaptive` turns on per-GOP partition rebalancing (the engine supplies
  // the base geometry itself; any `geo` set by the caller is ignored).
  SerialStream(const wall::TileGeometry& geo, int k,
               std::span<const uint8_t> es, uint8_t stream_id = 0,
               obs::MetricsRegistry* metrics = nullptr,
               RootNode::AdaptivePartition adaptive = {});
  ~SerialStream();

  int picture_count() const;
  uint32_t next_picture() const { return cursor_; }
  bool done() const { return int(cursor_) >= picture_count(); }

  // Coding type / closed-GOP flag of the next picture, peeked from the
  // start-code scan — what the QoS ladder needs *before* any split work.
  mpeg2::PicType next_picture_type() const;
  bool next_gop_start() const;
  uint64_t pictures_shed() const { return pictures_shed_; }

  // Advance one picture end to end: dispatch -> split -> serve/exchange ->
  // decode -> ack. Either callback may be null. With `shed` the picture is
  // dispatched but never split: the splitter broadcasts a skip and every
  // tile emits a frozen frame — the QoS degradation path, riding the same
  // machinery as an undecodable picture.
  void step(const DisplayFn& on_display, const TraceFn& on_trace,
            bool shed = false);

  // End-of-stream protocol: flush every tile decoder and run the
  // finished-notice handshake. Call once, after the last step().
  void finish(const DisplayFn& on_display);

  const core::RootSplitter& root() const { return root_; }
  const WireAccounting& accounting() const { return acct_; }
  // Partition epochs this run installed (epoch 0 alone on a static wall).
  const wall::PartitionTable& partitions() const { return table_; }

 private:
  struct DecoderHost;

  void deliver(int src, const Outgoing& o);
  void deliver_sp(int src, int dst, SpMsg msg);
  void deliver_exchange(int src, int dst, ExchangeMsg msg);
  void dispatch(int src, int dst, AnyMsg msg);
  void install_partition(const PartitionUpdateMsg& pu);

  const wall::TileGeometry& geo_;
  wall::PartitionTable table_;
  bool adaptive_ = false;
  Topology topo_;
  uint8_t stream_id_;
  core::RootSplitter root_;
  std::vector<std::unique_ptr<core::MacroblockSplitter>> splitters_;
  std::vector<std::unique_ptr<DecoderHost>> decoders_;
  std::unique_ptr<RootNode> root_node_;
  std::vector<std::unique_ptr<SplitterNode>> splitter_nodes_;
  WireAccounting acct_;
  uint32_t cursor_ = 0;
  uint64_t pictures_shed_ = 0;
  bool finished_ = false;

  // Cached telemetry instruments, resolved once at construction.
  std::vector<obs::SplitterInstruments> sm_;  // by splitter index
  std::vector<obs::DecoderInstruments> dm_;   // by tile
};

// N independent elementary streams through one wall, one picture per stream
// per round. Optionally admission-gated: with enable_admission() every
// attach goes through the AdmissionController and the per-round scheduler
// consults its degradation ladder before stepping each stream.
class StreamSession {
 public:
  StreamSession(const wall::TileGeometry& geo, int k);
  ~StreamSession();

  // Returns the stream id (also the wire `stream` tag). `es` is borrowed.
  // Ungated legacy attach — always admitted, never shed.
  int add_stream(std::span<const uint8_t> es);
  int streams() const { return int(streams_.size()); }

  // Turn on multi-tenant admission. Must precede attach_stream().
  void enable_admission(AdmissionController::Config cfg);
  AdmissionController* admission() { return adm_.get(); }

  // Admission-gated attach at an explicit stream id. Creates the stream only
  // on accept/renegotiate; a duplicate id (live or already attached) or an
  // out-of-range id gets a typed kReject and changes nothing.
  StreamReply attach_stream(int stream_id, std::span<const uint8_t> es,
                            const TenantSpec& spec);

  using DisplayFn =
      std::function<void(int stream, int tile, const mpeg2::TileFrame&,
                         const core::TileDisplayInfo&)>;

  struct Result {
    int streams = 0;
    uint64_t pictures = 0;  // total across streams (shed ones included)
    uint64_t shed = 0;      // pictures shed by the QoS ladder
    double wall_seconds = 0;
    double aggregate_fps = 0;  // pictures / wall_seconds
    std::vector<uint64_t> stream_pictures;  // indexed by stream id
  };

  // Decode every stream to completion, interleaving pictures round-robin.
  // Streams may finish in any order relative to attach order; a stream that
  // ends mid-GOP simply stops stepping while the others continue. Admitted
  // tenants are released from the controller as they finish.
  Result run(const DisplayFn& on_display);

 private:
  struct Slot {
    std::unique_ptr<SerialStream> ss;
    TenantSpec spec;
    bool gated = false;  // attached through admission
  };

  const wall::TileGeometry& geo_;
  int k_;
  std::map<int, Slot> streams_;  // keyed by stream id
  std::unique_ptr<AdmissionController> adm_;
};

}  // namespace pdw::proto
