// Multi-tenant admission control and QoS degradation ladder.
//
// A tiled wall serving many independent streams has a fixed decode budget
// (macroblocks per second, measured — bench_table4_streams). Before this
// layer, attaching one stream too many degraded *every* tenant equally: the
// round-robin session just got slower, deadlines slid for premium and
// preview feeds alike. AdmissionController makes overload an explicit,
// typed protocol event instead:
//
//   * attach is gated: a tenant declares its cost up front (geometry, fps,
//     priority class — wire::StreamRequest) and the controller answers
//     accept / renegotiate-at-degrade-level / reject (wire::StreamReply)
//     against the measured wall capacity;
//   * under overload the controller walks admitted tenants down the
//     degradation ladder (skip-B -> skip-P -> freeze) in strict priority
//     order — the lowest class always degrades first, and a higher-priority
//     arrival may push lower classes down to make room;
//   * degrading is applied immediately (skipping pictures is always safe —
//     the shed path reuses the skip-broadcast machinery, so the display
//     invariant holds), but *reverting* is deferred to the next picture
//     that opens a closed GOP: an I picture with a GOP header references
//     nothing, so resuming there is bit-exact by construction.
//
// The controller is sans-io and deterministic: every decision is a pure
// function of the calls made on it, in order. The threaded host pumps
// StreamRequest/StreamReply over the fabric and the serial engines call
// offer() directly; both produce the same Action log for the same inputs,
// which is what test_admission's engine-equivalence case pins down.
#pragma once

#include <cstdint>
#include <vector>

#include "mpeg2/types.h"
#include "proto/wire.h"

namespace pdw::obs {
class MetricsRegistry;
}

namespace pdw::proto {

// A tenant's declared stream cost — what it asks the wall to commit to.
struct TenantSpec {
  uint16_t width_mb = 0;   // picture geometry, in macroblocks
  uint16_t height_mb = 0;
  uint16_t fps = 0;
  PriorityClass priority = PriorityClass::kStandard;
};

// Declared decode cost in macroblocks/second — the unit wall capacity is
// measured in, so admission is a straight budget comparison.
inline double tenant_cost(const TenantSpec& s) {
  return double(s.width_mb) * double(s.height_mb) * double(s.fps);
}

inline StreamRequest to_request(const TenantSpec& s, uint8_t stream) {
  StreamRequest r;
  r.width_mb = s.width_mb;
  r.height_mb = s.height_mb;
  r.fps = s.fps;
  r.priority = s.priority;
  r.stream = stream;
  return r;
}

// Measured serving capacity of the wall (derived from a calibration run or
// a DES cost model — never guessed inside proto).
struct WallCapacity {
  double mb_per_s = 0;
  // Fraction of capacity admission may commit. The headroom absorbs the lag
  // between an arrival and the next ladder rebalance.
  double admit_headroom = 0.95;
};

class AdmissionController {
 public:
  struct Config {
    WallCapacity capacity;
    // Declared picture-type mix, used to price the ladder: skipping B
    // pictures sheds `b_share` of the load, skipping P another `p_share`.
    // Default matches the IBBP test streams (gop 12, 2 B per anchor).
    double b_share = 0.5;
    double p_share = 0.3;
    // on_pressure() thresholds: degrade one step when the signal is at or
    // above `degrade_at`, arm one revert when at or below `revert_at`. The
    // dead band between them keeps the ladder from oscillating.
    double degrade_at = 1.0;
    double revert_at = 0.7;
  };

  // One entry of the decision log — the sequence every engine must agree
  // on. `level` is the stream's degrade level *after* the action.
  struct Action {
    enum class Kind : uint8_t {
      kOffer,      // verdict answered to a StreamRequest
      kRelease,    // stream departed, its budget returned
      kDegrade,    // ladder pushed the stream one level down (immediate)
      kArmRevert,  // ladder scheduled a one-level revert (awaits closed GOP)
      kRevert,     // armed revert applied at a closed-GOP I picture
    };
    Kind kind = Kind::kOffer;
    uint8_t stream = 0;
    AdmissionVerdict verdict = AdmissionVerdict::kAccept;  // kOffer only
    DegradeLevel level = DegradeLevel::kNone;

    friend bool operator==(const Action&, const Action&) = default;
  };

  // Per-tenant ledger entry (telemetry reads it; decisions come from the
  // methods).
  struct TenantState {
    TenantSpec spec;
    bool active = false;
    DegradeLevel level = DegradeLevel::kNone;   // currently applied
    DegradeLevel target = DegradeLevel::kNone;  // after pending reverts
    uint64_t pictures = 0;
    uint64_t shed = 0;
    uint64_t deadline_checks = 0;
    uint64_t deadline_misses = 0;
  };

  explicit AdmissionController(Config cfg);

  // Admit `req` against the remaining budget. Tries, in order: full rate;
  // degrading strictly lower-priority tenants to make room (each step is
  // logged); renegotiating the requester at the shallowest degrade level
  // that fits. A live duplicate stream id is a protocol error -> kReject.
  StreamReply offer(const StreamRequest& req);

  // Wire-side entry: decode a StreamRequest body, offer() it, and return
  // the packed StreamReply. Malformed bytes get a typed kReject for stream
  // 0 rather than a crash — the fabric host answers everything.
  Packed offer_wire(const mem::Bytes& body);

  // Stream departed; its budget returns to the pool (reverts for the
  // remaining tenants are armed by the next on_pressure() reading).
  void release(uint8_t stream);

  // Periodic backpressure reading (utilization, pool pressure — any signal
  // normalized so 1.0 means "at capacity"). Each call moves the ladder at
  // most one step, so the reaction rate is bounded by the polling rate.
  void on_pressure(double signal);

  // Per-picture gate, called by the session before stepping a stream:
  // applies an armed revert first if this picture opens a closed GOP, then
  // answers whether the picture must be shed at the stream's level.
  bool should_shed(uint8_t stream, mpeg2::PicType type, bool closed_gop);

  // Telemetry-only deadline bookkeeping; never feeds decisions (wall-clock
  // input would break engine determinism).
  void deadline_check(uint8_t stream, bool missed);

  bool admitted(uint8_t stream) const;
  DegradeLevel level(uint8_t stream) const;
  const TenantState* tenant(uint8_t stream) const;

  // Committed load (mb/s at current degrade levels) and its ratio to the
  // admissible budget.
  double committed_load() const { return committed_; }
  double utilization() const;

  const Config& config() const { return cfg_; }
  const std::vector<Action>& log() const { return log_; }

  // Mirror admission totals and per-tenant state into `reg` (labels:
  // {stream}). Null: telemetry off (the default — unit tests stay silent).
  void set_metrics(obs::MetricsRegistry* reg) { metrics_ = reg; }

 private:
  double multiplier(DegradeLevel l) const;
  // Committed load is priced at the *target* level (the steady state the
  // ledger is heading toward); an armed revert raises it before the level
  // actually lowers at the resync picture, so admission never double-sells
  // the in-between.
  double effective_cost(const TenantState& t) const {
    return tenant_cost(t.spec) * multiplier(t.target);
  }
  double budget() const {
    return cfg_.capacity.mb_per_s * cfg_.capacity.admit_headroom;
  }
  // Next tenant the ladder degrades / reverts, or -1. Degrade order: lowest
  // priority class, then least-degraded within the class (spread the pain),
  // then highest stream id (newest first). Revert order is the mirror
  // image. `below` limits degrade victims to classes strictly below it.
  int degrade_victim(int below_priority) const;
  int revert_candidate() const;
  void apply_degrade(int stream);
  void push(Action::Kind kind, uint8_t stream, AdmissionVerdict verdict,
            DegradeLevel level);
  void mirror_tenant(uint8_t stream);

  Config cfg_;
  std::vector<TenantState> tenants_;  // indexed by stream id (wire byte)
  double committed_ = 0;
  uint64_t accepted_ = 0, rejected_ = 0, renegotiated_ = 0;
  std::vector<Action> log_;
  obs::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace pdw::proto
