#include "proto/admission.h"

#include "common/check.h"
#include "obs/flight.h"
#include "obs/metrics.h"

namespace pdw::proto {

namespace {

DegradeLevel next_down(DegradeLevel l) {
  return l == DegradeLevel::kFreeze ? l : DegradeLevel(uint8_t(l) + 1);
}

}  // namespace

AdmissionController::AdmissionController(Config cfg) : cfg_(cfg) {
  PDW_CHECK_GT(cfg_.capacity.mb_per_s, 0.0);
  PDW_CHECK_GT(cfg_.capacity.admit_headroom, 0.0);
  tenants_.resize(256);  // the wire stream tag is a byte
}

double AdmissionController::multiplier(DegradeLevel l) const {
  switch (l) {
    case DegradeLevel::kNone: return 1.0;
    case DegradeLevel::kSkipB: return 1.0 - cfg_.b_share;
    case DegradeLevel::kSkipP: return 1.0 - cfg_.b_share - cfg_.p_share;
    case DegradeLevel::kFreeze: return 0.0;
  }
  return 1.0;
}

double AdmissionController::utilization() const {
  return committed_ / budget();
}

StreamReply AdmissionController::offer(const StreamRequest& req) {
  TenantState& t = tenants_[req.stream];
  StreamReply rep;
  rep.stream = req.stream;

  TenantSpec spec;
  spec.width_mb = req.width_mb;
  spec.height_mb = req.height_mb;
  spec.fps = req.fps;
  spec.priority = req.priority;
  const double cost = tenant_cost(spec);

  // A live duplicate id or a zero-cost declaration is a protocol error, not
  // an overload condition — always a plain reject.
  if (t.active || cost <= 0) {
    rep.verdict = AdmissionVerdict::kReject;
    rep.level = DegradeLevel::kFreeze;
    ++rejected_;
    push(Action::Kind::kOffer, req.stream, rep.verdict, rep.level);
    if (metrics_) {
      metrics_->counter(obs::family::kAdmissionRejected).add();
    }
    return rep;
  }

  // Make room by degrading strictly lower-priority tenants, one ladder step
  // at a time. Each step is committed (and logged) even if the offer still
  // ends in renegotiation — the wall was genuinely over budget.
  while (committed_ + cost > budget()) {
    const int victim = degrade_victim(int(req.priority));
    if (victim < 0) break;
    apply_degrade(victim);
  }

  if (committed_ + cost <= budget()) {
    rep.verdict = AdmissionVerdict::kAccept;
    rep.level = DegradeLevel::kNone;
    ++accepted_;
  } else {
    // Renegotiate: shallowest degrade level at which the requester fits.
    rep.verdict = AdmissionVerdict::kReject;
    rep.level = DegradeLevel::kFreeze;
    for (auto l : {DegradeLevel::kSkipB, DegradeLevel::kSkipP}) {
      if (committed_ + cost * multiplier(l) <= budget()) {
        rep.verdict = AdmissionVerdict::kRenegotiate;
        rep.level = l;
        break;
      }
    }
    if (rep.verdict == AdmissionVerdict::kRenegotiate)
      ++renegotiated_;
    else
      ++rejected_;
  }

  if (rep.verdict != AdmissionVerdict::kReject) {
    t = TenantState{};
    t.spec = spec;
    t.active = true;
    t.level = t.target = rep.level;
    committed_ += effective_cost(t);
  }
  push(Action::Kind::kOffer, req.stream, rep.verdict, rep.level);
  if (metrics_) {
    const char* fam = rep.verdict == AdmissionVerdict::kAccept
                          ? obs::family::kAdmissionAccepted
                      : rep.verdict == AdmissionVerdict::kRenegotiate
                          ? obs::family::kAdmissionRenegotiated
                          : obs::family::kAdmissionRejected;
    metrics_->counter(fam).add();
    mirror_tenant(req.stream);
  }
  return rep;
}

Packed AdmissionController::offer_wire(const mem::Bytes& body) {
  StreamRequest req;
  if (!decode(body.span(), &req)) {
    StreamReply rep;  // typed reject; stream 0 is all the sender gets back
    rep.verdict = AdmissionVerdict::kReject;
    rep.level = DegradeLevel::kFreeze;
    return pack(rep);
  }
  return pack(offer(req));
}

void AdmissionController::release(uint8_t stream) {
  TenantState& t = tenants_[stream];
  if (!t.active) return;  // releasing a never-admitted stream is a no-op
  committed_ -= effective_cost(t);
  if (committed_ < 0) committed_ = 0;  // float dust
  t.active = false;
  push(Action::Kind::kRelease, stream, AdmissionVerdict::kAccept, t.level);
  if (metrics_) mirror_tenant(stream);
}

void AdmissionController::on_pressure(double signal) {
  if (signal >= cfg_.degrade_at) {
    const int victim = degrade_victim(/*below_priority=*/3);
    if (victim >= 0) apply_degrade(victim);
    return;
  }
  if (signal <= cfg_.revert_at) {
    const int stream = revert_candidate();
    if (stream < 0) return;
    TenantState& t = tenants_[size_t(stream)];
    // Check the revert actually fits before arming it; the armed target is
    // priced into committed_ now so successive on_pressure() calls see the
    // load the wall is heading toward, not the transiently-degraded one.
    const double delta =
        tenant_cost(t.spec) *
        (multiplier(DegradeLevel(uint8_t(t.target) - 1)) - multiplier(t.target));
    if (committed_ + delta > budget()) return;
    t.target = DegradeLevel(uint8_t(t.target) - 1);
    committed_ += delta;
    push(Action::Kind::kArmRevert, uint8_t(stream), AdmissionVerdict::kAccept,
         t.target);
  }
}

bool AdmissionController::should_shed(uint8_t stream, mpeg2::PicType type,
                                      bool closed_gop) {
  TenantState& t = tenants_[stream];
  if (!t.active) return false;
  if (closed_gop && t.target < t.level) {
    // Bit-exact resync point: nothing before this picture is referenced
    // again, so the armed revert lands here.
    t.level = t.target;
    push(Action::Kind::kRevert, stream, AdmissionVerdict::kAccept, t.level);
    if (metrics_) mirror_tenant(stream);
  }
  ++t.pictures;
  bool shed = false;
  switch (t.level) {
    case DegradeLevel::kNone: break;
    case DegradeLevel::kSkipB: shed = type == mpeg2::PicType::B; break;
    case DegradeLevel::kSkipP: shed = type != mpeg2::PicType::I; break;
    case DegradeLevel::kFreeze: shed = true; break;
  }
  if (shed) {
    ++t.shed;
    if (metrics_)
      metrics_->counter(obs::family::kTenantPicturesShed, {.stream = stream})
          .add();
  }
  return shed;
}

void AdmissionController::deadline_check(uint8_t stream, bool missed) {
  TenantState& t = tenants_[stream];
  ++t.deadline_checks;
  if (missed) ++t.deadline_misses;
  if (metrics_) {
    metrics_->counter(obs::family::kTenantDeadlineChecks, {.stream = stream})
        .add();
    if (missed)
      metrics_->counter(obs::family::kTenantDeadlineMisses, {.stream = stream})
          .add();
  }
}

bool AdmissionController::admitted(uint8_t stream) const {
  return tenants_[stream].active;
}

DegradeLevel AdmissionController::level(uint8_t stream) const {
  return tenants_[stream].level;
}

const AdmissionController::TenantState* AdmissionController::tenant(
    uint8_t stream) const {
  const TenantState& t = tenants_[stream];
  return t.active ? &t : nullptr;
}

int AdmissionController::degrade_victim(int below_priority) const {
  int best = -1;
  for (int i = 255; i >= 0; --i) {
    const TenantState& t = tenants_[size_t(i)];
    if (!t.active || int(t.spec.priority) >= below_priority) continue;
    if (t.target == DegradeLevel::kFreeze) continue;  // nothing left to shed
    if (best < 0) {
      best = i;
      continue;
    }
    const TenantState& b = tenants_[size_t(best)];
    // Lowest class first; within a class spread the pain (least-degraded
    // target first); ties: highest stream id (the downward loop saw it
    // first, so keeping `best` preserves newest-first).
    if (t.spec.priority < b.spec.priority ||
        (t.spec.priority == b.spec.priority && t.target < b.target))
      best = i;
  }
  return best;
}

int AdmissionController::revert_candidate() const {
  int best = -1;
  for (int i = 0; i < 256; ++i) {
    const TenantState& t = tenants_[size_t(i)];
    if (!t.active || t.target == DegradeLevel::kNone) continue;
    if (best < 0) {
      best = i;
      continue;
    }
    const TenantState& b = tenants_[size_t(best)];
    // Mirror of degrade_victim: highest class recovers first, most-degraded
    // within the class first, oldest stream first.
    if (t.spec.priority > b.spec.priority ||
        (t.spec.priority == b.spec.priority && t.target > b.target))
      best = i;
  }
  return best;
}

void AdmissionController::apply_degrade(int stream) {
  TenantState& t = tenants_[size_t(stream)];
  committed_ -= effective_cost(t);
  // Degrading is always safe to apply immediately (a skipped picture is a
  // skip-broadcast, which the display machinery already handles), and a
  // deeper target cancels any armed revert.
  t.level = t.target = next_down(t.target);
  committed_ += effective_cost(t);
  push(Action::Kind::kDegrade, uint8_t(stream), AdmissionVerdict::kAccept,
       t.level);
  if (metrics_) mirror_tenant(uint8_t(stream));
}

void AdmissionController::push(Action::Kind kind, uint8_t stream,
                               AdmissionVerdict verdict, DegradeLevel level) {
  Action a;
  a.kind = kind;
  a.stream = stream;
  a.verdict = verdict;
  a.level = level;
  log_.push_back(a);
  // Ladder transitions are flight-recorder triggers: a degrade (or its
  // revert) is exactly the moment a post-mortem wants the preceding wire
  // and span history for.
  switch (kind) {
    case Action::Kind::kDegrade:
      obs::FlightRecorder::global().dump("ladder_degrade");
      break;
    case Action::Kind::kArmRevert:
      obs::FlightRecorder::global().dump("ladder_arm_revert");
      break;
    case Action::Kind::kRevert:
      obs::FlightRecorder::global().dump("ladder_revert");
      break;
    default:
      break;
  }
}

void AdmissionController::mirror_tenant(uint8_t stream) {
  const TenantState& t = tenants_[stream];
  const obs::Labels labels{.stream = stream};
  metrics_->gauge(obs::family::kTenantAdmitted, labels).set(t.active ? 1 : 0);
  metrics_->gauge(obs::family::kTenantPriorityClass, labels)
      .set(int64_t(t.spec.priority));
  metrics_->gauge(obs::family::kTenantDegradeLevel, labels)
      .set(int64_t(t.level));
}

}  // namespace pdw::proto
