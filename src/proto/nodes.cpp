#include "proto/nodes.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "obs/trace.h"

namespace pdw::proto {

uint32_t pick_resync_picture(const std::vector<PictureMeta>& pictures,
                             int cursor) {
  // Every GOP starts with an I picture, and GOPs are closed, so decoding
  // restarted at a GOP header is bit-exact from that display slot on.
  for (int j = cursor; j < int(pictures.size()); ++j)
    if (pictures[size_t(j)].has_gop_header) return uint32_t(j);
  return uint32_t(pictures.size());
}

int pick_adopter_tile(const std::vector<int>& tile_owner_node,
                      const std::set<int>& dead_nodes, int dead_node,
                      RecoveryPolicy policy) {
  if (policy != RecoveryPolicy::kAdopt) return -1;
  for (int t2 = 0; t2 < int(tile_owner_node.size()); ++t2) {
    const int n2 = tile_owner_node[size_t(t2)];
    if (n2 != dead_node && !dead_nodes.count(n2)) return t2;
  }
  return -1;
}

// --- RootNode --------------------------------------------------------------

RootNode::RootNode(const Topology& topo, const Options& opts,
                   std::vector<PictureMeta> pictures, double now)
    : topo_(topo),
      opts_(opts),
      pictures_(std::move(pictures)),
      last_hb_(size_t(topo.tiles), now),
      owner_(size_t(topo.tiles), -1) {
  for (int t = 0; t < topo_.tiles; ++t) owner_[size_t(t)] = topo_.decoder(t);
  if (opts_.adaptive.enabled) {
    PDW_CHECK(opts_.adaptive.geo != nullptr);
    PDW_CHECK_EQ(opts_.adaptive.geo->tiles(), topo_.tiles);
    table_ = std::make_unique<wall::PartitionTable>(*opts_.adaptive.geo);
    window_cost_.col.assign(size_t(opts_.adaptive.geo->mb_width()), 0);
    window_cost_.row.assign(size_t(opts_.adaptive.geo->mb_height()), 0);
  }
}

void RootNode::set_metrics(obs::MetricsRegistry* reg) {
  obs::MetricsRegistry& r = obs::registry_or_global(reg);
  metrics_reg_ = &r;
  const obs::Labels l{topo_.root(), int(opts_.stream)};
  m_dispatched_ = &r.counter(obs::family::kPicturesDispatched, l);
  m_go_aheads_ = &r.counter(obs::family::kGoAheadsSeen, l);
  m_hb_recv_ = &r.counter(obs::family::kHeartbeatsRecv, l);
  m_deaths_ = &r.counter(obs::family::kDeathsDeclared, l);
  publish_partition_gauges();  // epoch 0, so dashboards start populated
}

void RootNode::publish_partition_gauges() {
  if (!metrics_reg_ || !table_) return;
  const int stream = int(opts_.stream);
  const wall::Partition& p = table_->partition(table_->latest_epoch());
  metrics_reg_->gauge(obs::family::kPartitionEpoch, obs::Labels{-1, stream})
      .set(int64_t(p.epoch));
  // Cut gauges are labeled {node = cut index}: m-1 column cuts, n-1 rows.
  for (size_t i = 0; i < p.col_cuts_mb.size(); ++i)
    metrics_reg_
        ->gauge(obs::family::kPartitionColCutMb, obs::Labels{int(i), stream})
        .set(p.col_cuts_mb[i]);
  for (size_t i = 0; i < p.row_cuts_mb.size(); ++i)
    metrics_reg_
        ->gauge(obs::family::kPartitionRowCutMb, obs::Labels{int(i), stream})
        .set(p.row_cuts_mb[i]);
}

RootNode::Step RootNode::on_message(int src, const AnyMsg& msg, double now) {
  (void)src;
  Step step;
  if (std::holds_alternative<GoAheadAck>(msg)) {
    ++acks_seen_;
    if (m_go_aheads_) m_go_aheads_->add();
  } else if (const auto* hb = std::get_if<Heartbeat>(&msg)) {
    last_hb_[size_t(hb->tile)] = now;
    if (m_hb_recv_) m_hb_recv_->add();
  } else if (const auto* fin = std::get_if<Finished>(&msg)) {
    finished_nodes_.insert(topo_.decoder(int(fin->tile)));
  } else if (const auto* cr = std::get_if<CostReportMsg>(&msg)) {
    if (table_) {
      ++cost_reports_seen_;
      const size_t nc =
          std::min(window_cost_.col.size(), cr->col_cost.size());
      const size_t nr =
          std::min(window_cost_.row.size(), cr->row_cost.size());
      for (size_t i = 0; i < nc; ++i) window_cost_.col[i] += cr->col_cost[i];
      for (size_t i = 0; i < nr; ++i) window_cost_.row[i] += cr->row_cost[i];
    }
  }
  return step;
}

RootNode::Step RootNode::on_tick(double now) {
  Step step;
  for (int t = 0; t < topo_.tiles; ++t) {
    const int node = topo_.decoder(t);
    if (dead_nodes_.count(node) || finished_nodes_.count(node)) continue;
    if (now - last_hb_[size_t(t)] > opts_.heartbeat_timeout_s)
      declare_dead(node, &step);
  }
  return step;
}

RootNode::Step RootNode::on_transport_suspect(int node, double now) {
  (void)now;
  Step step;
  if (dead_nodes_.count(node) || finished_nodes_.count(node)) return step;
  bool is_decoder = false;
  for (int t = 0; t < topo_.tiles; ++t)
    if (topo_.decoder(t) == node) is_decoder = true;
  if (!is_decoder) return step;
  if (++suspects_[node] >= kTransportSuspectThreshold)
    declare_dead(node, &step);
  return step;
}

void RootNode::declare_dead(int node, Step* step) {
  if (dead_nodes_.count(node)) return;
  dead_nodes_.insert(node);
  // Recovery resyncs interleaved with rebalances is a state space nobody
  // needs: the partition in force stays in force for the rest of the run.
  partition_frozen_ = true;
  if (m_deaths_) m_deaths_->add();
  PDW_TRACE_INSTANT(obs::span::kDeath, topo_.root());
  const uint32_t resync = pick_resync_picture(pictures_, int(cursor_));
  for (int t = 0; t < topo_.tiles; ++t) {
    if (owner_[size_t(t)] != node) continue;
    const int adopter_tile =
        pick_adopter_tile(owner_, dead_nodes_, node, opts_.recovery);
    step->deaths.push_back(Death{node, t, adopter_tile, resync});
    owner_[size_t(t)] =
        adopter_tile >= 0 ? owner_[size_t(adopter_tile)] : -1;
    DeathNotice dn;
    dn.dead_tile = uint16_t(t);
    dn.adopter_tile = adopter_tile >= 0 ? uint16_t(adopter_tile) : kNoTile;
    dn.resync_pic = resync;
    dn.stream = opts_.stream;
    const Packed packed = pack(dn);
    for (int s = 0; s < topo_.k; ++s)
      step->send.push_back(Outgoing{topo_.splitter(s), true, packed});
    for (int t2 = 0; t2 < topo_.tiles; ++t2) {
      const int n2 = topo_.decoder(t2);
      if (!dead_nodes_.count(n2))
        step->send.push_back(Outgoing{n2, true, packed});
    }
  }
}

bool RootNode::may_dispatch() const {
  if (acks_seen_ < int64_t(cursor_)) return false;
  if (!rebalance_pending()) return true;
  // Closed-GOP boundary with rebalancing live: wait until every dispatched
  // picture's cost report landed, so the planner sees the complete window.
  return cost_reports_seen_ >= int64_t(cursor_);
}

bool RootNode::rebalance_pending() const {
  return table_ && !partition_frozen_ && cursor_ > 0 &&
         cursor_ < total_pictures() &&
         pictures_[size_t(cursor_)].has_gop_header;
}

std::vector<Outgoing> RootNode::dispatch(std::span<const uint8_t> coded) {
  PDW_CHECK(may_dispatch());
  PDW_CHECK_LT(cursor_, total_pictures());
  std::vector<Outgoing> out;
  if (rebalance_pending()) {
    // Plan over the just-finished GOP window; the decision is a pure
    // function of the bitstream, so every engine lands on the same cuts.
    wall::PlannerConfig cfg;
    cfg.gain_threshold = opts_.adaptive.gain_threshold;
    cfg.min_band_mbs = opts_.adaptive.min_band_mbs;
    cfg.overlap_px = opts_.adaptive.geo->overlap();
    const std::optional<wall::Partition> next = wall::plan_partition(
        table_->partition(table_->latest_epoch()), window_cost_, cfg);
    if (next) {
      table_->install(*next, cursor_);
      publish_partition_gauges();
      PartitionUpdateMsg pu;
      pu.epoch = next->epoch;
      pu.apply_from_pic = cursor_;
      pu.stream = opts_.stream;
      for (int c : next->col_cuts_mb) pu.col_cuts_mb.push_back(uint16_t(c));
      for (int r : next->row_cuts_mb) pu.row_cuts_mb.push_back(uint16_t(r));
      const Packed packed = pack(pu);
      for (int s = 0; s < topo_.k; ++s)
        out.push_back(Outgoing{topo_.splitter(s), true, packed});
      for (int t = 0; t < topo_.tiles; ++t) {
        const int n = topo_.decoder(t);
        if (!dead_nodes_.count(n) && !finished_nodes_.count(n))
          out.push_back(Outgoing{n, true, packed});
      }
      PDW_TRACE_INSTANT(obs::span::kRebalance, topo_.root(), cursor_);
    }
    std::fill(window_cost_.col.begin(), window_cost_.col.end(), 0);
    std::fill(window_cost_.row.begin(), window_cost_.row.end(), 0);
  }
  // The coded span (typically a view into the resident elementary stream)
  // is packed straight into the pooled body — the one copy this picture
  // makes on its way to the splitter.
  const uint32_t epoch = table_ ? table_->epoch_for(cursor_) : 0;
  Packed p = pack_picture(cursor_, topo_.nsid(cursor_), opts_.stream, coded,
                          epoch);
  const int dst = topo_.splitter(topo_.splitter_for_picture(cursor_));
  ++cursor_;
  if (m_dispatched_) m_dispatched_->add();
  out.push_back(Outgoing{dst, true, std::move(p)});
  return out;
}

std::vector<Outgoing> RootNode::end_of_stream() const {
  std::vector<Outgoing> out;
  for (int s = 0; s < topo_.k; ++s)
    out.push_back(
        Outgoing{topo_.splitter(s), true, pack(EndOfStream{opts_.stream})});
  return out;
}

bool RootNode::all_reported() const {
  for (int t = 0; t < topo_.tiles; ++t) {
    const int n = topo_.decoder(t);
    if (!dead_nodes_.count(n) && !finished_nodes_.count(n)) return false;
  }
  return true;
}

// --- SplitterNode ----------------------------------------------------------

SplitterNode::SplitterNode(const Topology& topo, int index, uint8_t stream)
    : topo_(topo), index_(index), stream_(stream) {
  route_.resize(size_t(topo.tiles));
  for (int t = 0; t < topo_.tiles; ++t) {
    live_.insert(topo_.decoder(t));
    route_[size_t(t)] = Route{topo_.decoder(t), 0};
  }
}

void SplitterNode::set_metrics(obs::MetricsRegistry* reg) {
  obs::MetricsRegistry& r = obs::registry_or_global(reg);
  const obs::Labels l{topo_.splitter(index_), int(stream_)};
  m_acks_recv_ = &r.counter(obs::family::kAcksRecv, l);
  m_skips_ = &r.counter(obs::family::kSkipBroadcasts, l);
}

SplitterNode::Step SplitterNode::on_message(int src, AnyMsg msg, double now) {
  (void)now;
  Step step;
  if (auto* pic = std::get_if<PictureMsg>(&msg)) {
    pictures_.push_back(std::move(*pic));
  } else if (const auto* ack = std::get_if<GoAheadAck>(&msg)) {
    acked_[ack->pic_index].insert(src);
    if (m_acks_recv_) m_acks_recv_->add();
  } else if (const auto* dn = std::get_if<DeathNotice>(&msg)) {
    const int dead_node = route_[size_t(dn->dead_tile)].node;
    live_.erase(dead_node);
    if (dead_node >= 0) step.forget.push_back(dead_node);
    route_[size_t(dn->dead_tile)] =
        Route{dn->adopter_tile == kNoTile
                  ? -1
                  : route_[size_t(dn->adopter_tile)].node,
              dn->resync_pic};
  } else if (std::holds_alternative<EndOfStream>(msg)) {
    ended_ = true;
  } else if (auto* pu = std::get_if<PartitionUpdateMsg>(&msg)) {
    step.partition = std::move(*pu);
  }
  return step;
}

SplitterNode::Step SplitterNode::on_send_failure(const SendFailure& f) {
  Step step;
  if (!live_.count(f.dst)) return step;
  SkipBroadcast skip;
  skip.pic_index = f.seq;
  skip.tile = f.aux;
  skip.stream = stream_;
  if (f.type == MsgType::kSubPicture) {
    for (int node : live_)
      step.send.push_back(Outgoing{node, true, pack(skip)});
  } else if (f.type == MsgType::kSkipBroadcast) {
    step.send.push_back(Outgoing{f.dst, true, pack(skip)});
  }
  if (m_skips_) m_skips_->add(step.send.size());
  return step;
}

PictureMsg SplitterNode::pop_picture(Outgoing* go_ahead) {
  PDW_CHECK(has_picture());
  PictureMsg m = std::move(pictures_.front());
  pictures_.erase(pictures_.begin());
  GoAheadAck ack;
  ack.pic_index = m.pic_index;
  ack.stream = stream_;
  *go_ahead = Outgoing{topo_.root(), true, pack(ack)};
  return m;
}

bool SplitterNode::prev_acked(uint32_t pic) {
  if (pic == 0) return true;
  const auto it = acked_.find(pic - 1);
  for (int node : live_)
    if (it == acked_.end() || !it->second.count(node)) return false;
  acked_.erase(acked_.begin(), acked_.upper_bound(pic - 1));
  return true;
}

std::vector<SplitterNode::SpRoute> SplitterNode::routes(uint32_t pic) const {
  std::vector<SpRoute> out;
  for (int d = 0; d < topo_.tiles; ++d) {
    const Route& rt = route_[size_t(d)];
    if (rt.node < 0 || pic < rt.valid_from) continue;
    out.push_back(SpRoute{d, rt.node});
  }
  return out;
}

std::vector<Outgoing> SplitterNode::skip_picture(uint32_t pic) const {
  std::vector<Outgoing> out;
  for (int d = 0; d < topo_.tiles; ++d) {
    SkipBroadcast skip;
    skip.pic_index = pic;
    skip.tile = uint16_t(d);
    skip.stream = stream_;
    for (int node : live_) out.push_back(Outgoing{node, true, pack(skip)});
  }
  if (m_skips_) m_skips_->add(out.size());
  return out;
}

// --- DecoderNode -----------------------------------------------------------

DecoderNode::DecoderNode(const Topology& topo, int home_tile,
                         const Options& opts)
    : topo_(topo),
      home_tile_(home_tile),
      self_(topo.decoder(home_tile)),
      opts_(opts),
      owner_(size_t(topo.tiles), -1) {
  owned_.reserve(size_t(topo_.tiles));
  owned_.push_back(OwnedTile{home_tile, 0});
  for (int d = 0; d < topo_.tiles; ++d) owner_[size_t(d)] = topo_.decoder(d);
}

void DecoderNode::set_metrics(obs::MetricsRegistry* reg) {
  obs::MetricsRegistry& r = obs::registry_or_global(reg);
  const obs::Labels l{self_, int(opts_.stream)};
  m_hb_sent_ = &r.counter(obs::family::kHeartbeatsSent, l);
  m_acks_sent_ = &r.counter(obs::family::kAcksSent, l);
  m_adoptions_ = &r.counter(obs::family::kAdoptions, l);
}

DecoderNode::Step DecoderNode::on_message(int src, AnyMsg msg, double now) {
  (void)src;
  (void)now;
  Step step;
  if (auto* sp = std::get_if<SpMsg>(&msg)) {
    sps_[key(int(sp->tile), sp->pic_index)] = std::move(*sp);
  } else if (auto* ex = std::get_if<ExchangeMsg>(&msg)) {
    exchanges_[key(int(ex->dst_tile), ex->pic_index)][int(ex->src_tile)] =
        std::move(*ex);
  } else if (const auto* skip = std::get_if<SkipBroadcast>(&msg)) {
    skips_.insert(key(int(skip->tile), skip->pic_index));
  } else if (const auto* dn = std::get_if<DeathNotice>(&msg)) {
    const int dead_tile = int(dn->dead_tile);
    const int adopter_tile =
        dn->adopter_tile == kNoTile ? -1 : int(dn->adopter_tile);
    dead_tiles_[dead_tile] = DeadTileInfo{dn->resync_pic, adopter_tile};
    const int dead_node = owner_[size_t(dead_tile)];
    owner_[size_t(dead_tile)] =
        adopter_tile >= 0 ? owner_[size_t(adopter_tile)] : -1;
    if (dead_node >= 0) step.forget.push_back(dead_node);
    if (adopter_tile < 0 || dn->resync_pic >= opts_.total_pictures)
      return step;
    bool mine = false, already = false;
    for (const OwnedTile& ot : owned_) {
      mine |= ot.tile == adopter_tile;
      already |= ot.tile == dead_tile;
    }
    if (mine && !already) {
      owned_.push_back(OwnedTile{dead_tile, dn->resync_pic});
      step.adopt_tile = dead_tile;
      if (m_adoptions_) m_adoptions_->add();
      PDW_TRACE_INSTANT(obs::span::kAdopt, self_, dn->resync_pic);
    }
  } else if (auto* pu = std::get_if<PartitionUpdateMsg>(&msg)) {
    latest_epoch_ = std::max(latest_epoch_, pu->epoch);
    step.partition = std::move(*pu);
  }
  return step;
}

std::vector<Outgoing> DecoderNode::on_tick(double now) {
  std::vector<Outgoing> out;
  if (now - last_hb_ < opts_.heartbeat_interval_s) return out;
  last_hb_ = now;
  Heartbeat hb;
  hb.tile = uint16_t(home_tile_);
  hb.stream = opts_.stream;
  out.push_back(Outgoing{topo_.root(), false, pack(hb)});
  if (m_hb_sent_) m_hb_sent_->add();
  return out;
}

DecoderNode::Scratch& DecoderNode::scratch_for(int tile, uint32_t pic) {
  Scratch& sc = scratch_[tile];
  if (sc.pic != int64_t(pic)) {
    sc = Scratch{};
    sc.pic = int64_t(pic);
  }
  return sc;
}

DecoderNode::SpState DecoderNode::poll_sp(int tile, uint32_t pic) {
  Scratch& sc = scratch_for(tile, pic);
  if (sc.have_sp) return SpState::kReady;
  if (sc.skip) return SpState::kSkipped;
  const uint64_t k = key(tile, pic);
  if (const auto it = sps_.find(k); it != sps_.end()) {
    // Its epoch's geometry may not have reached this node yet (the update
    // rides the root link, the sub-picture a splitter link): hold it.
    if (it->second.epoch > latest_epoch_) return SpState::kPending;
    sc.sp = std::move(it->second);
    sps_.erase(it);
    sc.have_sp = true;
    for (const core::MeiInstruction& instr : sc.sp.mei)
      if (instr.op == core::MeiOp::kRecv) sc.expected.insert(int(instr.peer));
    // Tiles hosted on this very node exchange halos in memory.
    for (const OwnedTile& ot : owned_)
      if (tile_active(ot, pic)) sc.expected.erase(ot.tile);
    return SpState::kReady;
  }
  if (skips_.count(k)) {
    sc.skip = true;
    return SpState::kSkipped;
  }
  return SpState::kPending;
}

const SpMsg& DecoderNode::sp(int tile) const {
  const auto it = scratch_.find(tile);
  PDW_CHECK(it != scratch_.end() && it->second.have_sp);
  return it->second.sp;
}

bool DecoderNode::have_sp(int tile) const {
  const auto it = scratch_.find(tile);
  return it != scratch_.end() && it->second.have_sp;
}

bool DecoderNode::skipped(int tile) const {
  const auto it = scratch_.find(tile);
  return it != scratch_.end() && it->second.skip;
}

DecoderNode::ExchangeRoute DecoderNode::route_exchange(int dst_tile,
                                                       uint32_t pic) const {
  const auto it = dead_tiles_.find(dst_tile);
  if (it != dead_tiles_.end() &&
      (it->second.adopter_tile < 0 || pic < it->second.resync))
    return ExchangeRoute{};  // nobody serves that picture
  const int node = owner_[size_t(dst_tile)];
  if (node < 0) return ExchangeRoute{};
  if (node == self_)
    return ExchangeRoute{ExchangeRoute::Kind::kLocal, node};
  return ExchangeRoute{ExchangeRoute::Kind::kRemote, node};
}

bool DecoderNode::serviceable(int src_tile, uint32_t pic) const {
  if (skips_.count(key(src_tile, pic))) return false;
  const auto it = dead_tiles_.find(src_tile);
  if (it == dead_tiles_.end()) return true;
  if (it->second.adopter_tile < 0) return false;
  return pic >= it->second.resync;
}

bool DecoderNode::halos_complete(int tile, uint32_t pic) const {
  const auto sit = scratch_.find(tile);
  PDW_CHECK(sit != scratch_.end() && sit->second.have_sp);
  const auto git = exchanges_.find(key(tile, pic));
  for (int src : sit->second.expected) {
    const bool got = git != exchanges_.end() && git->second.count(src);
    if (!got && serviceable(src, pic)) return false;
  }
  return true;
}

std::vector<ExchangeMsg> DecoderNode::take_exchanges(int tile, uint32_t pic) {
  std::vector<ExchangeMsg> out;
  const auto it = exchanges_.find(key(tile, pic));
  if (it == exchanges_.end()) return out;
  for (auto& [src, m] : it->second) {
    PDW_CHECK_EQ(int(m.dst_tile), tile);
    out.push_back(std::move(m));
  }
  exchanges_.erase(it);
  return out;
}

std::vector<Outgoing> DecoderNode::finish_picture(uint32_t pic) {
  sps_.erase(sps_.begin(), sps_.lower_bound(key(0, pic + 1)));
  exchanges_.erase(exchanges_.begin(),
                   exchanges_.lower_bound(key(0, pic + 1)));
  skips_.erase(skips_.begin(), skips_.lower_bound(key(0, pic + 1)));
  GoAheadAck ack;
  ack.pic_index = pic;
  ack.stream = opts_.stream;
  if (m_acks_sent_) m_acks_sent_->add();
  return {Outgoing{topo_.ack_target(pic), true, pack(ack)}};
}

std::vector<Outgoing> DecoderNode::finished() const {
  Finished fin;
  fin.tile = uint16_t(home_tile_);
  fin.stream = opts_.stream;
  return {Outgoing{topo_.root(), true, pack(fin)}};
}

}  // namespace pdw::proto
