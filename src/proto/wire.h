// Versioned typed wire codec for the Table-3 display-wall protocol.
//
// Every message that crosses a node boundary — in the threaded pipeline, the
// lockstep reference and the discrete-event simulator alike — is one of the
// typed structs below. Each encodes to a self-describing body
// ([version][type][stream][fields...]) and decodes defensively: decode()
// returns false on truncated, oversized, version-skewed or otherwise
// malformed bytes and never crashes (fuzz/fuzz_wire.cpp holds it to that).
//
// The `stream` byte is the StreamSession multiplexing tag (proto/session.h):
// one wall can interleave pictures from several independent elementary
// streams, and every protocol message names the stream it belongs to.
// Single-stream engines use stream 0 throughout.
//
// Transport mapping: a packed message also carries envelope fields (type,
// seq, aux, bulk) mirroring what transports key on — net::Message for the
// threaded fabric, the serial bus for lockstep, modeled transfers for the
// DES. pack() derives the envelope from the typed fields, so the two can
// never disagree.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <variant>
#include <vector>

#include "core/mei.h"
#include "mem/bytes.h"
#include "mpeg2/frame.h"

namespace pdw::core {
struct SubPicture;
}

namespace pdw::proto {

inline constexpr uint8_t kWireVersion = 2;

// Tile field value meaning "no tile" (e.g. a death notice with no adopter).
inline constexpr uint16_t kNoTile = 0xFFFF;

enum class MsgType : uint8_t {
  kPicture = 1,        // root -> splitter, bulk (coded picture + NSID)
  kSubPicture = 2,     // splitter -> decoder, bulk (sub-picture + MEI)
  kGoAheadAck = 3,     // decoder -> splitter (ANID) / splitter -> root
  kExchange = 4,       // decoder -> decoder (halo macroblocks)
  kEndOfStream = 5,    // root -> splitter
  kHeartbeat = 6,      // decoder -> root, fire-and-forget
  kFinished = 7,       // decoder -> root: stream done, stop monitoring me
  kDeathNotice = 8,    // root -> everyone (dead tile, adopter, resync)
  kSkipBroadcast = 9,  // splitter -> decoders: picture (tile, seq) is lost
  kStreamRequest = 10,  // tenant -> root: admit this stream (declared cost)
  kStreamReply = 11,    // root -> tenant: accept / reject / renegotiate
  kPartitionUpdate = 12,  // root -> everyone: new partition epoch's cut lines
  kCostReport = 13,       // splitter -> root: per-axis cost of one picture
};

const char* msg_type_name(MsgType t);

// --- Typed messages --------------------------------------------------------

// Root -> splitter: one coded picture, plus the NSID telling the splitter
// which of its peers owns the *next* picture (ack-redirection target).
struct PictureMsg {
  uint32_t pic_index = 0;
  uint16_t nsid = 0;  // (pic_index + 1) % k
  uint8_t stream = 0;
  // Partition epoch in force for this picture (0 on a static wall). The
  // splitter cuts the picture against this epoch's geometry, never its own
  // racing notion of "latest".
  uint32_t epoch = 0;
  // Verbatim picture span from the ES. Decoding a Packed body with the
  // Bytes overload makes this a view into the transport buffer.
  mem::Bytes coded;

  friend bool operator==(const PictureMsg&, const PictureMsg&) = default;
};

// Splitter -> decoder: the tile's sub-picture plus its MEI list. The
// sub-picture travels as its own serialized bytes (core::SubPicture wire
// format); the codec validates framing, not sub-picture internals.
struct SpMsg {
  uint32_t pic_index = 0;
  uint16_t tile = 0;
  uint8_t stream = 0;
  // Partition epoch the sub-picture was cut against: the receiving decoder
  // resolves tile rects and MEI peers in *this* epoch's owner map.
  uint32_t epoch = 0;
  mem::Bytes subpicture;  // core::SubPicture::serialize bytes (view on decode)
  std::vector<core::MeiInstruction> mei;

  friend bool operator==(const SpMsg&, const SpMsg&) = default;
};

// Decoder -> splitter (ANID redirection) and splitter -> root (go-ahead):
// "picture pic_index is consumed; the next one may flow".
struct GoAheadAck {
  uint32_t pic_index = 0;
  uint8_t stream = 0;

  friend bool operator==(const GoAheadAck&, const GoAheadAck&) = default;
};

// One halo macroblock in an exchange message. `tainted` is how degradation
// propagates across decoder boundaries: a peer that reconstructs from a
// tainted halo macroblock marks its own frame degraded too.
struct ExchangeEntry {
  core::MeiInstruction instr;  // op is kRecv on the wire
  bool tainted = false;
  mpeg2::MacroblockPixels px{};

  friend bool operator==(const ExchangeEntry& a, const ExchangeEntry& b) {
    return a.instr == b.instr && a.tainted == b.tainted &&
           std::memcmp(&a.px, &b.px, sizeof(a.px)) == 0;
  }
};

// Decoder -> decoder: the halo macroblocks `src_tile` serves to `dst_tile`
// for one picture (the MEI SEND executions, batched per destination).
struct ExchangeMsg {
  uint32_t pic_index = 0;
  uint16_t src_tile = 0;
  uint16_t dst_tile = 0;
  uint8_t stream = 0;
  std::vector<ExchangeEntry> entries;

  friend bool operator==(const ExchangeMsg&, const ExchangeMsg&) = default;
};

struct EndOfStream {
  uint8_t stream = 0;

  friend bool operator==(const EndOfStream&, const EndOfStream&) = default;
};

// Decoder -> root, fire-and-forget liveness beacon.
struct Heartbeat {
  uint16_t tile = 0;
  uint8_t stream = 0;

  friend bool operator==(const Heartbeat&, const Heartbeat&) = default;
};

// Decoder -> root: this node consumed the whole stream.
struct Finished {
  uint16_t tile = 0;
  uint8_t stream = 0;

  friend bool operator==(const Finished&, const Finished&) = default;
};

// Root -> everyone: `dead_tile`'s node is gone. Nobody serves its pictures
// before `resync_pic`; from there on `adopter_tile`'s node does (kNoTile:
// degraded mode, the tile stays frozen).
struct DeathNotice {
  uint16_t dead_tile = 0;
  uint16_t adopter_tile = kNoTile;
  uint32_t resync_pic = 0;
  uint8_t stream = 0;

  friend bool operator==(const DeathNotice&, const DeathNotice&) = default;
};

// Splitter -> decoders: picture `pic_index` of `tile` is lost (undeliverable
// or undecodable). The owner emits a frozen frame; neighbours conceal the
// halo data it would have sent.
struct SkipBroadcast {
  uint32_t pic_index = 0;
  uint16_t tile = 0;
  uint8_t stream = 0;

  friend bool operator==(const SkipBroadcast&, const SkipBroadcast&) = default;
};

// --- Adaptive partitioning -------------------------------------------------

// Root -> everyone: partition epoch `epoch` (cut lines on the macroblock
// grid, wall/partition.h) applies from picture `apply_from_pic` onward.
// Epochs are dense per stream; the root only ever rebalances at closed-GOP I
// pictures, so no picture >= apply_from_pic references a frame cut under an
// older epoch.
struct PartitionUpdateMsg {
  uint32_t epoch = 0;
  uint32_t apply_from_pic = 0;
  uint8_t stream = 0;
  std::vector<uint16_t> col_cuts_mb;  // m-1 strictly increasing interior cuts
  std::vector<uint16_t> row_cuts_mb;  // n-1 likewise

  friend bool operator==(const PartitionUpdateMsg&,
                         const PartitionUpdateMsg&) = default;
};

// Splitter -> root: the per-axis decode-cost profile of one split picture
// (core::SplitStats.cost_col/cost_row). Only sent when adaptive partitioning
// is enabled; the root accumulates profiles and runs the planner at GOP
// boundaries.
struct CostReportMsg {
  uint32_t pic_index = 0;
  uint8_t stream = 0;
  std::vector<uint32_t> col_cost;  // one entry per MB column
  std::vector<uint32_t> row_cost;  // one entry per MB row

  friend bool operator==(const CostReportMsg&, const CostReportMsg&) = default;
};

// --- Admission handshake (multi-tenant serving) ----------------------------

// QoS class of a tenant's stream. Lower classes degrade and shed first; the
// admission controller never degrades class N while class N+1 still has
// headroom to give up.
enum class PriorityClass : uint8_t {
  kBackground = 0,  // best-effort (preview walls, transcode feeds)
  kStandard = 1,    // normal interactive viewing
  kPremium = 2,     // contractual QoS: protected until everything else is shed
};

// Degradation ladder, in the order overload applies it. Skipping B pictures
// is free of drift (nothing references a B picture); kSkipP decodes only I
// pictures (a P picture's references would be stale); kFreeze holds the last
// displayed frame. Reverting is only bit-exact at a closed-GOP I picture, so
// the controller *raises* a stream's level immediately but *lowers* it
// lazily, at the next picture whose span carries a GOP header.
enum class DegradeLevel : uint8_t {
  kNone = 0,
  kSkipB = 1,
  kSkipP = 2,
  kFreeze = 3,
};

enum class AdmissionVerdict : uint8_t {
  kAccept = 0,
  kReject = 1,       // no capacity at any degrade level
  kRenegotiate = 2,  // admitted, but only at the granted degrade level
};

const char* priority_class_name(PriorityClass c);
const char* degrade_level_name(DegradeLevel l);
const char* admission_verdict_name(AdmissionVerdict v);

// Tenant -> root: admit stream `stream` with this declared cost. The root
// answers with a StreamReply naming the verdict; attach before an accept is
// a protocol error.
struct StreamRequest {
  uint16_t width_mb = 0;   // declared picture geometry, in macroblocks
  uint16_t height_mb = 0;
  uint16_t fps = 0;        // declared picture rate (deadline source)
  PriorityClass priority = PriorityClass::kStandard;
  uint8_t stream = 0;

  friend bool operator==(const StreamRequest&, const StreamRequest&) = default;
};

// Root -> tenant: the admission verdict. On kRenegotiate, `level` is the
// degrade level the stream is granted at (the tenant may attach at that
// level or walk away); on kAccept it is kNone; on kReject it is kFreeze
// (nothing would be decoded anyway).
struct StreamReply {
  AdmissionVerdict verdict = AdmissionVerdict::kReject;
  DegradeLevel level = DegradeLevel::kNone;
  uint8_t stream = 0;

  friend bool operator==(const StreamReply&, const StreamReply&) = default;
};

// --- Packing ---------------------------------------------------------------

// An encoded protocol message plus the envelope fields transports key on.
// seq/aux/bulk are derived from the typed message at pack() time — the
// envelope can never disagree with the body.
struct Packed {
  MsgType type = MsgType::kHeartbeat;
  uint8_t stream = 0;
  uint32_t seq = 0;   // picture index (0 when not applicable)
  uint16_t aux = 0;   // tile / NSID (0 when not applicable)
  bool bulk = false;  // consumes a posted receive buffer
  // Pooled, exact-size buffer: pack() knows every body size up front (the
  // *_wire_bytes() helpers), so encoding is a single pool pop + fill.
  mem::Bytes body;

  size_t wire_bytes() const { return body.size() + kEnvelopeBytes; }
  // Models GM's small-message header (same figure net::Message uses).
  static constexpr size_t kEnvelopeBytes = 16;
};

Packed pack(const PictureMsg& m);
Packed pack(const SpMsg& m);
// Zero-copy variants that serialize straight into the pooled body, skipping
// the intermediate PictureMsg::coded / SpMsg::subpicture buffer entirely —
// the hosts' hot-path encode.
Packed pack_picture(uint32_t pic_index, uint16_t nsid, uint8_t stream,
                    std::span<const uint8_t> coded, uint32_t epoch = 0);
Packed pack_sp(uint32_t pic_index, uint16_t tile, uint8_t stream,
               const core::SubPicture& sp,
               const std::vector<core::MeiInstruction>& mei,
               uint32_t epoch = 0);
Packed pack(const GoAheadAck& m);
Packed pack(const ExchangeMsg& m);
Packed pack(const EndOfStream& m);
Packed pack(const Heartbeat& m);
Packed pack(const Finished& m);
Packed pack(const DeathNotice& m);
Packed pack(const SkipBroadcast& m);
Packed pack(const StreamRequest& m);
Packed pack(const StreamReply& m);
Packed pack(const PartitionUpdateMsg& m);
Packed pack(const CostReportMsg& m);

// Strict typed decode: false on malformed input, never crashes. `data` is
// the body produced by pack() (including the version/type prefix).
bool decode(std::span<const uint8_t> data, PictureMsg* out);
bool decode(std::span<const uint8_t> data, SpMsg* out);
bool decode(std::span<const uint8_t> data, GoAheadAck* out);
bool decode(std::span<const uint8_t> data, ExchangeMsg* out);
bool decode(std::span<const uint8_t> data, EndOfStream* out);
bool decode(std::span<const uint8_t> data, Heartbeat* out);
bool decode(std::span<const uint8_t> data, Finished* out);
bool decode(std::span<const uint8_t> data, DeathNotice* out);
bool decode(std::span<const uint8_t> data, SkipBroadcast* out);
bool decode(std::span<const uint8_t> data, StreamRequest* out);
bool decode(std::span<const uint8_t> data, StreamReply* out);
bool decode(std::span<const uint8_t> data, PartitionUpdateMsg* out);
bool decode(std::span<const uint8_t> data, CostReportMsg* out);

// Zero-copy decode: bulk fields (PictureMsg::coded, SpMsg::subpicture)
// become views sharing `data`'s block instead of copies. The span overloads
// above still copy (fuzzers and tests hand in unpooled storage).
bool decode(const mem::Bytes& data, PictureMsg* out);
bool decode(const mem::Bytes& data, SpMsg* out);

using AnyMsg =
    std::variant<PictureMsg, SpMsg, GoAheadAck, ExchangeMsg, EndOfStream,
                 Heartbeat, Finished, DeathNotice, SkipBroadcast, StreamRequest,
                 StreamReply, PartitionUpdateMsg, CostReportMsg>;

// Dispatch on the body's type byte. nullopt on malformed input.
std::optional<AnyMsg> decode_any(std::span<const uint8_t> data);
// Bytes overload: bulk payload fields decode as views into `data`.
std::optional<AnyMsg> decode_any(const mem::Bytes& data);

// Accounting constants shared with the lockstep trace / DES cost model: the
// per-entry wire cost of a halo macroblock exchange (pixels + the 8-byte MEI
// instruction framing, as serialized by core::serialize_mei).
inline constexpr size_t kExchangeEntryWireBytes =
    sizeof(mpeg2::MacroblockPixels) + core::kMeiWireBytes;

// Body sizes of the bulk messages without building them (the serial engines
// deliver typed messages in memory and size them for accounting).
size_t sp_msg_wire_bytes(size_t subpicture_bytes, size_t mei_count);
size_t picture_msg_wire_bytes(size_t coded_bytes);
size_t exchange_msg_wire_bytes(size_t entry_count);
size_t partition_update_wire_bytes(size_t col_cuts, size_t row_cuts);
size_t cost_report_wire_bytes(size_t cols, size_t rows);

}  // namespace pdw::proto
