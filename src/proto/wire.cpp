#include "proto/wire.h"

#include <cstring>

#include "common/bytes.h"
#include "core/subpicture.h"

namespace pdw::proto {

namespace {

// Fixed body sizes of the non-bulk messages: [version][type][stream] + fields.
constexpr size_t kGoAheadBodyBytes = 3 + 4;
constexpr size_t kEndOfStreamBodyBytes = 3;
constexpr size_t kHeartbeatBodyBytes = 3 + 2;
constexpr size_t kFinishedBodyBytes = 3 + 2;
constexpr size_t kDeathNoticeBodyBytes = 3 + 2 + 2 + 4;
constexpr size_t kSkipBroadcastBodyBytes = 3 + 4 + 2;
constexpr size_t kStreamRequestBodyBytes = 3 + 2 + 2 + 2 + 1;
constexpr size_t kStreamReplyBodyBytes = 3 + 1 + 1;

// Allocate the exact-size pooled body and return a writer over it. The
// PDW_CHECK in finish_body catches any drift between the size helpers and
// the actual encoding.
ByteWriter body_writer(Packed* p, size_t body_bytes) {
  p->body = mem::Bytes::alloc(body_bytes);
  return ByteWriter(p->body.mutable_data(), body_bytes);
}

void finish_body(const Packed& p, const ByteWriter& w) {
  PDW_CHECK_EQ(w.size(), p.body.size());
}

// Defensive little-endian reader: every accessor reports failure instead of
// CHECK-crashing, so decode() survives arbitrary bytes (fuzz_wire.cpp).
class TryReader {
 public:
  explicit TryReader(std::span<const uint8_t> data) : data_(data) {}

  bool u8(uint8_t* v) { return read(v); }
  bool u16(uint16_t* v) { return read(v); }
  bool u32(uint32_t* v) { return read(v); }

  bool bytes(size_t n, std::span<const uint8_t>* out) {
    if (n > data_.size() - pos_) return false;
    *out = data_.subspan(pos_, n);
    pos_ += n;
    return true;
  }

  size_t pos() const { return pos_; }
  size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return pos_ == data_.size(); }

 private:
  template <typename T>
  bool read(T* v) {
    if (sizeof(T) > data_.size() - pos_) return false;
    std::memcpy(v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  std::span<const uint8_t> data_;
  size_t pos_ = 0;
};

// Every body begins [version][type][stream].
void put_prefix(ByteWriter* w, MsgType type, uint8_t stream) {
  w->u8(kWireVersion);
  w->u8(uint8_t(type));
  w->u8(stream);
}

bool take_prefix(TryReader* r, MsgType want, uint8_t* stream) {
  uint8_t version = 0, type = 0;
  if (!r->u8(&version) || !r->u8(&type) || !r->u8(stream)) return false;
  return version == kWireVersion && type == uint8_t(want);
}

constexpr size_t kEntryBytes = kExchangeEntryWireBytes;
static_assert(kEntryBytes == 392);

// An exchange entry rides the 8-byte MEI instruction framing; the tainted
// flag lives in the op byte's high bit so the entry cost stays exactly
// kExchangeEntryWireBytes.
void put_entry(ByteWriter* w, const ExchangeEntry& e) {
  w->u8(uint8_t(uint8_t(core::MeiOp::kRecv) | (e.tainted ? 0x80 : 0)));
  w->u8(e.instr.ref);
  w->u16(e.instr.mb_x);
  w->u16(e.instr.mb_y);
  w->u16(e.instr.peer);
  w->bytes(std::span<const uint8_t>(
      reinterpret_cast<const uint8_t*>(&e.px), sizeof(e.px)));
}

bool take_entry(TryReader* r, ExchangeEntry* e) {
  uint8_t op = 0;
  if (!r->u8(&op)) return false;
  e->tainted = (op & 0x80) != 0;
  if ((op & 0x7F) != uint8_t(core::MeiOp::kRecv)) return false;
  e->instr.op = core::MeiOp::kRecv;
  std::span<const uint8_t> px;
  if (!r->u8(&e->instr.ref) || !r->u16(&e->instr.mb_x) ||
      !r->u16(&e->instr.mb_y) || !r->u16(&e->instr.peer) ||
      !r->bytes(sizeof(e->px), &px))
    return false;
  std::memcpy(&e->px, px.data(), sizeof(e->px));
  return true;
}

}  // namespace

const char* msg_type_name(MsgType t) {
  switch (t) {
    case MsgType::kPicture: return "picture";
    case MsgType::kSubPicture: return "sub-picture";
    case MsgType::kGoAheadAck: return "go-ahead/ack";
    case MsgType::kExchange: return "exchange";
    case MsgType::kEndOfStream: return "end-of-stream";
    case MsgType::kHeartbeat: return "heartbeat";
    case MsgType::kFinished: return "finished";
    case MsgType::kDeathNotice: return "death-notice";
    case MsgType::kSkipBroadcast: return "skip";
    case MsgType::kStreamRequest: return "stream-request";
    case MsgType::kStreamReply: return "stream-reply";
    case MsgType::kPartitionUpdate: return "partition-update";
    case MsgType::kCostReport: return "cost-report";
  }
  return "unknown";
}

const char* priority_class_name(PriorityClass c) {
  switch (c) {
    case PriorityClass::kBackground: return "background";
    case PriorityClass::kStandard: return "standard";
    case PriorityClass::kPremium: return "premium";
  }
  return "unknown";
}

const char* degrade_level_name(DegradeLevel l) {
  switch (l) {
    case DegradeLevel::kNone: return "full";
    case DegradeLevel::kSkipB: return "skip-B";
    case DegradeLevel::kSkipP: return "skip-P";
    case DegradeLevel::kFreeze: return "freeze";
  }
  return "unknown";
}

const char* admission_verdict_name(AdmissionVerdict v) {
  switch (v) {
    case AdmissionVerdict::kAccept: return "accept";
    case AdmissionVerdict::kReject: return "reject";
    case AdmissionVerdict::kRenegotiate: return "renegotiate";
  }
  return "unknown";
}

// --- PictureMsg ------------------------------------------------------------

Packed pack_picture(uint32_t pic_index, uint16_t nsid, uint8_t stream,
                    std::span<const uint8_t> coded, uint32_t epoch) {
  Packed p;
  p.type = MsgType::kPicture;
  p.stream = stream;
  p.seq = pic_index;
  p.aux = nsid;
  p.bulk = true;
  ByteWriter w = body_writer(&p, picture_msg_wire_bytes(coded.size()));
  put_prefix(&w, MsgType::kPicture, stream);
  w.u32(pic_index);
  w.u16(nsid);
  w.u32(epoch);
  w.u32(uint32_t(coded.size()));
  w.bytes(coded);
  finish_body(p, w);
  return p;
}

Packed pack(const PictureMsg& m) {
  return pack_picture(m.pic_index, m.nsid, m.stream, m.coded, m.epoch);
}

namespace {

bool decode_picture(std::span<const uint8_t> data, const mem::Bytes* parent,
                    PictureMsg* out) {
  TryReader r(data);
  uint32_t len = 0;
  std::span<const uint8_t> coded;
  if (!take_prefix(&r, MsgType::kPicture, &out->stream) ||
      !r.u32(&out->pic_index) || !r.u16(&out->nsid) || !r.u32(&out->epoch) ||
      !r.u32(&len) || len != r.remaining())
    return false;
  const size_t off = r.pos();
  if (!r.bytes(len, &coded)) return false;
  out->coded = parent ? parent->view(off, len) : mem::Bytes::copy_of(coded);
  return r.done();
}

}  // namespace

bool decode(std::span<const uint8_t> data, PictureMsg* out) {
  return decode_picture(data, nullptr, out);
}

bool decode(const mem::Bytes& data, PictureMsg* out) {
  return decode_picture(data.span(), &data, out);
}

// --- SpMsg -----------------------------------------------------------------

namespace {

void put_mei_list(ByteWriter* w, const std::vector<core::MeiInstruction>& mei) {
  w->u32(uint32_t(mei.size()));
  for (const core::MeiInstruction& i : mei) {
    w->u8(uint8_t(i.op));
    w->u8(i.ref);
    w->u16(i.mb_x);
    w->u16(i.mb_y);
    w->u16(i.peer);
  }
}

void put_sp_header(ByteWriter* w, uint32_t pic_index, uint16_t tile,
                   uint8_t stream, uint32_t epoch, size_t sp_len) {
  put_prefix(w, MsgType::kSubPicture, stream);
  w->u32(pic_index);
  w->u16(tile);
  w->u32(epoch);
  w->u32(uint32_t(sp_len));
}

Packed sp_envelope(uint32_t pic_index, uint16_t tile, uint8_t stream) {
  Packed p;
  p.type = MsgType::kSubPicture;
  p.stream = stream;
  p.seq = pic_index;
  p.aux = tile;
  p.bulk = true;
  return p;
}

}  // namespace

Packed pack(const SpMsg& m) {
  Packed p = sp_envelope(m.pic_index, m.tile, m.stream);
  ByteWriter w =
      body_writer(&p, sp_msg_wire_bytes(m.subpicture.size(), m.mei.size()));
  put_sp_header(&w, m.pic_index, m.tile, m.stream, m.epoch,
                m.subpicture.size());
  w.bytes(m.subpicture);
  put_mei_list(&w, m.mei);
  finish_body(p, w);
  return p;
}

Packed pack_sp(uint32_t pic_index, uint16_t tile, uint8_t stream,
               const core::SubPicture& sp,
               const std::vector<core::MeiInstruction>& mei, uint32_t epoch) {
  Packed p = sp_envelope(pic_index, tile, stream);
  const size_t sp_len = sp.wire_bytes();
  ByteWriter w = body_writer(&p, sp_msg_wire_bytes(sp_len, mei.size()));
  put_sp_header(&w, pic_index, tile, stream, epoch, sp_len);
  sp.serialize_into(&w);
  put_mei_list(&w, mei);
  finish_body(p, w);
  return p;
}

namespace {

bool decode_sp(std::span<const uint8_t> data, const mem::Bytes* parent,
               SpMsg* out) {
  TryReader r(data);
  uint32_t sp_len = 0, mei_count = 0;
  std::span<const uint8_t> sp;
  if (!take_prefix(&r, MsgType::kSubPicture, &out->stream) ||
      !r.u32(&out->pic_index) || !r.u16(&out->tile) || !r.u32(&out->epoch) ||
      !r.u32(&sp_len))
    return false;
  const size_t off = r.pos();
  if (!r.bytes(sp_len, &sp) || !r.u32(&mei_count) ||
      size_t(mei_count) * core::kMeiWireBytes != r.remaining())
    return false;
  out->subpicture =
      parent ? parent->view(off, sp_len) : mem::Bytes::copy_of(sp);
  out->mei.resize(mei_count);
  for (core::MeiInstruction& i : out->mei) {
    uint8_t op = 0;
    if (!r.u8(&op) || op > uint8_t(core::MeiOp::kConceal)) return false;
    i.op = core::MeiOp(op);
    if (!r.u8(&i.ref) || !r.u16(&i.mb_x) || !r.u16(&i.mb_y) || !r.u16(&i.peer))
      return false;
  }
  return r.done();
}

}  // namespace

bool decode(std::span<const uint8_t> data, SpMsg* out) {
  return decode_sp(data, nullptr, out);
}

bool decode(const mem::Bytes& data, SpMsg* out) {
  return decode_sp(data.span(), &data, out);
}

size_t sp_msg_wire_bytes(size_t subpicture_bytes, size_t mei_count) {
  return 3 /*prefix*/ + 4 /*pic*/ + 2 /*tile*/ + 4 /*epoch*/ + 4 +
         subpicture_bytes + 4 + mei_count * core::kMeiWireBytes;
}

size_t picture_msg_wire_bytes(size_t coded_bytes) {
  return 3 /*prefix*/ + 4 /*pic*/ + 2 /*nsid*/ + 4 /*epoch*/ + 4 + coded_bytes;
}

size_t exchange_msg_wire_bytes(size_t entry_count) {
  return 3 /*prefix*/ + 4 /*pic*/ + 2 /*src*/ + 2 /*dst*/ + 4 +
         entry_count * kExchangeEntryWireBytes;
}

size_t partition_update_wire_bytes(size_t col_cuts, size_t row_cuts) {
  return 3 /*prefix*/ + 4 /*epoch*/ + 4 /*apply_from*/ + 2 + 2 +
         (col_cuts + row_cuts) * 2;
}

size_t cost_report_wire_bytes(size_t cols, size_t rows) {
  return 3 /*prefix*/ + 4 /*pic*/ + 2 + 2 + (cols + rows) * 4;
}

// --- GoAheadAck ------------------------------------------------------------

Packed pack(const GoAheadAck& m) {
  Packed p;
  p.type = MsgType::kGoAheadAck;
  p.stream = m.stream;
  p.seq = m.pic_index;
  ByteWriter w = body_writer(&p, kGoAheadBodyBytes);
  put_prefix(&w, MsgType::kGoAheadAck, m.stream);
  w.u32(m.pic_index);
  finish_body(p, w);
  return p;
}

bool decode(std::span<const uint8_t> data, GoAheadAck* out) {
  TryReader r(data);
  return take_prefix(&r, MsgType::kGoAheadAck, &out->stream) &&
         r.u32(&out->pic_index) && r.done();
}

// --- ExchangeMsg -----------------------------------------------------------

Packed pack(const ExchangeMsg& m) {
  Packed p;
  p.type = MsgType::kExchange;
  p.stream = m.stream;
  p.seq = m.pic_index;
  p.aux = m.src_tile;
  ByteWriter w = body_writer(&p, exchange_msg_wire_bytes(m.entries.size()));
  put_prefix(&w, MsgType::kExchange, m.stream);
  w.u32(m.pic_index);
  w.u16(m.src_tile);
  w.u16(m.dst_tile);
  w.u32(uint32_t(m.entries.size()));
  for (const ExchangeEntry& e : m.entries) put_entry(&w, e);
  finish_body(p, w);
  return p;
}

bool decode(std::span<const uint8_t> data, ExchangeMsg* out) {
  TryReader r(data);
  uint32_t count = 0;
  if (!take_prefix(&r, MsgType::kExchange, &out->stream) ||
      !r.u32(&out->pic_index) || !r.u16(&out->src_tile) ||
      !r.u16(&out->dst_tile) || !r.u32(&count) ||
      size_t(count) * kEntryBytes != r.remaining())
    return false;
  out->entries.resize(count);
  for (ExchangeEntry& e : out->entries)
    if (!take_entry(&r, &e)) return false;
  return r.done();
}

// --- EndOfStream -----------------------------------------------------------

Packed pack(const EndOfStream& m) {
  Packed p;
  p.type = MsgType::kEndOfStream;
  p.stream = m.stream;
  ByteWriter w = body_writer(&p, kEndOfStreamBodyBytes);
  put_prefix(&w, MsgType::kEndOfStream, m.stream);
  finish_body(p, w);
  return p;
}

bool decode(std::span<const uint8_t> data, EndOfStream* out) {
  TryReader r(data);
  return take_prefix(&r, MsgType::kEndOfStream, &out->stream) && r.done();
}

// --- Heartbeat -------------------------------------------------------------

Packed pack(const Heartbeat& m) {
  Packed p;
  p.type = MsgType::kHeartbeat;
  p.stream = m.stream;
  p.aux = m.tile;
  ByteWriter w = body_writer(&p, kHeartbeatBodyBytes);
  put_prefix(&w, MsgType::kHeartbeat, m.stream);
  w.u16(m.tile);
  finish_body(p, w);
  return p;
}

bool decode(std::span<const uint8_t> data, Heartbeat* out) {
  TryReader r(data);
  return take_prefix(&r, MsgType::kHeartbeat, &out->stream) &&
         r.u16(&out->tile) && r.done();
}

// --- Finished --------------------------------------------------------------

Packed pack(const Finished& m) {
  Packed p;
  p.type = MsgType::kFinished;
  p.stream = m.stream;
  p.aux = m.tile;
  ByteWriter w = body_writer(&p, kFinishedBodyBytes);
  put_prefix(&w, MsgType::kFinished, m.stream);
  w.u16(m.tile);
  finish_body(p, w);
  return p;
}

bool decode(std::span<const uint8_t> data, Finished* out) {
  TryReader r(data);
  return take_prefix(&r, MsgType::kFinished, &out->stream) &&
         r.u16(&out->tile) && r.done();
}

// --- DeathNotice -----------------------------------------------------------

Packed pack(const DeathNotice& m) {
  Packed p;
  p.type = MsgType::kDeathNotice;
  p.stream = m.stream;
  p.seq = m.resync_pic;
  p.aux = m.dead_tile;
  ByteWriter w = body_writer(&p, kDeathNoticeBodyBytes);
  put_prefix(&w, MsgType::kDeathNotice, m.stream);
  w.u16(m.dead_tile);
  w.u16(m.adopter_tile);
  w.u32(m.resync_pic);
  finish_body(p, w);
  return p;
}

bool decode(std::span<const uint8_t> data, DeathNotice* out) {
  TryReader r(data);
  return take_prefix(&r, MsgType::kDeathNotice, &out->stream) &&
         r.u16(&out->dead_tile) && r.u16(&out->adopter_tile) &&
         r.u32(&out->resync_pic) && r.done();
}

// --- SkipBroadcast ---------------------------------------------------------

Packed pack(const SkipBroadcast& m) {
  Packed p;
  p.type = MsgType::kSkipBroadcast;
  p.stream = m.stream;
  p.seq = m.pic_index;
  p.aux = m.tile;
  ByteWriter w = body_writer(&p, kSkipBroadcastBodyBytes);
  put_prefix(&w, MsgType::kSkipBroadcast, m.stream);
  w.u32(m.pic_index);
  w.u16(m.tile);
  finish_body(p, w);
  return p;
}

bool decode(std::span<const uint8_t> data, SkipBroadcast* out) {
  TryReader r(data);
  return take_prefix(&r, MsgType::kSkipBroadcast, &out->stream) &&
         r.u32(&out->pic_index) && r.u16(&out->tile) && r.done();
}

// --- StreamRequest ---------------------------------------------------------

Packed pack(const StreamRequest& m) {
  Packed p;
  p.type = MsgType::kStreamRequest;
  p.stream = m.stream;
  p.aux = uint16_t(m.priority);
  ByteWriter w = body_writer(&p, kStreamRequestBodyBytes);
  put_prefix(&w, MsgType::kStreamRequest, m.stream);
  w.u16(m.width_mb);
  w.u16(m.height_mb);
  w.u16(m.fps);
  w.u8(uint8_t(m.priority));
  finish_body(p, w);
  return p;
}

bool decode(std::span<const uint8_t> data, StreamRequest* out) {
  TryReader r(data);
  uint8_t priority = 0;
  if (!take_prefix(&r, MsgType::kStreamRequest, &out->stream) ||
      !r.u16(&out->width_mb) || !r.u16(&out->height_mb) || !r.u16(&out->fps) ||
      !r.u8(&priority) || !r.done())
    return false;
  if (priority > uint8_t(PriorityClass::kPremium)) return false;
  out->priority = PriorityClass(priority);
  return true;
}

// --- StreamReply -----------------------------------------------------------

Packed pack(const StreamReply& m) {
  Packed p;
  p.type = MsgType::kStreamReply;
  p.stream = m.stream;
  p.aux = uint16_t(m.verdict);
  ByteWriter w = body_writer(&p, kStreamReplyBodyBytes);
  put_prefix(&w, MsgType::kStreamReply, m.stream);
  w.u8(uint8_t(m.verdict));
  w.u8(uint8_t(m.level));
  finish_body(p, w);
  return p;
}

bool decode(std::span<const uint8_t> data, StreamReply* out) {
  TryReader r(data);
  uint8_t verdict = 0, level = 0;
  if (!take_prefix(&r, MsgType::kStreamReply, &out->stream) ||
      !r.u8(&verdict) || !r.u8(&level) || !r.done())
    return false;
  if (verdict > uint8_t(AdmissionVerdict::kRenegotiate) ||
      level > uint8_t(DegradeLevel::kFreeze))
    return false;
  out->verdict = AdmissionVerdict(verdict);
  out->level = DegradeLevel(level);
  return true;
}

// --- PartitionUpdateMsg ----------------------------------------------------

Packed pack(const PartitionUpdateMsg& m) {
  Packed p;
  p.type = MsgType::kPartitionUpdate;
  p.stream = m.stream;
  p.seq = m.apply_from_pic;
  p.aux = uint16_t(m.epoch);
  ByteWriter w = body_writer(
      &p, partition_update_wire_bytes(m.col_cuts_mb.size(), m.row_cuts_mb.size()));
  put_prefix(&w, MsgType::kPartitionUpdate, m.stream);
  w.u32(m.epoch);
  w.u32(m.apply_from_pic);
  w.u16(uint16_t(m.col_cuts_mb.size()));
  w.u16(uint16_t(m.row_cuts_mb.size()));
  for (uint16_t c : m.col_cuts_mb) w.u16(c);
  for (uint16_t c : m.row_cuts_mb) w.u16(c);
  finish_body(p, w);
  return p;
}

bool decode(std::span<const uint8_t> data, PartitionUpdateMsg* out) {
  TryReader r(data);
  uint16_t cols = 0, rows = 0;
  if (!take_prefix(&r, MsgType::kPartitionUpdate, &out->stream) ||
      !r.u32(&out->epoch) || !r.u32(&out->apply_from_pic) || !r.u16(&cols) ||
      !r.u16(&rows) || (size_t(cols) + rows) * 2 != r.remaining())
    return false;
  out->col_cuts_mb.resize(cols);
  out->row_cuts_mb.resize(rows);
  for (uint16_t& c : out->col_cuts_mb)
    if (!r.u16(&c)) return false;
  for (uint16_t& c : out->row_cuts_mb)
    if (!r.u16(&c)) return false;
  // Cut lines must strictly increase from a nonzero start: reject malformed
  // partitions here so state machines never install an invalid geometry.
  const auto increasing = [](const std::vector<uint16_t>& v) {
    for (size_t i = 0; i < v.size(); ++i)
      if (v[i] == 0 || (i > 0 && v[i] <= v[i - 1])) return false;
    return true;
  };
  return increasing(out->col_cuts_mb) && increasing(out->row_cuts_mb) &&
         r.done();
}

// --- CostReportMsg ---------------------------------------------------------

Packed pack(const CostReportMsg& m) {
  Packed p;
  p.type = MsgType::kCostReport;
  p.stream = m.stream;
  p.seq = m.pic_index;
  ByteWriter w = body_writer(
      &p, cost_report_wire_bytes(m.col_cost.size(), m.row_cost.size()));
  put_prefix(&w, MsgType::kCostReport, m.stream);
  w.u32(m.pic_index);
  w.u16(uint16_t(m.col_cost.size()));
  w.u16(uint16_t(m.row_cost.size()));
  for (uint32_t c : m.col_cost) w.u32(c);
  for (uint32_t c : m.row_cost) w.u32(c);
  finish_body(p, w);
  return p;
}

bool decode(std::span<const uint8_t> data, CostReportMsg* out) {
  TryReader r(data);
  uint16_t cols = 0, rows = 0;
  if (!take_prefix(&r, MsgType::kCostReport, &out->stream) ||
      !r.u32(&out->pic_index) || !r.u16(&cols) || !r.u16(&rows) ||
      (size_t(cols) + rows) * 4 != r.remaining())
    return false;
  out->col_cost.resize(cols);
  out->row_cost.resize(rows);
  for (uint32_t& c : out->col_cost)
    if (!r.u32(&c)) return false;
  for (uint32_t& c : out->row_cost)
    if (!r.u32(&c)) return false;
  return r.done();
}

// --- decode_any ------------------------------------------------------------

std::optional<AnyMsg> decode_any(std::span<const uint8_t> data) {
  if (data.size() < 2) return std::nullopt;
  const auto type = MsgType(data[1]);
  const auto try_decode = [&](auto msg) -> std::optional<AnyMsg> {
    if (!decode(data, &msg)) return std::nullopt;
    return AnyMsg(std::move(msg));
  };
  switch (type) {
    case MsgType::kPicture: return try_decode(PictureMsg{});
    case MsgType::kSubPicture: return try_decode(SpMsg{});
    case MsgType::kGoAheadAck: return try_decode(GoAheadAck{});
    case MsgType::kExchange: return try_decode(ExchangeMsg{});
    case MsgType::kEndOfStream: return try_decode(EndOfStream{});
    case MsgType::kHeartbeat: return try_decode(Heartbeat{});
    case MsgType::kFinished: return try_decode(Finished{});
    case MsgType::kDeathNotice: return try_decode(DeathNotice{});
    case MsgType::kSkipBroadcast: return try_decode(SkipBroadcast{});
    case MsgType::kStreamRequest: return try_decode(StreamRequest{});
    case MsgType::kStreamReply: return try_decode(StreamReply{});
    case MsgType::kPartitionUpdate: return try_decode(PartitionUpdateMsg{});
    case MsgType::kCostReport: return try_decode(CostReportMsg{});
  }
  return std::nullopt;
}

std::optional<AnyMsg> decode_any(const mem::Bytes& data) {
  if (data.size() < 2) return std::nullopt;
  // Only the two bulk types carry payloads worth viewing; everything else
  // takes the span path.
  switch (MsgType(data[1])) {
    case MsgType::kPicture: {
      PictureMsg m;
      if (!decode(data, &m)) return std::nullopt;
      return AnyMsg(std::move(m));
    }
    case MsgType::kSubPicture: {
      SpMsg m;
      if (!decode(data, &m)) return std::nullopt;
      return AnyMsg(std::move(m));
    }
    default:
      return decode_any(data.span());
  }
}

}  // namespace pdw::proto
