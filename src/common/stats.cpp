#include "common/stats.h"

#include <algorithm>
#include <cstdio>

namespace pdw {

void RunningStat::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / double(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

std::string human_bytes(double bytes) {
  static const char* kUnits[] = {"B", "KB", "MB", "GB", "TB"};
  int unit = 0;
  while (bytes >= 1024.0 && unit < 4) {
    bytes /= 1024.0;
    ++unit;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f %s", bytes, kUnits[unit]);
  return buf;
}

}  // namespace pdw
