#include "common/text_table.h"

#include <cstdarg>

#include "common/check.h"

namespace pdw {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  PDW_CHECK_EQ(cells.size(), header_.size());
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::FILE* out) const {
  std::vector<size_t> width(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (size_t c = 0; c < row.size(); ++c)
      if (row[c].size() > width[c]) width[c] = row[c].size();

  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c)
      std::fprintf(out, "%s%-*s", c ? "  " : "", int(width[c]), row[c].c_str());
    std::fputc('\n', out);
  };

  print_row(header_);
  size_t total = 0;
  for (size_t c = 0; c < width.size(); ++c) total += width[c] + (c ? 2 : 0);
  for (size_t i = 0; i < total; ++i) std::fputc('-', out);
  std::fputc('\n', out);
  for (const auto& row : rows_) print_row(row);
}

void TextTable::print_csv(std::FILE* out) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c)
      std::fprintf(out, "%s%s", c ? "," : "", row[c].c_str());
    std::fputc('\n', out);
  };
  print_row(header_);
  for (const auto& row : rows_) print_row(row);
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out(n > 0 ? size_t(n) : 0, '\0');
  if (n > 0) std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  va_end(args);
  return out;
}

}  // namespace pdw
