// Little-endian byte-level serialization helpers for wire formats
// (sub-pictures, MEI lists, stream info messages).
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "common/check.h"

namespace pdw {

class ByteWriter {
 public:
  explicit ByteWriter(std::vector<uint8_t>* out) : out_(out) {}

  void u8(uint8_t v) { out_->push_back(v); }
  void u16(uint16_t v) { append(&v, 2); }
  void u32(uint32_t v) { append(&v, 4); }
  void u64(uint64_t v) { append(&v, 8); }
  void i16(int16_t v) { append(&v, 2); }
  void i32(int32_t v) { append(&v, 4); }
  void f64(double v) { append(&v, 8); }

  void bytes(std::span<const uint8_t> data) {
    out_->insert(out_->end(), data.begin(), data.end());
  }

  size_t size() const { return out_->size(); }

 private:
  void append(const void* p, size_t n) {
    const auto* b = static_cast<const uint8_t*>(p);
    out_->insert(out_->end(), b, b + n);  // host is little-endian (x86/ARM LE)
  }
  std::vector<uint8_t>* out_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const uint8_t> data) : data_(data) {}

  uint8_t u8() { return read<uint8_t>(); }
  uint16_t u16() { return read<uint16_t>(); }
  uint32_t u32() { return read<uint32_t>(); }
  uint64_t u64() { return read<uint64_t>(); }
  int16_t i16() { return read<int16_t>(); }
  int32_t i32() { return read<int32_t>(); }
  double f64() { return read<double>(); }

  std::span<const uint8_t> bytes(size_t n) {
    PDW_CHECK_LE(pos_ + n, data_.size());
    auto s = data_.subspan(pos_, n);
    pos_ += n;
    return s;
  }

  size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return pos_ == data_.size(); }

 private:
  template <typename T>
  T read() {
    PDW_CHECK_LE(pos_ + sizeof(T), data_.size());
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  std::span<const uint8_t> data_;
  size_t pos_ = 0;
};

}  // namespace pdw
