// Little-endian byte-level serialization helpers for wire formats
// (sub-pictures, MEI lists, stream info messages).
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "common/check.h"

namespace pdw {

// Two modes: append to a growable vector, or write into a fixed-capacity
// raw buffer (the pooled-serialization path, where the caller sized the
// buffer exactly via the *_wire_bytes() helpers and overflow is a bug).
class ByteWriter {
 public:
  explicit ByteWriter(std::vector<uint8_t>* out) : out_(out) {}
  ByteWriter(uint8_t* buf, size_t capacity) : buf_(buf), cap_(capacity) {}

  void u8(uint8_t v) { append(&v, 1); }
  void u16(uint16_t v) { append(&v, 2); }
  void u32(uint32_t v) { append(&v, 4); }
  void u64(uint64_t v) { append(&v, 8); }
  void i16(int16_t v) { append(&v, 2); }
  void i32(int32_t v) { append(&v, 4); }
  void f64(double v) { append(&v, 8); }

  void bytes(std::span<const uint8_t> data) {
    append(data.data(), data.size());
  }

  size_t size() const { return out_ ? out_->size() : pos_; }

 private:
  void append(const void* p, size_t n) {
    if (n == 0) return;
    const auto* b = static_cast<const uint8_t*>(p);
    if (out_) {
      out_->insert(out_->end(), b, b + n);  // host is little-endian (x86/ARM LE)
    } else {
      PDW_CHECK_LE(pos_ + n, cap_);
      std::memcpy(buf_ + pos_, b, n);
      pos_ += n;
    }
  }

  std::vector<uint8_t>* out_ = nullptr;
  uint8_t* buf_ = nullptr;
  size_t cap_ = 0;
  size_t pos_ = 0;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const uint8_t> data) : data_(data) {}

  uint8_t u8() { return read<uint8_t>(); }
  uint16_t u16() { return read<uint16_t>(); }
  uint32_t u32() { return read<uint32_t>(); }
  uint64_t u64() { return read<uint64_t>(); }
  int16_t i16() { return read<int16_t>(); }
  int32_t i32() { return read<int32_t>(); }
  double f64() { return read<double>(); }

  std::span<const uint8_t> bytes(size_t n) {
    PDW_CHECK_LE(pos_ + n, data_.size());
    auto s = data_.subspan(pos_, n);
    pos_ += n;
    return s;
  }

  size_t pos() const { return pos_; }
  size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return pos_ == data_.size(); }

 private:
  template <typename T>
  T read() {
    PDW_CHECK_LE(pos_ + sizeof(T), data_.size());
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  std::span<const uint8_t> data_;
  size_t pos_ = 0;
};

}  // namespace pdw
