// Aligned text-table and CSV printer shared by all benchmark harnesses so
// that every reproduced paper table/figure prints in a uniform format.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace pdw {

// Collects rows of strings and prints them as an aligned table and/or CSV.
//
//   TextTable t({"config", "fps", "Mpps"});
//   t.add_row({"1-4-(4,4)", format("%.1f", fps), ...});
//   t.print(stdout);
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  // Aligned human-readable table.
  void print(std::FILE* out) const;

  // Machine-readable CSV (for plotting scripts).
  void print_csv(std::FILE* out) const;

  size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// printf-style std::string formatter.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace pdw
