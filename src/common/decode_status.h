// Typed result for the hot parse paths.
//
// A corrupt bitstream is an expected, localized event — not an exception.
// Parse functions on the per-macroblock path return a DecodeStatus instead
// of unwinding, carrying what went wrong, where (absolute bit position in
// the buffer being parsed), and how much of the stream is poisoned (the
// severity ladder). Callers contain the damage at the matching boundary:
// a kSlice error conceals the rest of the slice and resyncs at the next
// slice start code; a kPicture error drops/skips the picture; a kStream
// error abandons the stream.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>

namespace pdw {

enum class DecodeErr {
  kOk = 0,
  kBadVlc,        // no entry in a VLC table matched the peeked window
  kBadValue,      // a fixed-length field decoded to a forbidden value
  kOverrun,       // the reader consumed bits past the end of the buffer
  kTruncated,     // a structure announced more bytes than the buffer holds
  kBadStructure,  // start codes / syntax elements in an impossible order
  kUnsupported,   // legal MPEG-2 but outside this decoder's profile subset
};

// How much of the stream an error poisons. Ordered: higher is worse.
enum class DecodeSeverity {
  kNone = 0,
  kSlice,    // contained by slice resync + macroblock concealment
  kPicture,  // picture undecodable; drop it and broadcast a skip
  kStream,   // nothing after this point can be trusted
};

struct DecodeStatus {
  DecodeErr code = DecodeErr::kOk;
  DecodeSeverity severity = DecodeSeverity::kNone;
  size_t bit_pos = 0;  // where the damage was detected

  bool ok() const { return code == DecodeErr::kOk; }
  explicit operator bool() const { return ok(); }

  static DecodeStatus success() { return {}; }
  static DecodeStatus error(DecodeErr code, DecodeSeverity severity,
                            size_t bit_pos) {
    return {code, severity, bit_pos};
  }
  // Re-tag an error with a worse severity as it climbs the ladder (a slice
  // error in the first slice's header may doom the whole picture, etc.).
  DecodeStatus escalate(DecodeSeverity s) const {
    DecodeStatus r = *this;
    if (s > r.severity) r.severity = s;
    return r;
  }
};

inline const char* to_string(DecodeErr e) {
  switch (e) {
    case DecodeErr::kOk: return "ok";
    case DecodeErr::kBadVlc: return "bad-vlc";
    case DecodeErr::kBadValue: return "bad-value";
    case DecodeErr::kOverrun: return "overrun";
    case DecodeErr::kTruncated: return "truncated";
    case DecodeErr::kBadStructure: return "bad-structure";
    case DecodeErr::kUnsupported: return "unsupported";
  }
  return "?";
}

inline const char* to_string(DecodeSeverity s) {
  switch (s) {
    case DecodeSeverity::kNone: return "none";
    case DecodeSeverity::kSlice: return "slice";
    case DecodeSeverity::kPicture: return "picture";
    case DecodeSeverity::kStream: return "stream";
  }
  return "?";
}

inline std::ostream& operator<<(std::ostream& os, const DecodeStatus& s) {
  if (s.ok()) return os << "ok";
  return os << to_string(s.code) << "/" << to_string(s.severity) << "@bit "
            << s.bit_pos;
}

}  // namespace pdw
