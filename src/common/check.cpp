#include "common/check.h"

namespace pdw {

void check_failed(const char* file, int line, const char* expr,
                  const std::string& extra) {
  std::ostringstream os;
  os << "CHECK failed at " << file << ":" << line << ": " << expr;
  if (!extra.empty()) os << " " << extra;
  throw InternalError(os.str());
}

void bitstream_check_failed(const char* file, int line, const char* expr,
                            const std::string& extra) {
  std::ostringstream os;
  os << "bitstream check failed at " << file << ":" << line << ": " << expr;
  if (!extra.empty()) os << " " << extra;
  throw BitstreamError(os.str());
}

}  // namespace pdw
