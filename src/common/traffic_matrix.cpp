#include "common/traffic_matrix.h"

namespace pdw {
namespace {

std::string kib(uint64_t bytes) {
  if (bytes == 0) return ".";
  return format("%.1f", double(bytes) / 1024.0);
}

}  // namespace

TextTable TrafficMatrix::to_table(
    const std::function<std::string(int)>& node_name) const {
  auto name = [&](int n) {
    return node_name ? node_name(n) : format("%d", n);
  };

  std::vector<std::string> header;
  header.push_back("KiB src\\dst");
  for (int d = 0; d < nodes_; ++d) header.push_back(name(d));
  header.push_back("SEND");
  TextTable t(std::move(header));

  for (int s = 0; s < nodes_; ++s) {
    std::vector<std::string> row;
    row.push_back(name(s));
    for (int d = 0; d < nodes_; ++d) row.push_back(kib(at(s, d)));
    row.push_back(kib(sent_by(s)));
    t.add_row(std::move(row));
  }

  std::vector<std::string> recv;
  recv.push_back("RECV");
  for (int d = 0; d < nodes_; ++d) recv.push_back(kib(received_by(d)));
  recv.push_back(kib(total()));
  t.add_row(std::move(recv));
  return t;
}

}  // namespace pdw
