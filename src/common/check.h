// Runtime invariant checking.
//
// CHECK(cond) aborts the current operation with a pdw::CheckError carrying
// file:line and the failed expression. Used for programmer errors *and* for
// bitstream conformance violations (a corrupt stream must never corrupt
// memory; it must surface as a recoverable error at the picture boundary).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace pdw {

// Thrown on any failed CHECK. Derives from std::runtime_error so callers can
// treat "stream malformed" and "internal bug" uniformly at the top level.
class CheckError : public std::runtime_error {
 public:
  explicit CheckError(std::string msg) : std::runtime_error(std::move(msg)) {}
};

[[noreturn]] void check_failed(const char* file, int line, const char* expr,
                               const std::string& extra);

namespace detail {

// Stream-style message collector for CHECK(...) << "context".
class CheckMessage {
 public:
  CheckMessage(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}

  [[noreturn]] ~CheckMessage() noexcept(false) {
    check_failed(file_, line_, expr_, stream_.str());
  }

  template <typename T>
  CheckMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};

struct Voidify {
  // Lowest-precedence operator so the macro's ternary works with <<.
  void operator&&(const CheckMessage&) {}
};

}  // namespace detail
}  // namespace pdw

#define PDW_CHECK(cond)                  \
  (cond) ? (void)0                       \
         : ::pdw::detail::Voidify{} &&   \
               ::pdw::detail::CheckMessage(__FILE__, __LINE__, #cond)

#define PDW_CHECK_EQ(a, b) PDW_CHECK((a) == (b)) << " [" << (a) << " vs " << (b) << "] "
#define PDW_CHECK_NE(a, b) PDW_CHECK((a) != (b)) << " [" << (a) << " vs " << (b) << "] "
#define PDW_CHECK_LT(a, b) PDW_CHECK((a) < (b)) << " [" << (a) << " vs " << (b) << "] "
#define PDW_CHECK_LE(a, b) PDW_CHECK((a) <= (b)) << " [" << (a) << " vs " << (b) << "] "
#define PDW_CHECK_GT(a, b) PDW_CHECK((a) > (b)) << " [" << (a) << " vs " << (b) << "] "
#define PDW_CHECK_GE(a, b) PDW_CHECK((a) >= (b)) << " [" << (a) << " vs " << (b) << "] "
