// Runtime invariant checking.
//
// PDW_CHECK(cond) aborts the current operation with a pdw::InternalError
// carrying file:line and the failed expression. It is for *programmer*
// errors only: misuse of an API, a broken internal invariant, an impossible
// state. Bitstream conformance violations are not internal errors — hot
// parse paths report them through pdw::DecodeStatus (common/decode_status.h)
// and cold structural paths throw pdw::BitstreamError via
// PDW_BITSTREAM_CHECK. Both exception types derive from CheckError so legacy
// top-level handlers keep working.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace pdw {

// Base of both error flavours. Derives from std::runtime_error so callers
// can treat "stream malformed" and "internal bug" uniformly at the top
// level; catch the subclasses to tell them apart.
class CheckError : public std::runtime_error {
 public:
  explicit CheckError(std::string msg) : std::runtime_error(std::move(msg)) {}
};

// A broken internal invariant or API misuse — a bug in this codebase, never
// a property of the input. Not recoverable; should surface to the operator.
class InternalError : public CheckError {
 public:
  explicit InternalError(std::string msg) : CheckError(std::move(msg)) {}
};

// Malformed input: a damaged elementary stream, a truncated pack, a bad
// system-layer structure. Recoverable in principle — the decoder conceals,
// resyncs or drops the affected unit and keeps running.
class BitstreamError : public CheckError {
 public:
  explicit BitstreamError(std::string msg) : CheckError(std::move(msg)) {}
};

[[noreturn]] void check_failed(const char* file, int line, const char* expr,
                               const std::string& extra);
[[noreturn]] void bitstream_check_failed(const char* file, int line,
                                         const char* expr,
                                         const std::string& extra);

namespace detail {

// Stream-style message collector for CHECK(...) << "context".
class CheckMessage {
 public:
  using FailFn = void (*)(const char*, int, const char*, const std::string&);

  CheckMessage(const char* file, int line, const char* expr,
               FailFn fail = &check_failed)
      : file_(file), line_(line), expr_(expr), fail_(fail) {}

  [[noreturn]] ~CheckMessage() noexcept(false) {
    fail_(file_, line_, expr_, stream_.str());
#if defined(__GNUC__)
    __builtin_unreachable();
#endif
  }

  template <typename T>
  CheckMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  FailFn fail_;
  std::ostringstream stream_;
};

struct Voidify {
  // Lowest-precedence operator so the macro's ternary works with <<.
  void operator&&(const CheckMessage&) {}
};

}  // namespace detail
}  // namespace pdw

#define PDW_CHECK(cond)                  \
  (cond) ? (void)0                       \
         : ::pdw::detail::Voidify{} &&   \
               ::pdw::detail::CheckMessage(__FILE__, __LINE__, #cond)

// Conformance check on *input* data in a cold path: throws BitstreamError.
// Hot per-macroblock paths must not use this either — they return a
// DecodeStatus instead of unwinding.
#define PDW_BITSTREAM_CHECK(cond)                                          \
  (cond) ? (void)0                                                         \
         : ::pdw::detail::Voidify{} &&                                     \
               ::pdw::detail::CheckMessage(__FILE__, __LINE__, #cond,      \
                                           &::pdw::bitstream_check_failed)

#define PDW_CHECK_EQ(a, b) PDW_CHECK((a) == (b)) << " [" << (a) << " vs " << (b) << "] "
#define PDW_CHECK_NE(a, b) PDW_CHECK((a) != (b)) << " [" << (a) << " vs " << (b) << "] "
#define PDW_CHECK_LT(a, b) PDW_CHECK((a) < (b)) << " [" << (a) << " vs " << (b) << "] "
#define PDW_CHECK_LE(a, b) PDW_CHECK((a) <= (b)) << " [" << (a) << " vs " << (b) << "] "
#define PDW_CHECK_GT(a, b) PDW_CHECK((a) > (b)) << " [" << (a) << " vs " << (b) << "] "
#define PDW_CHECK_GE(a, b) PDW_CHECK((a) >= (b)) << " [" << (a) << " vs " << (b) << "] "
