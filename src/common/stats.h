// Small numeric helpers: running statistics and deterministic RNG.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>

namespace pdw {

// Welford running mean/variance with min/max tracking.
class RunningStat {
 public:
  void add(double x);

  int64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double variance() const { return n_ > 1 ? m2_ / double(n_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }
  double sum() const { return sum_; }

 private:
  int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// SplitMix64: tiny deterministic PRNG. Every synthetic video generator and
// property test derives its randomness from an explicit seed so that streams
// (and therefore all benchmark numbers) are reproducible across runs.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // Uniform in [0, bound).
  uint32_t next_below(uint32_t bound) {
    return bound ? uint32_t(next() % bound) : 0;
  }

  // Uniform in [0, 1).
  double next_double() { return double(next() >> 11) * 0x1.0p-53; }

 private:
  uint64_t state_;
};

// "12.3 MB", "456 KB", ... for human-readable bandwidth tables.
std::string human_bytes(double bytes);

}  // namespace pdw
