// Wall-clock timing helpers used by the cost-measurement pass of the
// cluster simulator and by the benchmark harnesses.
#pragma once

#include <chrono>

namespace pdw {

// Monotonic stopwatch. seconds() reads elapsed time without stopping.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }
  double micros() const { return seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// Accumulates elapsed time into a double while in scope. Cheap enough for
// per-picture instrumentation (two clock reads).
class ScopedAccumulator {
 public:
  explicit ScopedAccumulator(double& sink) : sink_(sink) {}
  ~ScopedAccumulator() { sink_ += timer_.seconds(); }

  ScopedAccumulator(const ScopedAccumulator&) = delete;
  ScopedAccumulator& operator=(const ScopedAccumulator&) = delete;

 private:
  double& sink_;
  WallTimer timer_;
};

}  // namespace pdw
