// Pairwise byte-traffic bookkeeping shared by the threaded pipeline, the
// lockstep reference and the cluster simulator.
//
// Everything that used to be a raw `std::vector<uint64_t>` with manual
// `src * n + dst` indexing (Fabric's traffic matrix, ClusterStats,
// PictureTrace::exchange_bytes) goes through this helper instead, so the
// indexing convention lives in exactly one place.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/text_table.h"

namespace pdw {

class TrafficMatrix {
 public:
  TrafficMatrix() = default;
  explicit TrafficMatrix(int nodes) { reset(nodes); }

  void reset(int nodes) {
    PDW_CHECK_GE(nodes, 0);
    nodes_ = nodes;
    bytes_.assign(size_t(nodes) * size_t(nodes), 0);
  }

  int nodes() const { return nodes_; }
  bool empty() const { return bytes_.empty(); }

  void add(int src, int dst, uint64_t bytes) { at(src, dst) += bytes; }

  uint64_t& at(int src, int dst) {
    PDW_CHECK_GE(src, 0);
    PDW_CHECK_LT(src, nodes_);
    PDW_CHECK_GE(dst, 0);
    PDW_CHECK_LT(dst, nodes_);
    return bytes_[size_t(src) * size_t(nodes_) + size_t(dst)];
  }
  uint64_t at(int src, int dst) const {
    return const_cast<TrafficMatrix*>(this)->at(src, dst);
  }

  // Bytes sent by / received at one node.
  uint64_t sent_by(int src) const {
    uint64_t sum = 0;
    for (int d = 0; d < nodes_; ++d) sum += at(src, d);
    return sum;
  }
  uint64_t received_by(int dst) const {
    uint64_t sum = 0;
    for (int s = 0; s < nodes_; ++s) sum += at(s, dst);
    return sum;
  }
  uint64_t total() const {
    uint64_t sum = 0;
    for (uint64_t b : bytes_) sum += b;
    return sum;
  }

  // Render as an aligned src×dst table with per-node SEND/RECV totals — the
  // paper's Fig. 9 layout. `node_name` maps a node id to a row/column label
  // (defaults to the bare id). Zero cells print as ".".
  TextTable to_table(
      const std::function<std::string(int)>& node_name = {}) const;

  // Flat row-major view (src-major), for iteration and serialization.
  const std::vector<uint64_t>& flat() const { return bytes_; }
  auto begin() const { return bytes_.begin(); }
  auto end() const { return bytes_.end(); }

  friend bool operator==(const TrafficMatrix&, const TrafficMatrix&) = default;

 private:
  int nodes_ = 0;
  std::vector<uint64_t> bytes_;
};

}  // namespace pdw
