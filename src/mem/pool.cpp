#include "mem/pool.h"

#include <algorithm>
#include <bit>
#include <new>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace pdw::mem {

namespace detail {

BlockHeader* new_heap_block(size_t capacity) {
  void* raw = ::operator new(sizeof(BlockHeader) + capacity);
  auto* b = new (raw) BlockHeader();
  b->capacity = capacity;
  return b;
}

void delete_block(BlockHeader* b) {
  b->~BlockHeader();
  ::operator delete(static_cast<void*>(b));
}

}  // namespace detail

namespace {

std::atomic<bool> g_pooling_enabled{true};

// Shard affinity: one stable index per thread, cheap to read on every
// alloc/free. Threads that die take nothing with them — their blocks
// already live in the shard, where a successor (or a stealing sibling)
// finds them.
int this_thread_shard(int shards) {
  static thread_local const size_t tag =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  return int(tag % size_t(shards));
}

// Local counters + optional obs mirrors, shared by both pool kinds.
struct StatsCore {
  std::atomic<uint64_t> hits{0}, misses{0}, recycles{0}, steals{0};
  std::atomic<int64_t> bytes_in_flight{0};
  std::atomic<uint64_t> pooled_bytes{0};
  std::atomic<uint64_t> budget_fallbacks{0};

  obs::Counter* obs_hits = nullptr;
  obs::Counter* obs_misses = nullptr;
  obs::Counter* obs_recycles = nullptr;
  obs::Gauge* obs_in_flight = nullptr;
  obs::Counter* obs_budget_fallbacks = nullptr;

  void resolve(const PoolObsFamilies& fams) {
    auto& reg = obs::MetricsRegistry::global();
    if (fams.hits) obs_hits = &reg.counter(fams.hits);
    if (fams.misses) obs_misses = &reg.counter(fams.misses);
    if (fams.recycles) obs_recycles = &reg.counter(fams.recycles);
    if (fams.bytes_in_flight) obs_in_flight = &reg.gauge(fams.bytes_in_flight);
    if (fams.budget_fallbacks)
      obs_budget_fallbacks = &reg.counter(fams.budget_fallbacks);
  }

  void on_hit(size_t cap, bool stolen) {
    hits.fetch_add(1, std::memory_order_relaxed);
    if (stolen) steals.fetch_add(1, std::memory_order_relaxed);
    bytes_in_flight.fetch_add(int64_t(cap), std::memory_order_relaxed);
    if (obs_hits) obs_hits->add(1);
    if (obs_in_flight) obs_in_flight->add(int64_t(cap));
  }
  void on_miss(size_t cap) {
    misses.fetch_add(1, std::memory_order_relaxed);
    bytes_in_flight.fetch_add(int64_t(cap), std::memory_order_relaxed);
    if (obs_misses) obs_misses->add(1);
    if (obs_in_flight) obs_in_flight->add(int64_t(cap));
  }
  void on_budget_fallback() {
    budget_fallbacks.fetch_add(1, std::memory_order_relaxed);
    if (obs_budget_fallbacks) obs_budget_fallbacks->add(1);
  }
  void on_release(size_t cap, bool recycled) {
    bytes_in_flight.fetch_sub(int64_t(cap), std::memory_order_relaxed);
    if (recycled) recycles.fetch_add(1, std::memory_order_relaxed);
    if (obs_in_flight) obs_in_flight->add(-int64_t(cap));
    if (recycled && obs_recycles) obs_recycles->add(1);
  }

  PoolStats snapshot() const {
    PoolStats s;
    s.hits = hits.load(std::memory_order_relaxed);
    s.misses = misses.load(std::memory_order_relaxed);
    s.recycles = recycles.load(std::memory_order_relaxed);
    s.steals = steals.load(std::memory_order_relaxed);
    s.bytes_in_flight = bytes_in_flight.load(std::memory_order_relaxed);
    s.pooled_bytes = pooled_bytes.load(std::memory_order_relaxed);
    s.budget_fallbacks = budget_fallbacks.load(std::memory_order_relaxed);
    return s;
  }

  PoolPressure pressure(size_t budget) const {
    PoolPressure p;
    if (budget)
      p.fullness = double(pooled_bytes.load(std::memory_order_relaxed)) /
                   double(budget);
    p.budget_fallbacks = budget_fallbacks.load(std::memory_order_relaxed);
    return p;
  }
};

// Heap-fallback allocation: a block no pool will ever recycle. It still
// carries the core pointer, because the miss was counted into
// bytes_in_flight and the release must unwind it — a core-less block would
// leak in-flight accounting forever (the chaos harness' drain invariant
// caught exactly that).
Bytes heap_bytes(size_t n, PoolCore* core, StatsCore& stats) {
  BlockHeader* b = detail::new_heap_block(n);
  b->core = core;
  core->ref();
  stats.on_miss(n);
  return detail::adopt_block(b, n);
}

}  // namespace

void set_pooling_enabled(bool enabled) {
  g_pooling_enabled.store(enabled, std::memory_order_relaxed);
}
bool pooling_enabled() {
  return g_pooling_enabled.load(std::memory_order_relaxed);
}

namespace {
std::atomic<bool> g_copy_through{false};
}
void set_copy_through(bool enabled) {
  g_copy_through.store(enabled, std::memory_order_relaxed);
}
bool copy_through() {
  return g_copy_through.load(std::memory_order_relaxed);
}

// --- BufferPool ------------------------------------------------------------

class BufferPool::Core : public PoolCore {
 public:
  Core(size_t max_pool_bytes, PoolObsFamilies fams)
      : max_pool_bytes_(max_pool_bytes) {
    stats_.resolve(fams);
  }

  Bytes alloc(size_t n) {
    const int cls = class_for(n);
    if (cls < 0 || !pooling_enabled()) return heap_bytes(n, this, stats_);

    const size_t cap = class_bytes(cls);
    const int home = this_thread_shard(kShards);
    for (int i = 0; i < kShards; ++i) {
      const int s = (home + i) % kShards;
      BlockHeader* b = nullptr;
      {
        std::lock_guard<std::mutex> lk(shards_[s].mu);
        b = shards_[s].free_list[cls];
        if (b) shards_[s].free_list[cls] = b->next;
      }
      if (b) {
        b->next = nullptr;
        b->refs.store(1, std::memory_order_relaxed);
        ref();  // the block pins the core again
        stats_.on_hit(cap, /*stolen=*/i != 0);
        return detail::adopt_block(b, n);
      }
    }

    // Freelist dry: mint a new pooled block, unless the budget is spent —
    // then degrade to a plain heap block (exhaustion fallback).
    const uint64_t minted =
        stats_.pooled_bytes.fetch_add(cap, std::memory_order_relaxed);
    if (minted + cap > max_pool_bytes_) {
      stats_.pooled_bytes.fetch_sub(cap, std::memory_order_relaxed);
      stats_.on_budget_fallback();
      return heap_bytes(n, this, stats_);
    }
    BlockHeader* b = detail::new_heap_block(cap);
    b->size_class = uint32_t(cls);
    b->core = this;
    ref();
    stats_.on_miss(cap);
    return detail::adopt_block(b, n);
  }

  void recycle(BlockHeader* b) override {
    if (b->size_class == BlockHeader::kHeapClass) {
      // Heap fallback: never entered the pool budget, only unwind in-flight.
      stats_.on_release(b->capacity, /*recycled=*/false);
      detail::delete_block(b);
      return;
    }
    if (!active_.load(std::memory_order_acquire) || !pooling_enabled()) {
      stats_.on_release(b->capacity, /*recycled=*/false);
      stats_.pooled_bytes.fetch_sub(b->capacity, std::memory_order_relaxed);
      detail::delete_block(b);
      return;
    }
    stats_.on_release(b->capacity, /*recycled=*/true);
    const int s = this_thread_shard(kShards);
    const int cls = int(b->size_class);
    std::lock_guard<std::mutex> lk(shards_[s].mu);
    b->next = shards_[s].free_list[cls];
    shards_[s].free_list[cls] = b;
  }

  void drain() {
    active_.store(false, std::memory_order_release);
    for (auto& shard : shards_) {
      std::lock_guard<std::mutex> lk(shard.mu);
      for (auto& head : shard.free_list) {
        while (head) {
          BlockHeader* b = head;
          head = b->next;
          detail::delete_block(b);
        }
      }
    }
  }

  PoolStats stats() const { return stats_.snapshot(); }
  PoolPressure pressure() const { return stats_.pressure(max_pool_bytes_); }

 private:
  struct Shard {
    std::mutex mu;
    BlockHeader* free_list[kClasses] = {};
  };

  Shard shards_[kShards];
  const size_t max_pool_bytes_;
  StatsCore stats_;
};

BufferPool::BufferPool(size_t max_pool_bytes, PoolObsFamilies obs_families)
    : core_(new Core(max_pool_bytes, obs_families)) {}

BufferPool::~BufferPool() {
  core_->drain();
  core_->unref();
}

Bytes BufferPool::alloc(size_t n) {
  if (n == 0) return {};
  return core_->alloc(n);
}

void BufferPool::prewarm(size_t max_bytes, int count) {
  if (!pooling_enabled()) return;
  int top = class_for(max_bytes);
  if (top < 0) top = kClasses - 1;
  // `count` is sized for the message classes (sub-picture and exchange
  // bodies), whose peak concurrency scales with tiles. The picture-sized
  // classes only ever hold a dispatch window of blocks, so cap each
  // class's minting by bytes instead of letting count x 4 MiB blocks eat
  // the pool budget.
  constexpr size_t kPerClassByteCap = size_t(16) << 20;
  constexpr int kMinPerClass = 8;
  std::vector<Bytes> minted;
  for (int cls = 0; cls <= top; ++cls) {
    const size_t cap = class_bytes(cls);
    int n = count;
    if (size_t(n) * cap > kPerClassByteCap)
      n = std::max(kMinPerClass, int(kPerClassByteCap / cap));
    minted.reserve(size_t(n));
    for (int i = 0; i < n; ++i) minted.push_back(alloc(cap));
    minted.clear();  // release to the freelists (budget caps the minting)
  }
}

PoolStats BufferPool::stats() const { return core_->stats(); }

PoolPressure BufferPool::pressure() const { return core_->pressure(); }

int BufferPool::class_for(size_t n) {
  if (n > kMaxClassBytes) return -1;
  const size_t clamped = n < kMinClassBytes ? kMinClassBytes : n;
  const int cls = std::bit_width(clamped - 1) - std::bit_width(kMinClassBytes - 1);
  return cls;
}

BufferPool& BufferPool::wire() {
  static BufferPool pool(size_t(512) << 20,
                         PoolObsFamilies{
                             .hits = obs::family::kPoolHits,
                             .misses = obs::family::kPoolMisses,
                             .recycles = obs::family::kPoolRecycles,
                             .bytes_in_flight = obs::family::kPoolBytesInFlight,
                             .budget_fallbacks =
                                 obs::family::kPoolBudgetFallbacks,
                         });
  return pool;
}

// --- SurfacePool -----------------------------------------------------------

class SurfacePool::Core : public PoolCore {
 public:
  Core(size_t max_pool_bytes, PoolObsFamilies fams)
      : max_pool_bytes_(max_pool_bytes) {
    stats_.resolve(fams);
  }

  Bytes alloc(size_t n) {
    if (!pooling_enabled()) return heap_bytes(n, this, stats_);
    {
      std::lock_guard<std::mutex> lk(mu_);
      auto it = free_.find(n);
      if (it != free_.end() && it->second != nullptr) {
        BlockHeader* b = it->second;
        it->second = b->next;
        b->next = nullptr;
        b->refs.store(1, std::memory_order_relaxed);
        ref();
        stats_.on_hit(n, /*stolen=*/false);
        return detail::adopt_block(b, n);
      }
    }
    const uint64_t minted =
        stats_.pooled_bytes.fetch_add(n, std::memory_order_relaxed);
    if (minted + n > max_pool_bytes_) {
      stats_.pooled_bytes.fetch_sub(n, std::memory_order_relaxed);
      stats_.on_budget_fallback();
      return heap_bytes(n, this, stats_);
    }
    BlockHeader* b = detail::new_heap_block(n);
    b->size_class = kSurfaceClass;
    b->core = this;
    ref();
    stats_.on_miss(n);
    return detail::adopt_block(b, n);
  }

  void recycle(BlockHeader* b) override {
    if (b->size_class == BlockHeader::kHeapClass) {
      // Heap fallback: never entered the pool budget, only unwind in-flight.
      stats_.on_release(b->capacity, /*recycled=*/false);
      detail::delete_block(b);
      return;
    }
    if (!active_.load(std::memory_order_acquire) || !pooling_enabled()) {
      stats_.on_release(b->capacity, /*recycled=*/false);
      stats_.pooled_bytes.fetch_sub(b->capacity, std::memory_order_relaxed);
      detail::delete_block(b);
      return;
    }
    stats_.on_release(b->capacity, /*recycled=*/true);
    std::lock_guard<std::mutex> lk(mu_);
    auto& head = free_[b->capacity];
    b->next = head;
    head = b;
  }

  void drain() {
    active_.store(false, std::memory_order_release);
    std::lock_guard<std::mutex> lk(mu_);
    for (auto& [sz, head] : free_) {
      while (head) {
        BlockHeader* b = head;
        head = b->next;
        detail::delete_block(b);
      }
    }
    free_.clear();
  }

  PoolStats stats() const { return stats_.snapshot(); }
  PoolPressure pressure() const { return stats_.pressure(max_pool_bytes_); }

 private:
  static constexpr uint32_t kSurfaceClass = 0xFFFFFFFEu;

  std::mutex mu_;
  std::unordered_map<size_t, BlockHeader*> free_;
  const size_t max_pool_bytes_;
  StatsCore stats_;
};

SurfacePool::SurfacePool(size_t max_pool_bytes, PoolObsFamilies obs_families)
    : core_(new Core(max_pool_bytes, obs_families)) {}

SurfacePool::~SurfacePool() {
  core_->drain();
  core_->unref();
}

Bytes SurfacePool::alloc(size_t n) {
  if (n == 0) return {};
  return core_->alloc(n);
}

PoolStats SurfacePool::stats() const { return core_->stats(); }

PoolPressure SurfacePool::pressure() const { return core_->pressure(); }

SurfacePool& SurfacePool::global() {
  static SurfacePool pool(size_t(512) << 20,
                          PoolObsFamilies{
                              .hits = obs::family::kSurfacePoolHits,
                              .misses = obs::family::kSurfacePoolMisses,
                              .recycles = obs::family::kSurfacePoolRecycles,
                              .bytes_in_flight =
                                  obs::family::kSurfacePoolBytesInFlight,
                              .budget_fallbacks =
                                  obs::family::kSurfacePoolBudgetFallbacks,
                          });
  return pool;
}

// --- Bytes constructors ----------------------------------------------------

namespace detail {

Bytes adopt_block(BlockHeader* b, size_t n) {
  Bytes out;
  out.block_ = b;
  out.data_ = b->data();
  out.size_ = n;
  return out;
}

}  // namespace detail

Bytes Bytes::alloc(size_t n) { return BufferPool::wire().alloc(n); }

Bytes Bytes::filled(size_t n, uint8_t v) {
  Bytes b = alloc(n);
  if (n) std::memset(b.mutable_data(), v, n);
  return b;
}

Bytes Bytes::copy_of(std::span<const uint8_t> s) {
  Bytes b = alloc(s.size());
  if (!s.empty()) std::memcpy(b.mutable_data(), s.data(), s.size());
  return b;
}

Bytes Bytes::borrow(std::span<const uint8_t> s) {
  Bytes b;
  b.block_ = nullptr;
  b.data_ = const_cast<uint8_t*>(s.data());
  b.size_ = s.size();
  return b;
}

Bytes Bytes::surface(size_t n, uint8_t fill) {
  Bytes b = surface_uninit(n);
  if (n) std::memset(b.mutable_data(), fill, n);
  return b;
}

Bytes Bytes::surface_uninit(size_t n) { return SurfacePool::global().alloc(n); }

Bytes Bytes::surface_copy(std::span<const uint8_t> s) {
  Bytes b = surface_uninit(s.size());
  if (!s.empty()) std::memcpy(b.mutable_data(), s.data(), s.size());
  return b;
}

}  // namespace pdw::mem
