// Arena-backed buffer pools behind mem::Bytes.
//
// Two pools cover the two allocation populations of the decode hot path:
//
//  * BufferPool — wire payloads (coded pictures, serialized sub-pictures,
//    exchange bodies, control messages). Sizes vary per message, so blocks
//    live in power-of-two size classes (64 B .. 4 MiB). Freelists are
//    sharded by thread (thread-affine free caches): a thread allocates from
//    and frees to its own shard under an uncontended mutex, and steals from
//    sibling shards before minting a new block — so pipeline threads reuse
//    their own recent blocks (cache-warm) without any thread-local lifetime
//    hazards when threads die between runs.
//
//  * SurfacePool — picture planes. A wall run allocates the same plane
//    geometries every picture, so blocks are keyed by *exact* byte size and
//    reused only for identical geometry (no size-class rounding waste on
//    multi-megabyte luma planes).
//
// Every allocation that could not be served from a freelist is a *miss* and
// corresponds 1:1 to a hot-path malloc; the acceptance gate "zero hot-path
// allocations per picture after warm-up" is checked as miss-delta == 0
// across a steady-state run (tests/test_mem.cpp, scripts/run_benches.sh).
// The process-wide pools mirror their stats into obs::MetricsRegistry
// (family::kPoolHits etc.) so benches, wall_top and CI read one source.
//
// Exhaustion: each pool has a byte budget. Once minted pooled bytes reach
// it, further allocations fall back to plain heap blocks that are freed on
// release instead of recycled (still counted as misses) — the pool degrades
// to malloc/free rather than failing.
#pragma once

#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "mem/bytes.h"

namespace pdw::obs {
class MetricsRegistry;
}

namespace pdw::mem {

// Point-in-time pool statistics (local atomics, independent of obs).
struct PoolStats {
  uint64_t hits = 0;      // served from a freelist
  uint64_t misses = 0;    // required a heap malloc (hot-path allocation)
  uint64_t recycles = 0;  // blocks returned to a freelist
  uint64_t steals = 0;    // hits served from a sibling thread's shard
  int64_t bytes_in_flight = 0;  // capacity currently handed out
  uint64_t pooled_bytes = 0;    // capacity minted under the pool budget
  // Allocations that degraded to a plain heap block *because the byte
  // budget was spent* (a subset of misses). Before ISSUE 7 these were
  // indistinguishable from ordinary cold-start misses, which is why budget
  // exhaustion was silent; the admission/shed layer now consumes them as a
  // backpressure signal.
  uint64_t budget_fallbacks = 0;
};

// Budget-pressure signal for the admission/shed layer. `fullness` alone is
// not overload — a pool can run at 100% minted and healthy, every block
// recycling through the freelists. It is `budget_fallbacks` growing that
// means current demand exceeds what the budget can cover.
struct PoolPressure {
  double fullness = 0;            // minted pooled bytes / budget
  uint64_t budget_fallbacks = 0;  // heap allocs forced by budget exhaustion
};

// Names of the obs counter/gauge families a pool mirrors into. Null family
// pointers (default) disable mirroring — unit-test pools stay silent.
struct PoolObsFamilies {
  const char* hits = nullptr;
  const char* misses = nullptr;
  const char* recycles = nullptr;
  const char* bytes_in_flight = nullptr;
  const char* budget_fallbacks = nullptr;
};

// --- Size-class pool for wire payloads -------------------------------------
class BufferPool {
 public:
  static constexpr size_t kMinClassBytes = 64;        // class 0
  static constexpr size_t kMaxClassBytes = 4u << 20;  // class 16
  static constexpr int kClasses = 17;
  static constexpr int kShards = 8;

  explicit BufferPool(size_t max_pool_bytes = size_t(256) << 20,
                      PoolObsFamilies obs_families = {});
  ~BufferPool();
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  // Pooled buffer of at least n bytes (Bytes::size() == n), uninitialized.
  Bytes alloc(size_t n);

  // Mint up to `count` blocks for every size class up to the one covering
  // `max_bytes` and put them on the freelists. The analog of posting
  // receive buffers up front in GM: with the working set minted at setup,
  // the steady state is served entirely from freelists even when thread
  // scheduling shifts the peak concurrent demand between runs. Large
  // (picture-sized) classes are capped by bytes per class — they only
  // ever hold a dispatch window of blocks, and count x 4 MiB would eat
  // the pool budget. Mints count as misses (they are mallocs — at setup
  // time, not on the hot path).
  void prewarm(size_t max_bytes, int count);

  PoolStats stats() const;
  PoolPressure pressure() const;

  // Size class for a request, or -1 when it exceeds kMaxClassBytes (such
  // requests go straight to the heap and count as misses).
  static int class_for(size_t n);
  static size_t class_bytes(int cls) { return kMinClassBytes << cls; }

  // Process-wide pool all wire-path Bytes come from (obs-mirrored).
  static BufferPool& wire();

 private:
  class Core;
  Core* core_;
};

// --- Exact-size pool for picture surfaces ----------------------------------
class SurfacePool {
 public:
  explicit SurfacePool(size_t max_pool_bytes = size_t(512) << 20,
                       PoolObsFamilies obs_families = {});
  ~SurfacePool();
  SurfacePool(const SurfacePool&) = delete;
  SurfacePool& operator=(const SurfacePool&) = delete;

  // Pooled buffer of exactly n bytes, uninitialized. Recycled blocks are
  // reused only for requests of the same n (geometry-keyed).
  Bytes alloc(size_t n);

  PoolStats stats() const;
  PoolPressure pressure() const;

  // Process-wide pool all plane storage comes from (obs-mirrored).
  static SurfacePool& global();

 private:
  class Core;
  Core* core_;
};

}  // namespace pdw::mem
