// Refcounted byte buffers over pooled arena blocks.
//
// `Bytes` is the one ownership handle the whole dataflow uses: an encoder
// picture span is packed into a pooled wire body, the splitter's sub-picture
// payloads are views into that body, the serialized sub-picture rides a
// pooled SpMsg body, and the decoder's run payloads are views into *that* —
// one allocation per hop instead of a copy per layer. The handle is three
// words (block, data, size); copying bumps an intrusive refcount in the
// block header, and the last release returns the block to its pool's
// freelist instead of the heap (mem/pool.h).
//
// Ownership rules:
//  * A Bytes constructed by alloc()/copy_of()/filled()/surface() OWNS a
//    block (possibly shared with other handles / views of it).
//  * view(off, len) shares the same block — cheap, and keeps the block
//    alive until every view dies.
//  * borrow(span) does NOT own: it is a read-only alias whose lifetime the
//    caller guarantees (e.g. spans into the root's resident elementary
//    stream). owning() distinguishes the two.
//  * Mutation through mutable_data()/mutable_span() is only safe when the
//    writer is the sole owner of the block region it touches; call
//    make_unique() first when in doubt (the fault injector does exactly
//    this before corrupting a payload that retransmit queues still pin).
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <span>

#include "common/check.h"

namespace pdw::mem {

struct BlockHeader;
class Bytes;

namespace detail {
// Wrap a block (refs already == 1) in an owning handle of size n. Defined in
// pool.cpp; the pools' only doorway into Bytes' privates.
Bytes adopt_block(BlockHeader* b, size_t n);
}  // namespace detail

// Defined in pool.cpp; documented with set_copy_through() below.
bool copy_through();

// Base of BufferPool / SurfacePool internals. Refcounted so that blocks
// released *after* their pool handle was destroyed (e.g. a straggler thread
// dropping its last view) degrade safely to a heap free instead of touching
// a dead freelist: every live block pins its core.
class PoolCore {
 public:
  virtual ~PoolCore() = default;

  void ref() { core_refs_.fetch_add(1, std::memory_order_relaxed); }
  void unref() {
    if (core_refs_.fetch_sub(1, std::memory_order_acq_rel) == 1) delete this;
  }

  // Take back a dead block (refs == 0). Returns it to the freelist while the
  // pool handle is alive and pooling is enabled; heap-frees it otherwise.
  virtual void recycle(BlockHeader* b) = 0;

 protected:
  std::atomic<bool> active_{true};

 private:
  friend class BufferPool;
  friend class SurfacePool;
  std::atomic<uint32_t> core_refs_{1};  // the handle's ref
};

// Header prepended to every allocation. The payload follows immediately
// (sizeof(BlockHeader) is a multiple of 16, so the data is max-aligned).
struct BlockHeader {
  std::atomic<uint32_t> refs{1};
  uint32_t size_class = kHeapClass;  // freelist class; kHeapClass = never pooled
  size_t capacity = 0;               // usable payload bytes
  PoolCore* core = nullptr;          // pinned while this block is live
  BlockHeader* next = nullptr;       // freelist link (only while free)

  static constexpr uint32_t kHeapClass = 0xFFFFFFFFu;

  uint8_t* data() { return reinterpret_cast<uint8_t*>(this + 1); }
};
static_assert(sizeof(BlockHeader) % 16 == 0);

namespace detail {

// Heap-side block creation/destruction (shared by pools and the fallback
// path). Defined in pool.cpp.
BlockHeader* new_heap_block(size_t capacity);
void delete_block(BlockHeader* b);

inline void block_ref(BlockHeader* b) {
  b->refs.fetch_add(1, std::memory_order_relaxed);
}

inline void block_unref(BlockHeader* b) {
  if (b->refs.fetch_sub(1, std::memory_order_acq_rel) != 1) return;
  PoolCore* core = b->core;
  if (core != nullptr) {
    core->recycle(b);  // freelist or heap, the core decides
    core->unref();     // block no longer pins the core
  } else {
    delete_block(b);
  }
}

}  // namespace detail

class Bytes {
 public:
  Bytes() = default;
  Bytes(std::initializer_list<uint8_t> init)
      : Bytes(copy_of({init.begin(), init.size()})) {}

  ~Bytes() { reset(); }

  Bytes(const Bytes& o) : block_(o.block_), data_(o.data_), size_(o.size_) {
    if (block_) detail::block_ref(block_);
  }
  Bytes& operator=(const Bytes& o) {
    if (this == &o) return *this;
    if (o.block_) detail::block_ref(o.block_);
    reset();
    block_ = o.block_;
    data_ = o.data_;
    size_ = o.size_;
    return *this;
  }
  Bytes(Bytes&& o) noexcept : block_(o.block_), data_(o.data_), size_(o.size_) {
    o.block_ = nullptr;
    o.data_ = nullptr;
    o.size_ = 0;
  }
  Bytes& operator=(Bytes&& o) noexcept {
    if (this == &o) return *this;
    reset();
    block_ = o.block_;
    data_ = o.data_;
    size_ = o.size_;
    o.block_ = nullptr;
    o.data_ = nullptr;
    o.size_ = 0;
    return *this;
  }

  // --- Construction (definitions in pool.cpp) ------------------------------
  // Pooled wire-class buffer, contents uninitialized.
  static Bytes alloc(size_t n);
  static Bytes filled(size_t n, uint8_t v);
  static Bytes copy_of(std::span<const uint8_t> s);
  // Non-owning read-only alias; caller guarantees the span outlives it.
  static Bytes borrow(std::span<const uint8_t> s);
  // Exact-size surface-pool buffer (picture-geometry keyed reuse).
  static Bytes surface(size_t n, uint8_t fill);
  static Bytes surface_uninit(size_t n);
  static Bytes surface_copy(std::span<const uint8_t> s);

  // --- Access --------------------------------------------------------------
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const uint8_t* data() const { return data_; }
  const uint8_t* begin() const { return data_; }
  const uint8_t* end() const { return data_ + size_; }
  uint8_t operator[](size_t i) const { return data_[i]; }

  std::span<const uint8_t> span() const { return {data_, size_}; }
  operator std::span<const uint8_t>() const { return span(); }

  // See file comment: only safe when this handle is the sole writer.
  uint8_t* mutable_data() { return data_; }
  std::span<uint8_t> mutable_span() { return {data_, size_}; }

  // --- Views & sharing -----------------------------------------------------
  // Sub-range sharing the same block (or the same borrowed storage). Under
  // copy_through() (ablation only) every view degrades to a deep copy —
  // the copy-per-hop behavior of the pre-pool wire path.
  Bytes view(size_t off, size_t len) const {
    PDW_CHECK_LE(off + len, size_);
    if (copy_through()) return copy_of({data_ + off, len});
    Bytes v;
    v.block_ = block_;
    v.data_ = data_ + off;
    v.size_ = len;
    if (v.block_) detail::block_ref(v.block_);
    return v;
  }

  bool owning() const { return block_ != nullptr; }
  bool unique() const {
    return block_ != nullptr &&
           block_->refs.load(std::memory_order_acquire) == 1;
  }

  // Copy-on-write: after this call the handle owns a block no other handle
  // shares (no-op when already sole owner of a full block).
  void make_unique() {
    if (unique() && data_ == block_->data() && size_ == block_->capacity)
      return;
    *this = copy_of(span());
  }

  void reset() {
    if (block_) detail::block_unref(block_);
    block_ = nullptr;
    data_ = nullptr;
    size_ = 0;
  }

  // Content equality (mirrors the std::vector semantics this type replaced).
  friend bool operator==(const Bytes& a, const Bytes& b) {
    return a.size_ == b.size_ &&
           (a.size_ == 0 || std::memcmp(a.data_, b.data_, a.size_) == 0);
  }

 private:
  friend Bytes detail::adopt_block(BlockHeader* b, size_t n);

  BlockHeader* block_ = nullptr;  // nullptr: empty or borrowed
  uint8_t* data_ = nullptr;
  size_t size_ = 0;
};

// Runtime pooling switch. When off, every alloc is a plain heap allocation
// (counted as a pool miss) and every free returns to the heap — the
// unpooled leg of the zero-copy ablation and the ProtocolEquivalence guard.
void set_pooling_enabled(bool enabled);
bool pooling_enabled();

// Runtime copy-through switch (ablation only). When on, Bytes::view()
// deep-copies instead of sharing the block, reintroducing the
// copy-per-hop dataflow of the pre-pool wire path. Combined with
// set_pooling_enabled(false) this is the "static buffers + copy
// messaging" era the paper's zero-copy transport replaced.
void set_copy_through(bool enabled);
bool copy_through();

}  // namespace pdw::mem
