// Simple reactive rate control: one quantiser per picture type, adapted by
// the ratio of produced to target bits. This is not TM5 — the goal is only
// to land streams near a target bits-per-pixel (the paper's test streams sit
// at ~0.3 bpp) with stable quality.
#pragma once

#include "mpeg2/types.h"

namespace pdw::enc {

class RateControl {
 public:
  // `pixels` per picture; `target_bpp` average across the GOP pattern;
  // `gop_size` / `b_frames` describe the pattern so per-type targets can be
  // weighted (I pictures get more bits than P, P more than B).
  RateControl(int pixels, double target_bpp, int gop_size, int b_frames);

  // quantiser_scale_code (1..31) to use for the next picture of this type.
  int pick_quant(mpeg2::PicType type) const;

  // Report the actual size of an encoded picture to adapt the quantisers.
  void update(mpeg2::PicType type, size_t bits);

  double target_bits(mpeg2::PicType type) const;

 private:
  int idx(mpeg2::PicType t) const { return int(t) - 1; }

  double target_bits_[3];  // per picture type
  double quant_[3] = {8.0, 8.0, 10.0};
};

}  // namespace pdw::enc
