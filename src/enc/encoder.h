// MPEG-2 Main Profile video encoder (progressive frame pictures, 4:2:0).
//
// Exists so the reproduction is self-contained: the paper's test material
// (DVD rips, HDTV captures, Orion Nebula flybys) is proprietary, so we
// synthesize content (src/video) and compress it ourselves at the paper's
// resolutions and bit rates (~0.3 bpp). The encoder is closed-loop (motion
// estimation against reconstructed references) and exercises the syntax the
// parallel decoder must handle: I/P/B pictures, skipped macroblocks, per-
// macroblock quantiser updates, MPEG-2 motion vector wrapping, slices with
// vertical-position extensions for >2800-line pictures.
#pragma once

#include <functional>
#include <vector>

#include "mpeg2/frame.h"
#include "mpeg2/types.h"

namespace pdw::enc {

struct EncoderConfig {
  int width = 0;   // must be multiples of 16
  int height = 0;
  int gop_size = 12;        // pictures per GOP (N)
  int b_frames = 2;         // B pictures between references (M - 1)
  double target_bpp = 0.3;  // average bits per luma pixel
  int frame_rate_code = 5;  // 30 fps
  int me_range = 15;        // full-pel search radius
  bool q_scale_type = false;
  bool alternate_scan = false;
  int intra_dc_precision = 0;
  bool adaptive_quant = true;   // modulate quantiser per MB by activity
  bool allow_skip = true;       // emit skipped macroblocks
  bool repeat_sequence_header = true;  // re-emit sequence header per GOP
  // Closed GOPs (default): every GOP is self-contained — what the paper's
  // GOP-level baseline requires. Open GOPs keep the B-picture cadence
  // running across GOP boundaries (leading B pictures of a GOP reference the
  // previous GOP's last P), like most broadcast encoders.
  bool closed_gops = true;
  // Scene-cut detection: when the mean absolute luma difference between a
  // would-be P picture and its reference exceeds this threshold, encode it
  // as an I picture instead (0 disables).
  double scene_cut_threshold = 0.0;
};

struct EncodeStats {
  int frames = 0;
  size_t total_bytes = 0;
  std::vector<size_t> picture_bytes;  // indexed by coded order
  int skipped_mbs = 0;
  int intra_mbs = 0;
  int inter_mbs = 0;
  int i_pictures = 0;
  int scene_cuts = 0;  // P pictures promoted to I by scene-cut detection

  double avg_bpp(int width, int height) const {
    return frames == 0 ? 0.0
                       : double(total_bytes) * 8.0 /
                             (double(width) * height * frames);
  }
};

// Supplies source frames by display index. The Frame is pre-sized to the
// (macroblock-aligned) configured dimensions; fill all three planes.
using FrameProducer = std::function<void(int display_index, mpeg2::Frame*)>;

class Mpeg2Encoder {
 public:
  explicit Mpeg2Encoder(const EncoderConfig& config);

  // Encode `num_frames` frames into a complete elementary stream
  // (sequence header ... sequence_end_code).
  std::vector<uint8_t> encode(int num_frames, const FrameProducer& produce,
                              EncodeStats* stats = nullptr);

  const mpeg2::SequenceHeader& sequence_header() const { return seq_; }

 private:
  struct Impl;
  EncoderConfig config_;
  mpeg2::SequenceHeader seq_;
  mpeg2::PictureCodingExt pce_template_;
  int f_code_ = 1;
};

}  // namespace pdw::enc
