#include "enc/encoder.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <memory>

#include "bitstream/bit_writer.h"
#include "common/check.h"
#include "kernels/kernels.h"
#include "enc/motion_est.h"
#include "enc/rate_control.h"
#include "mpeg2/headers.h"
#include "mpeg2/idct.h"
#include "mpeg2/motion.h"
#include "mpeg2/quant.h"
#include "mpeg2/recon.h"
#include "mpeg2/tables.h"

namespace pdw::enc {

using namespace mpeg2;
using namespace mpeg2::mb_flags;

namespace {

// ---------------------------------------------------------------------------
// Low-level syntax writers
// ---------------------------------------------------------------------------

void write_mv_component(BitWriter& w, int mv, int pred, int f_code) {
  const int r_size = f_code - 1;
  const int f = 1 << r_size;
  const int range = 16 * f;
  int delta = mv - pred;
  if (delta < -range)
    delta += 2 * range;
  else if (delta >= range)
    delta -= 2 * range;
  PDW_CHECK_GE(delta, -range);
  PDW_CHECK_LT(delta, range);
  if (delta == 0) {
    vlc_motion_code().encode(w, 0);
    return;
  }
  const int a = std::abs(delta) - 1;
  const int mag = a / f + 1;
  const int residual = a % f;
  PDW_CHECK_LE(mag, 16);
  vlc_motion_code().encode(w, delta < 0 ? -mag : mag);
  if (r_size > 0) w.put(uint32_t(residual), r_size);
}

// Write one motion vector (both components) for direction s and update the
// predictors the way the decoder will.
void write_motion_vector(BitWriter& w, MbState& st, const int16_t mv[2], int s,
                         const PictureCodingExt& pce) {
  for (int t = 0; t < 2; ++t) {
    write_mv_component(w, mv[t], st.pmv[s][t], pce.f_code[s][t]);
    st.pmv[s][t] = mv[t];
  }
}

void write_block_intra(BitWriter& w, const int16_t qfs[64], int last, int cc,
                       MbState& st) {
  // DC: differential against the per-component predictor.
  const int dc = qfs[0];
  const int diff = dc - st.dc_pred[cc];
  st.dc_pred[cc] = dc;
  int size = 0;
  for (int a = std::abs(diff); a != 0; a >>= 1) ++size;
  PDW_CHECK_LE(size, 11);
  const Vlc& size_vlc = cc == 0 ? vlc_dct_dc_size_luma() : vlc_dct_dc_size_chroma();
  size_vlc.encode(w, size);
  if (size > 0) {
    const uint32_t bits =
        diff > 0 ? uint32_t(diff) : uint32_t(diff + (1 << size) - 1);
    w.put(bits, size);
  }

  // AC run/levels over scan positions 1..last.
  int run = 0;
  for (int n = 1; n <= last; ++n) {
    if (qfs[n] == 0) {
      ++run;
      continue;
    }
    encode_dct_coeff_b14(w, run, qfs[n], /*first=*/false);
    run = 0;
  }
  encode_eob_b14(w);
}

void write_block_inter(BitWriter& w, const int16_t qfs[64], int last) {
  PDW_CHECK_GE(last, 0);
  int run = 0;
  bool first = true;
  for (int n = 0; n <= last; ++n) {
    if (qfs[n] == 0) {
      ++run;
      continue;
    }
    encode_dct_coeff_b14(w, run, qfs[n], first);
    first = false;
    run = 0;
  }
  encode_eob_b14(w);
}

// ---------------------------------------------------------------------------
// Per-picture encoder
// ---------------------------------------------------------------------------

struct BlockData {
  int16_t qfs[64];
  int last;  // last nonzero scan index (-1: uncoded for inter)
};

class PictureEncoder {
 public:
  PictureEncoder(const EncoderConfig& cfg, const SequenceHeader& seq,
                 const PictureCodingExt& pce, PicType type, const Frame& orig,
                 const Frame* fwd, const Frame* bwd, Frame* recon,
                 EncodeStats* stats)
      : cfg_(cfg),
        seq_(seq),
        pce_(pce),
        type_(type),
        orig_(orig),
        fwd_(fwd),
        bwd_(bwd),
        recon_(recon),
        stats_(stats),
        fwd_src_(fwd ? std::make_unique<FrameRefSource>(*fwd) : nullptr),
        bwd_src_(bwd ? std::make_unique<FrameRefSource>(*bwd) : nullptr) {
    me_.range_px = cfg.me_range;
    me_.mv_limit = 16 * (1 << (pce.f_code[0][0] - 1)) - 2;
  }

  void encode_slices(BitWriter& w, int base_quant) {
    base_quant_ = base_quant;
    const int mbw = seq_.mb_width();
    const int mbh = seq_.mb_height();
    double act_sum = 0.0;
    for (int row = 0; row < mbh; ++row) {
      write_slice_header(w, seq_, row, base_quant_);
      st_ = MbState{};
      st_.reset_dc(pce_);
      st_.quant_scale_code = uint8_t(base_quant_);
      pending_skips_ = 0;

      for (int mbx = 0; mbx < mbw; ++mbx)
        act_sum += encode_macroblock(w, mbx, row);
      PDW_CHECK_EQ(pending_skips_, 0) << "slice may not end in skipped MBs";
      w.align_to_byte();
    }
    avg_activity_ = std::max(1.0, act_sum / (double(mbw) * mbh));
  }

  double average_activity() const { return avg_activity_; }
  void seed_activity(double a) { prev_avg_activity_ = std::max(1.0, a); }

 private:
  // Copy a luma/chroma block of the original picture into an int16 buffer.
  void load_block(const Plane& p, int x, int y, int16_t out[64]) const {
    for (int r = 0; r < 8; ++r) {
      const uint8_t* s = p.row(y + r) + x;
      for (int c = 0; c < 8; ++c) out[r * 8 + c] = s[c];
    }
  }

  void load_mb_blocks(int mbx, int mby, int16_t blocks[6][64]) const {
    for (int b = 0; b < 4; ++b)
      load_block(orig_.y, mbx * 16 + (b & 1) * 8, mby * 16 + (b >> 1) * 8,
                 blocks[b]);
    load_block(orig_.cb, mbx * 8, mby * 8, blocks[4]);
    load_block(orig_.cr, mbx * 8, mby * 8, blocks[5]);
  }

  // Spatial activity of the original macroblock (mean absolute deviation of
  // luma); drives intra/inter choice and adaptive quantisation.
  double activity(int mbx, int mby) const {
    int64_t sum = 0;
    for (int r = 0; r < 16; ++r) {
      const uint8_t* s = orig_.y.row(mby * 16 + r) + mbx * 16;
      for (int c = 0; c < 16; ++c) sum += s[c];
    }
    const int mean = int(sum / 256);
    int64_t dev = 0;
    for (int r = 0; r < 16; ++r) {
      const uint8_t* s = orig_.y.row(mby * 16 + r) + mbx * 16;
      for (int c = 0; c < 16; ++c) dev += std::abs(int(s[c]) - mean);
    }
    return double(dev);
  }

  MacroblockPixels predict(uint8_t flags, const int16_t mvf[2],
                           const int16_t mvb[2], int mbx, int mby) const {
    Macroblock tmp;
    tmp.flags = flags;
    tmp.mv[0][0] = mvf[0];
    tmp.mv[0][1] = mvf[1];
    tmp.mv[1][0] = mvb[0];
    tmp.mv[1][1] = mvb[1];
    MacroblockPixels out;
    motion_compensate(tmp, fwd_src_.get(), bwd_src_.get(), mbx, mby, &out);
    return out;
  }

  uint32_t pred_sad(const MacroblockPixels& pred, int mbx, int mby) const {
    return kernels::active().sad16x16(orig_.y.row(mby * 16) + mbx * 16,
                                      orig_.y.width(), pred.y, 16,
                                      std::numeric_limits<uint32_t>::max());
  }

  // Quantise the six residual (or intra) blocks; returns cbp.
  int quantise_blocks(const int16_t blocks[6][64], BlockData out[6],
                      bool intra, int quant_code) {
    const auto& scan = scan_table(pce_.alternate_scan);
    const int scale = quantiser_scale(pce_.q_scale_type, quant_code);
    int cbp = 0;
    for (int b = 0; b < 6; ++b) {
      int16_t f[64];
      forward_dct_8x8(blocks[b], f);
      if (intra) {
        out[b].last = quant_intra(f, out[b].qfs, seq_.intra_quant.data(),
                                  scale, pce_.intra_dc_mult(), scan.data());
        cbp |= 0x20 >> b;
      } else {
        out[b].last = quant_non_intra(f, out[b].qfs,
                                      seq_.non_intra_quant.data(), scale,
                                      scan.data());
        if (out[b].last >= 0) cbp |= 0x20 >> b;
      }
    }
    return cbp;
  }

  // Reconstruct the macroblock exactly as a decoder would and store it into
  // the reconstruction frame (reference pictures only).
  void reconstruct(uint8_t flags, const int16_t mvf[2], const int16_t mvb[2],
                   int cbp, const BlockData bd[6], int quant_code, int mbx,
                   int mby) {
    if (!recon_) return;
    Macroblock mb;
    mb.flags = flags;
    mb.cbp = (flags & kIntra) ? 0x3F : cbp;
    mb.mv[0][0] = mvf[0];
    mb.mv[0][1] = mvf[1];
    mb.mv[1][0] = mvb[0];
    mb.mv[1][1] = mvb[1];
    const auto& scan = scan_table(pce_.alternate_scan);
    const int scale = quantiser_scale(pce_.q_scale_type, quant_code);
    for (int b = 0; b < 6; ++b) {
      if (!(mb.cbp & (0x20 >> b))) continue;
      if (flags & kIntra)
        dequant_intra(bd[b].qfs, mb.coeff[b], seq_.intra_quant.data(), scale,
                      pce_.intra_dc_mult(), scan.data());
      else
        dequant_non_intra(bd[b].qfs, mb.coeff[b], seq_.non_intra_quant.data(),
                          scale, scan.data());
    }
    MacroblockPixels px;
    reconstruct_mb(mb, fwd_src_.get(), bwd_src_.get(), mbx, mby, &px);
    store_mb(recon_, mbx, mby, px);
  }

  // Returns the macroblock activity (accumulated by the caller).
  double encode_macroblock(BitWriter& w, int mbx, int mby) {
    const int mbw = seq_.mb_width();
    const int addr = mby * mbw + mbx;
    const bool first_of_slice = mbx == 0;
    const bool last_of_slice = mbx == mbw - 1;
    const double act = activity(mbx, mby);

    // ----- Mode decision ---------------------------------------------------
    uint8_t flags = kIntra;
    int16_t mvf[2] = {0, 0};
    int16_t mvb[2] = {0, 0};
    MacroblockPixels pred{};

    if (type_ != PicType::I) {
      const double intra_cost = act + 500.0;
      if (type_ == PicType::P) {
        const MotionResult m = estimate_motion(
            orig_.y, fwd_->y, mbx, mby, st_.pmv[0][0], st_.pmv[0][1], me_);
        if (double(m.sad) <= intra_cost) {
          flags = kMotionForward;
          mvf[0] = int16_t(m.mv_x);
          mvf[1] = int16_t(m.mv_y);
          pred = predict(flags, mvf, mvb, mbx, mby);
        }
      } else {
        const MotionResult mf = estimate_motion(
            orig_.y, fwd_->y, mbx, mby, st_.pmv[0][0], st_.pmv[0][1], me_);
        const MotionResult mb_ = estimate_motion(
            orig_.y, bwd_->y, mbx, mby, st_.pmv[1][0], st_.pmv[1][1], me_);
        // Bidirectional candidate: average of the two best predictions.
        const int16_t cf[2] = {int16_t(mf.mv_x), int16_t(mf.mv_y)};
        const int16_t cb[2] = {int16_t(mb_.mv_x), int16_t(mb_.mv_y)};
        const MacroblockPixels pbi =
            predict(kMotionForward | kMotionBackward, cf, cb, mbx, mby);
        const uint32_t sad_bi = pred_sad(pbi, mbx, mby);

        uint32_t best = mf.sad;
        uint8_t best_flags = kMotionForward;
        if (mb_.sad < best) {
          best = mb_.sad;
          best_flags = kMotionBackward;
        }
        if (sad_bi + 64 < best) {
          best = sad_bi;
          best_flags = kMotionForward | kMotionBackward;
        }
        if (double(best) <= intra_cost) {
          flags = best_flags;
          if (flags & kMotionForward) {
            mvf[0] = cf[0];
            mvf[1] = cf[1];
          }
          if (flags & kMotionBackward) {
            mvb[0] = cb[0];
            mvb[1] = cb[1];
          }
          pred = (flags == (kMotionForward | kMotionBackward))
                     ? pbi
                     : predict(flags, mvf, mvb, mbx, mby);
        }
      }
    }

    // ----- Quantiser selection ---------------------------------------------
    int quant_code = st_.quant_scale_code;
    if (cfg_.adaptive_quant) {
      // TM5-style activity modulation around the base quantiser.
      const double a = act;
      const double avg = prev_avg_activity_;
      const double factor = (2.0 * a + avg) / (a + 2.0 * avg);
      quant_code = std::clamp(int(std::lround(base_quant_ * factor)), 1, 31);
    }

    // ----- Residual / transform --------------------------------------------
    int16_t blocks[6][64];
    load_mb_blocks(mbx, mby, blocks);
    if (!(flags & kIntra)) {
      // Subtract prediction.
      for (int b = 0; b < 4; ++b) {
        const int bx = (b & 1) * 8;
        const int by = (b >> 1) * 8;
        for (int r = 0; r < 8; ++r)
          for (int c = 0; c < 8; ++c)
            blocks[b][r * 8 + c] =
                int16_t(blocks[b][r * 8 + c] - pred.y[(by + r) * 16 + bx + c]);
      }
      for (int r = 0; r < 8; ++r)
        for (int c = 0; c < 8; ++c) {
          blocks[4][r * 8 + c] = int16_t(blocks[4][r * 8 + c] - pred.cb[r * 8 + c]);
          blocks[5][r * 8 + c] = int16_t(blocks[5][r * 8 + c] - pred.cr[r * 8 + c]);
        }
    }
    BlockData bd[6];
    int cbp = quantise_blocks(blocks, bd, flags & kIntra, quant_code);

    // ----- Skip decision ----------------------------------------------------
    if (cfg_.allow_skip && !first_of_slice && !last_of_slice &&
        !(flags & kIntra) && cbp == 0) {
      bool can_skip = false;
      if (type_ == PicType::P) {
        can_skip = mvf[0] == 0 && mvf[1] == 0;
      } else {
        const uint8_t dirs = flags & (kMotionForward | kMotionBackward);
        can_skip = dirs == st_.prev_motion_flags && dirs != 0;
        if (can_skip && (dirs & kMotionForward))
          can_skip = mvf[0] == st_.pmv[0][0] && mvf[1] == st_.pmv[0][1];
        if (can_skip && (dirs & kMotionBackward))
          can_skip = mvb[0] == st_.pmv[1][0] && mvb[1] == st_.pmv[1][1];
      }
      if (can_skip) {
        ++pending_skips_;
        if (stats_) ++stats_->skipped_mbs;
        // Mirror the decoder's skip-time state updates.
        if (type_ == PicType::P) st_.reset_pmv();
        st_.reset_dc(pce_);
        // Reconstruct the skip for reference pictures.
        if (type_ == PicType::P && recon_) {
          const int16_t zero[2] = {0, 0};
          reconstruct(kMotionForward, zero, zero, 0, bd, quant_code, mbx, mby);
        }
        return act;
      }
    }

    // ----- Type finalisation -------------------------------------------------
    if (!(flags & kIntra)) {
      if (cbp != 0) flags |= kPattern;
      if (type_ == PicType::P && (flags & kMotionForward) && mvf[0] == 0 &&
          mvf[1] == 0 && cbp != 0) {
        // Prefer the cheaper "No MC, coded" type for zero vectors.
        flags = kPattern;
      }
      if (type_ == PicType::P && !(flags & kMotionForward) && cbp == 0) {
        // Forced coded macroblock (first/last of slice) that would have been
        // a skip: encode as MC-not-coded with an explicit zero vector.
        flags = kMotionForward;
        mvf[0] = mvf[1] = 0;
      }
      if (type_ == PicType::B && cbp == 0 && flags == 0) {
        // Cannot happen (B always has a direction when not intra).
        PDW_CHECK(false);
      }
    }

    // Quantiser update only representable when the chosen type has a
    // kQuant variant (coded or intra macroblocks).
    const bool can_carry_quant = (flags & kPattern) || (flags & kIntra);
    if (quant_code != st_.quant_scale_code && can_carry_quant)
      flags |= kQuant;
    else
      quant_code = st_.quant_scale_code;

    // Re-quantise if the adaptive quantiser changed the step after the cbp
    // decision. (quantise_blocks already used quant_code; cbp may only have
    // been computed with the same code, so nothing to redo.)

    // ----- Emission ----------------------------------------------------------
    encode_address_increment(w, pending_skips_ + 1);
    pending_skips_ = 0;
    vlc_mb_type(type_).encode(w, flags);
    if (flags & kQuant) {
      w.put(uint32_t(quant_code), 5);
      st_.quant_scale_code = uint8_t(quant_code);
    }
    if (flags & kMotionForward) write_motion_vector(w, st_, mvf, 0, pce_);
    if (flags & kMotionBackward) write_motion_vector(w, st_, mvb, 1, pce_);
    if (flags & kIntra) {
      for (int b = 0; b < 6; ++b)
        write_block_intra(w, bd[b].qfs, bd[b].last, b < 4 ? 0 : b - 3, st_);
      st_.reset_pmv();
      if (stats_) ++stats_->intra_mbs;
    } else {
      if (type_ == PicType::P && !(flags & kMotionForward)) st_.reset_pmv();
      if (flags & kPattern) {
        vlc_coded_block_pattern().encode(w, cbp);
        for (int b = 0; b < 6; ++b)
          if (cbp & (0x20 >> b)) write_block_inter(w, bd[b].qfs, bd[b].last);
      }
      st_.reset_dc(pce_);
      if (stats_) ++stats_->inter_mbs;
    }
    st_.prev_motion_flags = uint8_t(flags & (kMotionForward | kMotionBackward));

    reconstruct(flags, mvf, mvb, cbp, bd, st_.quant_scale_code, mbx, mby);
    (void)addr;
    return act;
  }

  const EncoderConfig& cfg_;
  const SequenceHeader& seq_;
  const PictureCodingExt& pce_;
  PicType type_;
  const Frame& orig_;
  const Frame* fwd_;
  const Frame* bwd_;
  Frame* recon_;
  EncodeStats* stats_;
  std::unique_ptr<FrameRefSource> fwd_src_, bwd_src_;
  MeParams me_;
  MbState st_;
  int pending_skips_ = 0;
  int base_quant_ = 8;
  double avg_activity_ = 400.0;
  double prev_avg_activity_ = 400.0;
};

}  // namespace

// ---------------------------------------------------------------------------
// Stream-level encoder
// ---------------------------------------------------------------------------

Mpeg2Encoder::Mpeg2Encoder(const EncoderConfig& config) : config_(config) {
  PDW_CHECK_GT(config.width, 0);
  PDW_CHECK_GT(config.height, 0);
  PDW_CHECK_EQ(config.width % 16, 0) << "width must be macroblock aligned";
  PDW_CHECK_EQ(config.height % 16, 0) << "height must be macroblock aligned";
  PDW_CHECK_GE(config.gop_size, 1);
  PDW_CHECK_GE(config.b_frames, 0);

  seq_.width = config.width;
  seq_.height = config.height;
  seq_.frame_rate_code = config.frame_rate_code;
  seq_.intra_quant = kDefaultIntraQuant;
  seq_.non_intra_quant = kDefaultNonIntraQuant;
  seq_.progressive_sequence = true;

  // Smallest f_code whose half-pel range covers the search radius.
  const int need = 2 * config.me_range + 2;
  f_code_ = 1;
  while (16 * (1 << (f_code_ - 1)) < need) ++f_code_;
  PDW_CHECK_LE(f_code_, 9);

  pce_template_ = PictureCodingExt{};
  pce_template_.intra_dc_precision = config.intra_dc_precision;
  pce_template_.q_scale_type = config.q_scale_type;
  pce_template_.alternate_scan = config.alternate_scan;
}

namespace {

// A reference picture in the encode schedule.
struct RefPoint {
  int display = 0;       // display index
  bool is_i = false;     // I (GOP start) vs P
  int gop_base = 0;      // display index of the GOP's first displayed picture
};

// Build the reference schedule: closed GOPs restart the B cadence at every
// GOP (self-contained), open GOPs keep references every (b_frames+1) frames
// across GOP boundaries so a GOP's leading B pictures predict from the
// previous GOP's last reference.
std::vector<RefPoint> build_schedule(int num_frames, int gop_size, int m,
                                     bool closed) {
  std::vector<RefPoint> refs;
  if (closed) {
    int frame = 0;
    while (frame < num_frames) {
      const int gop_end = std::min(num_frames, frame + gop_size);
      refs.push_back({frame, true, frame});
      int prev = frame;
      while (prev < gop_end - 1) {
        const int next = std::min(prev + m, gop_end - 1);
        refs.push_back({next, false, frame});
        prev = next;
      }
      frame = gop_end;
    }
    return refs;
  }
  // Open: reference positions 0, m, 2m, ..., clamped to end at the last
  // frame; a reference is an I whenever it crosses into a new gop_size bin.
  std::vector<int> positions;
  int d = 0;
  while (true) {
    positions.push_back(d);
    if (d >= num_frames - 1) break;
    d = std::min(d + m, num_frames - 1);
  }
  int gop_base = 0;
  for (size_t j = 0; j < positions.size(); ++j) {
    const int p = positions[j];
    const bool is_i = j == 0 || p / gop_size > positions[j - 1] / gop_size;
    if (is_i) gop_base = j == 0 ? 0 : positions[j - 1] + 1;
    refs.push_back({p, is_i, gop_base});
  }
  return refs;
}

// Mean absolute luma difference, sampled on a grid (scene-cut metric).
double frame_mad(const Frame& a, const Frame& b) {
  int64_t sum = 0;
  int64_t count = 0;
  for (int y = 0; y < a.height(); y += 4) {
    const uint8_t* pa = a.y.row(y);
    const uint8_t* pb = b.y.row(y);
    for (int x = 0; x < a.width(); x += 4) {
      sum += std::abs(int(pa[x]) - int(pb[x]));
      ++count;
    }
  }
  return count ? double(sum) / double(count) : 0.0;
}

}  // namespace

std::vector<uint8_t> Mpeg2Encoder::encode(int num_frames,
                                          const FrameProducer& produce,
                                          EncodeStats* stats) {
  PDW_CHECK_GE(num_frames, 1);
  BitWriter w;
  // Rate control targets target_bpp bits/pixel; reserve the whole stream's
  // expected size (plus headroom for headers and rate-control overshoot) so
  // the writer never reallocates mid-encode.
  w.reserve(size_t(double(config_.width) * config_.height * num_frames *
                   config_.target_bpp / 8.0 * 1.5) +
            4096);
  RateControl rc(config_.width * config_.height, config_.target_bpp,
                 config_.gop_size, config_.b_frames);

  Frame ref_old(config_.width, config_.height);
  Frame ref_new(config_.width, config_.height);
  Frame orig_ref(config_.width, config_.height);
  std::vector<Frame> orig_bs;
  for (int i = 0; i < config_.b_frames; ++i)
    orig_bs.emplace_back(config_.width, config_.height);

  double rolling_activity = 400.0;

  auto encode_one = [&](PicType type, int temporal_ref, const Frame& orig,
                        const Frame* fwd, const Frame* bwd, Frame* out) {
    const size_t before = w.bytes().size();

    PictureHeader ph;
    ph.temporal_reference = temporal_ref & 0x3FF;
    ph.type = type;
    write_picture_header(w, ph);

    PictureCodingExt pce = pce_template_;
    pce.f_code[0][0] = pce.f_code[0][1] =
        type == PicType::I ? 15 : f_code_;
    pce.f_code[1][0] = pce.f_code[1][1] =
        type == PicType::B ? f_code_ : 15;
    write_picture_coding_extension(w, pce);

    const int quant = rc.pick_quant(type);
    PictureEncoder pe(config_, seq_, pce, type, orig, fwd, bwd, out, stats);
    pe.seed_activity(rolling_activity);
    pe.encode_slices(w, quant);
    rolling_activity = pe.average_activity();
    w.align_to_byte();

    const size_t bytes = w.bytes().size() - before;
    rc.update(type, bytes * 8);
    if (stats) {
      ++stats->frames;
      stats->picture_bytes.push_back(bytes);
      if (type == PicType::I) ++stats->i_pictures;
    }
  };

  const int m = config_.b_frames + 1;
  const auto schedule = build_schedule(num_frames, config_.gop_size, m,
                                       config_.closed_gops);

  int last_ref_display = -1;
  bool have_ref = false;
  for (const RefPoint& ref : schedule) {
    // Fetch the interval's originals in display order (B frames, then ref).
    for (int d = last_ref_display + 1; d < ref.display; ++d)
      produce(d, &orig_bs[size_t(d - last_ref_display - 1)]);
    produce(ref.display, &orig_ref);

    // Scene-cut promotion: a P whose source diverged sharply from its
    // reference becomes an I (mid-GOP I pictures are legal; temporal
    // numbering is unchanged).
    bool as_i = ref.is_i;
    if (!as_i && config_.scene_cut_threshold > 0.0 &&
        frame_mad(orig_ref, ref_new) > config_.scene_cut_threshold) {
      as_i = true;
      if (stats) ++stats->scene_cuts;
    }

    // Stream-level headers at GOP starts.
    if (ref.is_i) {
      if (!have_ref || config_.repeat_sequence_header) {
        write_sequence_header(w, seq_);
        write_sequence_extension(w, seq_);
      }
      GopHeader gop;
      // The very first GOP is closed either way (no leading B pictures).
      gop.closed_gop = config_.closed_gops || !have_ref;
      write_gop_header(w, gop);
    }

    // Code the reference first (coded order), then the interval's Bs.
    std::swap(ref_old, ref_new);
    encode_one(as_i ? PicType::I : PicType::P, ref.display - ref.gop_base,
               orig_ref, as_i ? nullptr : &ref_old, nullptr, &ref_new);
    for (int d = last_ref_display + 1; d < ref.display; ++d) {
      PDW_CHECK(have_ref) << "schedule placed B pictures before any reference";
      encode_one(PicType::B, d - ref.gop_base,
                 orig_bs[size_t(d - last_ref_display - 1)], &ref_old, &ref_new,
                 nullptr);
    }
    last_ref_display = ref.display;
    have_ref = true;
  }

  write_sequence_end(w);
  std::vector<uint8_t> out = w.take();
  if (stats) stats->total_bytes = out.size();
  return out;
}

}  // namespace pdw::enc
