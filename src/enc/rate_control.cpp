#include "enc/rate_control.h"

#include <algorithm>
#include <cmath>

namespace pdw::enc {

RateControl::RateControl(int pixels, double target_bpp, int gop_size,
                         int b_frames) {
  // Bit-budget weights per picture type. With an N-picture GOP containing
  // one I, (N / (b_frames+1) - 1) P and the rest B pictures, weights are
  // normalised so the GOP average hits target_bpp.
  const double wI = 3.0, wP = 1.6, wB = 0.7;
  const int m = b_frames + 1;
  const int n_ref = std::max(1, gop_size / m);  // I + P count
  const int nI = 1;
  const int nP = n_ref - 1;
  const int nB = gop_size - n_ref;
  const double avg_w = (nI * wI + nP * wP + nB * wB) / double(gop_size);
  const double base = double(pixels) * target_bpp / avg_w;
  target_bits_[0] = base * wI;
  target_bits_[1] = base * wP;
  target_bits_[2] = base * wB;
}

int RateControl::pick_quant(mpeg2::PicType type) const {
  return std::clamp(int(std::lround(quant_[idx(type)])), 1, 31);
}

void RateControl::update(mpeg2::PicType type, size_t bits) {
  const int i = idx(type);
  const double ratio = double(bits) / target_bits_[i];
  // Proportional adaptation with damping; clamp per-step change so one
  // atypical picture cannot destabilise the quantiser.
  const double step = std::clamp(std::sqrt(ratio), 0.7, 1.4);
  quant_[i] = std::clamp(quant_[i] * step, 1.0, 31.0);
}

double RateControl::target_bits(mpeg2::PicType type) const {
  return target_bits_[idx(type)];
}

}  // namespace pdw::enc
