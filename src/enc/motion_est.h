// Block motion estimation for the MPEG-2 encoder: predictor-seeded diamond
// search on full-pel positions followed by half-pel refinement against the
// reconstructed reference (closed-loop encoding).
#pragma once

#include "mpeg2/frame.h"

namespace pdw::enc {

struct MotionResult {
  int mv_x = 0;  // half-pel units
  int mv_y = 0;
  uint32_t sad = 0;  // 16x16 luma SAD at the chosen position
};

struct MeParams {
  int range_px = 15;    // full-pel search radius
  int mv_limit = 127;   // |mv| bound in half-pel units (from f_code)
};

// Estimate the motion of the 16x16 luma block at (mbx, mby) of `cur` within
// `ref`. `pred_mv_{x,y}` (half-pel) seeds the search. Candidate windows are
// constrained to lie fully inside the picture (MPEG-2 forbids out-of-picture
// references), including the extra half-pel sample.
MotionResult estimate_motion(const mpeg2::Plane& cur, const mpeg2::Plane& ref,
                             int mbx, int mby, int pred_mv_x, int pred_mv_y,
                             const MeParams& params);

// 16x16 SAD between the current macroblock and the (half-pel) motion
// compensated reference block; returns UINT32_MAX if the window leaves the
// picture. Exposed for tests.
uint32_t sad_halfpel(const mpeg2::Plane& cur, const mpeg2::Plane& ref, int mbx,
                     int mby, int mv_x, int mv_y);

}  // namespace pdw::enc
