#include "enc/motion_est.h"

#include <algorithm>
#include <cstdint>
#include <limits>

#include "kernels/kernels.h"

namespace pdw::enc {

using mpeg2::Plane;

namespace {

// Full-pel 16x16 SAD; returns UINT32_MAX when out of bounds or when the
// total meets/exceeds `best`. Bounds checks stay here; the pixel loop is a
// dispatched kernel (psadbw under SSE2/AVX2).
uint32_t sad_fullpel(const Plane& cur, const Plane& ref, int cx, int cy,
                     int rx, int ry, uint32_t best) {
  if (rx < 0 || ry < 0 || rx + 16 > ref.width() || ry + 16 > ref.height())
    return std::numeric_limits<uint32_t>::max();
  return kernels::active().sad16x16(cur.row(cy) + cx, cur.width(),
                                    ref.row(ry) + rx, ref.width(), best);
}

}  // namespace

uint32_t sad_halfpel(const Plane& cur, const Plane& ref, int mbx, int mby,
                     int mv_x, int mv_y) {
  const int cx = mbx * 16;
  const int cy = mby * 16;
  const int hx = mv_x & 1;
  const int hy = mv_y & 1;
  const int rx = cx + (mv_x >> 1);
  const int ry = cy + (mv_y >> 1);
  if (rx < 0 || ry < 0 || rx + 16 + hx > ref.width() ||
      ry + 16 + hy > ref.height())
    return std::numeric_limits<uint32_t>::max();
  return kernels::active().sad16x16_halfpel(cur.row(cy) + cx, cur.width(),
                                            ref.row(ry) + rx, ref.width(), hx,
                                            hy);
}

MotionResult estimate_motion(const Plane& cur, const Plane& ref, int mbx,
                             int mby, int pred_mv_x, int pred_mv_y,
                             const MeParams& params) {
  const int cx = mbx * 16;
  const int cy = mby * 16;

  // Full-pel bound implied by the half-pel mv limit (leave one sample of
  // headroom so half-pel refinement stays in range).
  const int limit_px = (params.mv_limit - 1) / 2;

  auto clamp_candidate = [&](int& fx, int& fy) {
    fx = std::clamp(fx, -limit_px, limit_px);
    fy = std::clamp(fy, -limit_px, limit_px);
  };

  uint32_t best = std::numeric_limits<uint32_t>::max();
  int bx = 0, by = 0;
  auto consider = [&](int fx, int fy) {
    const uint32_t s = sad_fullpel(cur, ref, cx, cy, cx + fx, cy + fy, best);
    if (s < best) {
      best = s;
      bx = fx;
      by = fy;
    }
  };

  // Seeds: zero vector and the motion predictor.
  consider(0, 0);
  {
    int sx = pred_mv_x >> 1, sy = pred_mv_y >> 1;
    clamp_candidate(sx, sy);
    if (sx != 0 || sy != 0) consider(sx, sy);
  }
  if (best == std::numeric_limits<uint32_t>::max()) {
    // Even the zero vector was out of bounds (cannot happen for in-picture
    // macroblocks); bail out with a zero vector.
    return {0, 0, sad_halfpel(cur, ref, mbx, mby, 0, 0)};
  }

  // Large-diamond iterative search, shrinking step.
  for (int step = std::min(8, params.range_px); step >= 1; step /= 2) {
    bool improved = true;
    while (improved) {
      improved = false;
      const int ox = bx, oy = by;
      static const int kDx[4] = {1, -1, 0, 0};
      static const int kDy[4] = {0, 0, 1, -1};
      for (int d = 0; d < 4; ++d) {
        int fx = ox + kDx[d] * step;
        int fy = oy + kDy[d] * step;
        if (std::abs(fx) > params.range_px || std::abs(fy) > params.range_px)
          continue;
        clamp_candidate(fx, fy);
        const uint32_t prev = best;
        consider(fx, fy);
        if (best < prev) improved = true;
      }
    }
  }

  // Half-pel refinement around the best full-pel position.
  int best_hx = bx * 2, best_hy = by * 2;
  uint32_t best_h = sad_halfpel(cur, ref, mbx, mby, best_hx, best_hy);
  for (int dy = -1; dy <= 1; ++dy) {
    for (int dx = -1; dx <= 1; ++dx) {
      if (dx == 0 && dy == 0) continue;
      const int hx = bx * 2 + dx;
      const int hy = by * 2 + dy;
      if (std::abs(hx) > params.mv_limit || std::abs(hy) > params.mv_limit)
        continue;
      const uint32_t s = sad_halfpel(cur, ref, mbx, mby, hx, hy);
      if (s < best_h) {
        best_h = s;
        best_hx = hx;
        best_hy = hy;
      }
    }
  }
  return {best_hx, best_hy, best_h};
}

}  // namespace pdw::enc
