#!/usr/bin/env bash
# Traced 2x2-wall smoke: run wall_player with PDW_TRACE on the smallest
# catalog stream, then validate the emitted Chrome trace-event JSON against
# scripts/trace_schema.jq and require a non-empty metrics snapshot.
#
# Usage: scripts/check_trace.sh [build_dir] [out_dir]
set -euo pipefail

build="$(cd "${1:-build}" && pwd)"
out="${2:-trace_smoke}"
here="$(cd "$(dirname "$0")" && pwd)"
mkdir -p "$out"

trace="$out/wall_2x2.json"
metrics="${trace%.json}.metrics.json"

# Run from $out so the player's wall snapshots land there too.
(cd "$out" && PDW_TRACE="$(basename "$trace")" \
  "$build/examples/wall_player" 1 2 2 2 16) \
  | tee "$out/wall_player.log"

test -s "$trace" || { echo "FAIL: $trace missing or empty" >&2; exit 1; }
test -s "$metrics" || { echo "FAIL: $metrics missing or empty" >&2; exit 1; }

jq -e -f "$here/trace_schema.jq" "$trace" > /dev/null \
  || { echo "FAIL: $trace violates trace_schema.jq" >&2; exit 1; }
echo "trace ok: $trace ($(jq '.traceEvents | length' "$trace") events," \
  "$(jq '.otherData.droppedEvents' "$trace") dropped)"

jq -e '.metrics | type == "array" and length > 0' "$metrics" > /dev/null \
  || { echo "FAIL: $metrics has an empty metrics set" >&2; exit 1; }
echo "metrics ok: $metrics ($(jq '.metrics | length' "$metrics") series)"
