#!/usr/bin/env bash
# Traced 2x2-wall smoke: run wall_player with PDW_TRACE on the smallest
# catalog stream, then validate the emitted Chrome trace-event JSON against
# scripts/trace_schema.jq and require a non-empty metrics snapshot.
#
# Usage: scripts/check_trace.sh [build_dir] [out_dir]
#        scripts/check_trace.sh --merged TRACE [min_pids]
#
# --merged validates an already-written merged multi-process trace (from the
# telemetry collector) instead of running wall_player: the per-stage schema
# plus the multi-pid extensions — at least min_pids distinct pids (default
# 2), cross-process flow events paired by id, and globally non-decreasing
# rebased timestamps.
set -euo pipefail

here="$(cd "$(dirname "$0")" && pwd)"

if [[ "${1:-}" == "--merged" ]]; then
  trace="${2:?usage: check_trace.sh --merged TRACE [min_pids]}"
  min_pids="${3:-2}"
  test -s "$trace" || { echo "FAIL: $trace missing or empty" >&2; exit 1; }
  jq -e --arg min_pids "$min_pids" --arg require_flows 1 \
    --arg check_sorted 1 -f "$here/trace_schema.jq" "$trace" > /dev/null \
    || { echo "FAIL: $trace violates trace_schema.jq (merged mode)" >&2
         exit 1; }
  pids="$(jq '[.traceEvents[] | select(.ph == "X" or .ph == "i") | .pid] | unique | length' "$trace")"
  flows="$(jq '[.traceEvents[] | select(.ph == "s")] | length' "$trace")"
  echo "merged trace ok: $trace" \
    "($(jq '.traceEvents | length' "$trace") events, $pids pids," \
    "$flows flows)"
  exit 0
fi

build="$(cd "${1:-build}" && pwd)"
out="${2:-trace_smoke}"
mkdir -p "$out"

trace="$out/wall_2x2.json"
metrics="${trace%.json}.metrics.json"

# Run from $out so the player's wall snapshots land there too.
(cd "$out" && PDW_TRACE="$(basename "$trace")" \
  "$build/examples/wall_player" 1 2 2 2 16) \
  | tee "$out/wall_player.log"

test -s "$trace" || { echo "FAIL: $trace missing or empty" >&2; exit 1; }
test -s "$metrics" || { echo "FAIL: $metrics missing or empty" >&2; exit 1; }

jq -e -f "$here/trace_schema.jq" "$trace" > /dev/null \
  || { echo "FAIL: $trace violates trace_schema.jq" >&2; exit 1; }
echo "trace ok: $trace ($(jq '.traceEvents | length' "$trace") events," \
  "$(jq '.otherData.droppedEvents' "$trace") dropped)"

jq -e '.metrics | type == "array" and length > 0' "$metrics" > /dev/null \
  || { echo "FAIL: $metrics has an empty metrics set" >&2; exit 1; }
echo "metrics ok: $metrics ($(jq '.metrics | length' "$metrics") series)"
