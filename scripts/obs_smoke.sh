#!/usr/bin/env bash
# Cluster observability smoke: the multi-process wall streaming itself to a
# live collector, end to end.
#
# Leg 1 (merged trace): a 7-process 1-2-(2,2) wall, every wall_node exporting
# telemetry to `wall_top --remote`; gates on wall_top exiting complete (all 7
# nodes seen + all byes), on the merged Perfetto trace passing the multi-pid
# schema (7 distinct pids, cross-process flow events, monotone rebased
# timestamps), and on the per-process reports matching the lockstep reference
# bit-exactly (wall_node --check).
#
# Leg 2 (flight recorder): the same wall with per-node flight recorders and a
# live 2 s heartbeat timeout; one decoder kills itself mid-run (SIGTERM after
# 8 displayed pictures). Gates on the victim dying by SIGTERM with a
# "signal:15" flight dump holding its last spans AND wire events, on the
# survivors adopting the dead tile and exiting cleanly, and on the root's
# death_declared dump existing.
#
# Usage: scripts/obs_smoke.sh [build_dir] [out_dir]
set -euo pipefail

build="$(cd "${1:-build}" && pwd)"
out="${2:-obs_smoke}"
here="$(cd "$(dirname "$0")" && pwd)"
mkdir -p "$out"
out="$(cd "$out" && pwd)"

node_bin="$build/examples/wall_node"
top_bin="$build/examples/wall_top"
stream=(--k 2 --m 2 --n 2 --width 384 --height 288 --frames 48)
rv_port=47411
tele_port=47412

echo "== leg 1: 7-process wall + collector -> one merged trace =="
"$top_bin" --remote $tele_port --expect 7 --duration 60 \
  --trace "$out/merged.json" --refresh 200 > "$out/wall_top.log" 2>&1 &
top_pid=$!
sleep 0.3

pids=()
for i in 0 1 2 3 4 5 6; do
  "$node_bin" --node $i "${stream[@]}" --rv-port $rv_port \
    --report "$out/r$i" --telemetry-port $tele_port \
    --telemetry-interval 0.1 --timeout 60 > "$out/node$i.log" 2>&1 &
  pids+=($!)
done
for p in "${pids[@]}"; do
  wait "$p" || { echo "FAIL: a wall_node exited nonzero" >&2; exit 1; }
done
wait "$top_pid" \
  || { echo "FAIL: wall_top --remote incomplete" >&2
       tail -20 "$out/wall_top.log" >&2; exit 1; }

"$here/check_trace.sh" --merged "$out/merged.json" 7

"$node_bin" --check "${stream[@]}" \
  --reports "$out"/r0 "$out"/r1 "$out"/r2 "$out"/r3 "$out"/r4 "$out"/r5 \
  "$out"/r6 \
  || { echo "FAIL: merged reports do not match the lockstep reference" >&2
       exit 1; }

echo
echo "== leg 2: kill a decoder mid-run -> flight-recorder post-mortem =="
flight="$out/flight"
mkdir -p "$flight"
rv_port=$((rv_port + 10))

pids=()
for i in 0 1 2 3 4 5 6; do
  extra=()
  [ $i -eq 6 ] && extra=(--die-after 8)
  "$node_bin" --node $i "${stream[@]}" --rv-port $rv_port \
    --report "$flight/r$i" --flight-dir "$flight" --hb-timeout 2 \
    --timeout 60 "${extra[@]}" > "$out/kill_node$i.log" 2>&1 &
  pids+=($!)
done
codes=()
for p in "${pids[@]}"; do
  set +e; wait "$p"; codes+=($?); set -e
done
echo "exit codes: ${codes[*]}"
[ "${codes[6]}" -eq 143 ] \
  || { echo "FAIL: victim should die by SIGTERM (143), got ${codes[6]}" >&2
       exit 1; }
for i in 0 1 2 3 4 5; do
  [ "${codes[$i]}" -eq 0 ] \
    || { echo "FAIL: survivor node $i exited ${codes[$i]}" >&2; exit 1; }
done

victim_dump="$(ls "$flight"/flight_node6_*.json | head -1)"
jq -e '.reason == "signal:15"
       and (.spans | type == "array" and length > 0)
       and (.wire | type == "array" and length > 0)
       and (.metrics.metrics | type == "array" and length > 0)' \
  "$victim_dump" > /dev/null \
  || { echo "FAIL: $victim_dump is not a valid post-mortem" >&2; exit 1; }
echo "victim dump ok: $victim_dump" \
  "($(jq '.spans | length' "$victim_dump") spans," \
  "$(jq '.wire | length' "$victim_dump") wire events)"

root_dump="$(ls "$flight"/flight_node0_*.json | head -1)"
jq -e '.reason == "death_declared"' "$root_dump" > /dev/null \
  || { echo "FAIL: root dump is not a death_declared post-mortem" >&2
       exit 1; }
echo "root dump ok: $root_dump"

echo
echo "obs smoke PASS"
