#!/usr/bin/env python3
"""Plot the paper-reproduction figures from benchmark CSV output.

Each bench binary prints its table twice: human-aligned and as a CSV block
after a line reading "CSV:". This script extracts those CSV blocks and, when
matplotlib is available, renders the paper's figures:

  Figure 6 — frame rate vs node count, one-level vs two-level
  Figure 7 — per-decoder runtime breakdown (stacked bars)
  Figure 8 — pixel decoding rate vs node count
  Figure 9 — per-node send/receive bandwidth (grouped bars)

Usage:
  bench/bench_table5_fig6_framerate > fig6.txt
  scripts/plot_results.py fig6 fig6.txt out.png

Without matplotlib the script still extracts and prints the CSV, so it can
feed any other plotting tool.
"""
import csv
import io
import sys


def extract_csv_blocks(text: str):
    """Return the list of CSV blocks (each a list of rows) in the output."""
    blocks, current, in_csv = [], [], False
    for line in text.splitlines():
        if line.strip() == "CSV:":
            in_csv = True
            current = []
            continue
        if in_csv:
            if "," in line:
                current.append(line)
            else:
                if current:
                    blocks.append(list(csv.reader(io.StringIO("\n".join(current)))))
                in_csv = False
    if in_csv and current:
        blocks.append(list(csv.reader(io.StringIO("\n".join(current)))))
    return blocks


def _plt():
    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt

        return plt
    except ImportError:
        return None


def plot_fig6(blocks, out):
    plt = _plt()
    if plt is None:
        return False
    fig, ax = plt.subplots(figsize=(7, 5))
    labels = ["stream 1", "stream 8"]
    for i, block in enumerate(blocks[:2]):
        head, rows = block[0], block[1:]
        nodes1 = [int(r[head.index("nodes")]) for r in rows]
        fps1 = [float(r[head.index("fps(1-level)")]) for r in rows]
        nodes2 = [int(r[head.index("nodes2")]) for r in rows]
        fps2 = [float(r[head.index("fps(2-level)")]) for r in rows]
        ax.plot(nodes1, fps1, "--o", label=f"{labels[i]} one-level")
        ax.plot(nodes2, fps2, "-s", label=f"{labels[i]} two-level")
    ax.set_xlabel("number of nodes")
    ax.set_ylabel("frames per second")
    ax.set_title("Figure 6: one-level vs two-level frame rate")
    ax.legend()
    ax.grid(True, alpha=0.3)
    fig.savefig(out, dpi=120, bbox_inches="tight")
    return True


def plot_fig7(blocks, out):
    plt = _plt()
    if plt is None:
        return False
    fig, axes = plt.subplots(1, len(blocks), figsize=(6 * len(blocks), 5))
    if len(blocks) == 1:
        axes = [axes]
    cats = ["Work%", "Serve%", "Receive%", "Wait%", "Ack%"]
    for ax, block in zip(axes, blocks):
        head, rows = block[0], block[1:]
        names = [r[0] for r in rows]
        bottoms = [0.0] * len(rows)
        for cat in cats:
            vals = [float(r[head.index(cat)]) for r in rows]
            ax.bar(names, vals, bottom=bottoms, label=cat)
            bottoms = [b + v for b, v in zip(bottoms, vals)]
        ax.set_ylabel("% of runtime")
        ax.legend(fontsize=8)
        ax.tick_params(axis="x", rotation=90, labelsize=7)
    fig.suptitle("Figure 7: decoder runtime breakdown")
    fig.savefig(out, dpi=120, bbox_inches="tight")
    return True


def plot_fig8(blocks, out):
    plt = _plt()
    if plt is None:
        return False
    head, rows = blocks[0][0], blocks[0][1:]
    nodes = [int(r[head.index("nodes")]) for r in rows]
    mpps = [float(r[head.index("Mpps")]) for r in rows]
    fig, ax = plt.subplots(figsize=(7, 5))
    ax.plot(nodes, mpps, "o")
    ax.set_xlabel("number of nodes")
    ax.set_ylabel("pixel decoding rate (Mpps)")
    ax.set_title("Figure 8: resolution scalability")
    ax.grid(True, alpha=0.3)
    fig.savefig(out, dpi=120, bbox_inches="tight")
    return True


def plot_fig9(blocks, out):
    plt = _plt()
    if plt is None:
        return False
    head, rows = blocks[0][0], blocks[0][1:]
    names = [r[head.index("role")] for r in rows]
    send = [float(r[head.index("send MB/s")]) for r in rows]
    recv = [float(r[head.index("recv MB/s")]) for r in rows]
    x = range(len(names))
    fig, ax = plt.subplots(figsize=(10, 5))
    ax.bar([i - 0.2 for i in x], recv, width=0.4, label="receive")
    ax.bar([i + 0.2 for i in x], send, width=0.4, label="send")
    ax.set_xticks(list(x))
    ax.set_xticklabels(names, rotation=90, fontsize=7)
    ax.set_ylabel("MB/s")
    ax.set_title("Figure 9: per-node bandwidth, 1-4-(4,4), stream 16")
    ax.legend()
    fig.savefig(out, dpi=120, bbox_inches="tight")
    return True


PLOTTERS = {"fig6": plot_fig6, "fig7": plot_fig7, "fig8": plot_fig8,
            "fig9": plot_fig9}


def main():
    if len(sys.argv) < 3:
        print(__doc__)
        return 1
    kind, path = sys.argv[1], sys.argv[2]
    out = sys.argv[3] if len(sys.argv) > 3 else f"{kind}.png"
    with open(path) as f:
        blocks = extract_csv_blocks(f.read())
    if not blocks:
        print("no CSV blocks found in", path)
        return 1
    if kind in PLOTTERS and PLOTTERS[kind](blocks, out):
        print("wrote", out)
        return 0
    # Fallback: dump the extracted CSV.
    for block in blocks:
        for row in block:
            print(",".join(row))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
