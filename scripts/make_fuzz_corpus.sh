#!/usr/bin/env bash
# Build a seed corpus for the fuzz harnesses in fuzz/.
#
# Seeds are real outputs of our own encoder and muxers — tiny elementary
# streams in several configurations, plus program-stream and transport-stream
# wrappings — followed by deterministic single-bit-flip variants of each.
# Valid-but-slightly-damaged inputs reach far deeper into the parsers than
# random bytes, which is what makes the corpus worth seeding.
#
# Usage: scripts/make_fuzz_corpus.sh [build-dir] [out-dir]
#   build-dir  cmake build tree with examples/ built   (default: build)
#   out-dir    corpus root, one subdir per harness     (default: fuzz/corpus)
set -euo pipefail

BUILD="${1:-build}"
OUT="${2:-fuzz/corpus}"
TRANSCODE="$BUILD/examples/transcode_tool"
PSTOOL="$BUILD/examples/ps_tool"
WIRESEED="$BUILD/examples/wire_seed_tool"

for tool in "$TRANSCODE" "$PSTOOL" "$WIRESEED"; do
  if [ ! -x "$tool" ]; then
    echo "error: $tool not built (cmake --build $BUILD --target transcode_tool ps_tool wire_seed_tool)" >&2
    exit 1
  fi
done

mkdir -p "$OUT/es" "$OUT/container" "$OUT/wire"
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

# Tiny elementary streams: one per scene kind, small frame counts so each
# seed stays a few kilobytes. transcode_tool args: scene w h frames bpp out.
i=0
for scene in moving-objects panning-texture animation localized-detail; do
  "$TRANSCODE" "$scene" 96 64 4 0.4 "$TMP/seed_$i.m2v" > /dev/null
  cp "$TMP/seed_$i.m2v" "$OUT/es/seed_${scene}.m2v"
  i=$((i + 1))
done

# Container wrappings of the first ES seed.
"$PSTOOL" mux "$TMP/seed_0.m2v" "$OUT/container/seed.mpg" > /dev/null
"$PSTOOL" tsmux "$TMP/seed_0.m2v" "$OUT/container/seed.ts" > /dev/null

# Typed protocol message bodies (one per wire message type) for fuzz_wire.
"$WIRESEED" "$OUT/wire"

# Deterministic bit-flip variants: flip one bit at several byte offsets
# spread over each seed. Python is only used as a portable byte editor.
flip_variants() {
  local src=$1 dst_prefix=$2
  python3 - "$src" "$dst_prefix" <<'EOF'
import sys
src, prefix = sys.argv[1], sys.argv[2]
data = bytearray(open(src, "rb").read())
n = len(data)
# Seeds too small to skip a 4-byte prefix (tiny wire bodies): flip within
# whatever is there instead.
if n < 6:
    for k in range(min(8, n * 8)):
        flipped = bytearray(data)
        flipped[k % n] ^= 1 << (k // n)
        open(f"{prefix}_flip{k}.bin", "wb").write(flipped)
    sys.exit(0)
# 8 positions spread over the file, skipping the first 4 bytes so the
# top-level start code survives and the parse goes deep.
for k in range(8):
    pos = 4 + (n - 5) * k // 8
    bit = (k * 3) % 8
    flipped = bytearray(data)
    flipped[pos] ^= 1 << bit
    open(f"{prefix}_flip{k}.bin", "wb").write(flipped)
EOF
}

for f in "$OUT"/es/*.m2v; do
  flip_variants "$f" "${f%.m2v}"
done
for f in "$OUT/container/seed.mpg" "$OUT/container/seed.ts"; do
  flip_variants "$f" "${f%.*}_$(basename "${f##*.}")"
done
for f in "$OUT"/wire/*.wire; do
  flip_variants "$f" "${f%.wire}"
done

echo "corpus written to $OUT:"
find "$OUT" -type f | wc -l | xargs echo "  files:"
du -sh "$OUT" | cut -f1 | xargs echo "  size:"
