#!/usr/bin/env bash
# Build (Release) and run every benchmark binary, refreshing bench_results/.
#
# Each bench writes bench_results/NAME.txt (stdout); stderr goes to
# bench_results/NAME.err only when non-empty, so a clean run leaves no .err
# files behind. Streams are generated once and cached under PDW_CACHE_DIR
# (default /tmp/pdw_stream_cache); the first run is much slower than later
# ones.
#
# Usage: scripts/run_benches.sh [build_dir]
#   PDW_FRAMES=N     frames per generated stream (default 48)
#   PDW_KERNELS=...  force a kernel dispatch level (scalar|sse2|avx2)
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build-bench}"
results="$repo/bench_results"

cmake -S "$repo" -B "$build" -DCMAKE_BUILD_TYPE=Release
cmake --build "$build" -j"$(nproc)"

mkdir -p "$results"

benches=(
  bench_codec_micro
  bench_table1_levels
  bench_table4_streams
  bench_table5_fig6_framerate
  bench_table6_fig8_resolution
  bench_fig7_breakdown
  bench_fig9_bandwidth
  bench_ablation_mei
  bench_ablation_sph
  bench_ablation_zerocopy
  bench_ablation_dynamic
  bench_fault_recovery
)

for name in "${benches[@]}"; do
  bin="$build/bench/$name"
  [ -x "$bin" ] || { echo "missing $bin" >&2; exit 1; }
  echo "=== $name ==="
  args=()
  if [ "$name" = bench_codec_micro ]; then
    # Both google-benchmark generations accept this via the bench's own
    # flag normalization (1.7 wants a plain double, 1.8+ the "s" suffix).
    args+=(--benchmark_min_time=0.2s)
  fi
  rm -f "$results/$name.err"
  if ! "$bin" "${args[@]}" > "$results/$name.txt" 2> "$results/$name.err"; then
    echo "FAILED: $name (see $results/$name.err)" >&2
    exit 1
  fi
  # Keep .err only if something was actually printed there.
  [ -s "$results/$name.err" ] || rm -f "$results/$name.err"
done

echo "done: results in $results"
