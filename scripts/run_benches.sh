#!/usr/bin/env bash
# Build (Release) and run every benchmark binary, refreshing bench_results/.
#
# Each bench writes bench_results/NAME.txt (stdout); stderr goes to
# bench_results/NAME.err only when non-empty, so a clean run leaves no .err
# files behind. Streams are generated once and cached under PDW_CACHE_DIR
# (default /tmp/pdw_stream_cache); the first run is much slower than later
# ones.
#
# After the run, every "##json {...}" line the benches printed (see
# benchutil::json_metric) plus bench_codec_micro's google-benchmark JSON is
# consolidated into bench_results/BENCH_RESULTS.json: one flat list of
# {name, value, unit} records stamped with the git sha and date.
#
# Usage: scripts/run_benches.sh [build_dir]
#   PDW_FRAMES=N     frames per generated stream (default 48)
#   PDW_KERNELS=...  force a kernel dispatch level (scalar|sse2|avx2)
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build-bench}"
results="$repo/bench_results"

cmake -S "$repo" -B "$build" -DCMAKE_BUILD_TYPE=Release
cmake --build "$build" -j"$(nproc)"

mkdir -p "$results"

benches=(
  bench_codec_micro
  bench_table1_levels
  bench_table4_streams
  bench_table5_fig6_framerate
  bench_table6_fig8_resolution
  bench_fig7_breakdown
  bench_fig9_bandwidth
  bench_ablation_mei
  bench_ablation_sph
  bench_ablation_zerocopy
  bench_ablation_dynamic
  bench_ablation_adaptive
  bench_fault_recovery
  bench_overload
  bench_chaos_soak
  bench_socket_wall
)

for name in "${benches[@]}"; do
  bin="$build/bench/$name"
  [ -x "$bin" ] || { echo "missing $bin" >&2; exit 1; }
  echo "=== $name ==="
  args=()
  if [ "$name" = bench_codec_micro ]; then
    # Both google-benchmark generations accept this via the bench's own
    # flag normalization (1.7 wants a plain double, 1.8+ the "s" suffix).
    args+=(--benchmark_min_time=0.2s)
    args+=(--benchmark_out="$results/$name.json"
           --benchmark_out_format=json)
  fi
  rm -f "$results/$name.err"
  if ! "$bin" "${args[@]}" > "$results/$name.txt" 2> "$results/$name.err"; then
    echo "FAILED: $name (see $results/$name.err)" >&2
    exit 1
  fi
  # Keep .err only if something was actually printed there.
  [ -s "$results/$name.err" ] || rm -f "$results/$name.err"
done

# Consolidate every bench's ##json lines (plus the google-benchmark JSON from
# bench_codec_micro, reduced to ns/op per kernel) into one machine-readable
# file keyed by the exact source revision.
python3 - "$results" <<'PY'
import json, os, subprocess, sys
from datetime import datetime, timezone

results = sys.argv[1]
metrics = []
for name in sorted(os.listdir(results)):
    if not name.endswith('.txt'):
        continue
    bench = name[:-4]
    with open(os.path.join(results, name)) as f:
        for line in f:
            if not line.startswith('##json '):
                continue
            rec = json.loads(line[len('##json '):])
            rec['bench'] = bench
            metrics.append(rec)

micro = os.path.join(results, 'bench_codec_micro.json')
if os.path.exists(micro):
    with open(micro) as f:
        for b in json.load(f).get('benchmarks', []):
            if b.get('run_type') == 'aggregate':
                continue
            metrics.append({
                'name': b['name'],
                'value': b['real_time'],
                'unit': b.get('time_unit', 'ns') + '/op',
                'bench': 'bench_codec_micro',
            })

def git(*args):
    try:
        return subprocess.check_output(('git',) + args, text=True).strip()
    except Exception:
        return 'unknown'

out = {
    'git_sha': git('rev-parse', 'HEAD'),
    'git_branch': git('rev-parse', '--abbrev-ref', 'HEAD'),
    'date': datetime.now(timezone.utc).isoformat(timespec='seconds'),
    'frames': int(os.environ.get('PDW_FRAMES', '48')),
    'metrics': metrics,
}
path = os.path.join(results, 'BENCH_RESULTS.json')
with open(path, 'w') as f:
    json.dump(out, f, indent=1)
    f.write('\n')
print(f'wrote {path}: {len(metrics)} metrics @ {out["git_sha"][:12]}')

# Alloc gate: the zero-copy ablation reports steady-state pool misses per
# picture (hot-path mallocs after warm-up). The pooled pipeline must run
# alloc-free — any nonzero value is a regression and fails the whole run.
gate = [m for m in metrics if m['name'].endswith('steady_misses_per_pic')]
if not gate:
    sys.exit('alloc gate: no steady_misses_per_pic metrics found '
             '(bench_ablation_zerocopy missing from the run?)')
bad = [m for m in gate if m['value'] > 0]
for m in bad:
    print(f"alloc gate FAILED: {m['name']} = {m['value']} allocs/pic",
          file=sys.stderr)
if bad:
    sys.exit(1)
print(f'alloc gate OK: {len(gate)} configs at 0 hot-path mallocs/picture')

# Chaos gate: every seeded chaos schedule must have held the full invariant
# suite (the binary also exits nonzero on failure; this catches a stale or
# truncated results file).
total = [m for m in metrics if m['name'] == 'chaos_schedules_total']
ok = [m for m in metrics if m['name'] == 'chaos_schedules_ok']
if not total or not ok:
    sys.exit('chaos gate: schedule metrics missing '
             '(bench_chaos_soak absent from the run?)')
if total[0]['value'] != ok[0]['value']:
    sys.exit(f"chaos gate FAILED: {ok[0]['value']:.0f}/"
             f"{total[0]['value']:.0f} schedules held their invariants")
print(f"chaos gate OK: {ok[0]['value']:.0f}/{total[0]['value']:.0f} "
      'schedules held every invariant')
PY

echo "done: results in $results"
