# Chrome trace-event schema gate for traced wall runs
# (driven by scripts/check_trace.sh, jq -e so a false/null result fails).
#
# A trace passes only if:
#   * traceEvents is a non-empty array;
#   * every event carries name/ph/pid, and every span ('X') and instant
#     ('i') event also carries ts (metadata 'M' events have no timestamp);
#   * every complete span has a non-negative dur;
#   * every protocol stage emits at least one span — an engine change that
#     silently stops tracing a stage fails here, not in a viewer later.
#
# Optional named arguments extend the gate for merged multi-process traces
# (all off by default, so existing call sites are unchanged):
#   --arg min_pids N       span/instant events span at least N distinct pids
#   --arg require_flows 1  flow-start ('s') and flow-finish ('f') events are
#                          present, paired by id, and every finish binds to
#                          the enclosing slice ("bp":"e")
#   --arg check_sorted 1   timestamped events appear in non-decreasing ts
#                          order (the collector stable-sorts after rebasing
#                          every process into its own clock domain)
def spans: [.traceEvents[] | select(.ph == "X") | .name] | unique;
def min_pids: ($ARGS.named.min_pids // "0") | tonumber;
def require_flows: ($ARGS.named.require_flows // "") != "";
def check_sorted: ($ARGS.named.check_sorted // "") != "";

(.traceEvents | type == "array" and length > 0)
and ([.traceEvents[] | has("name") and has("ph") and has("pid")] | all)
and ([.traceEvents[] | select(.ph == "X" or .ph == "i")
      | has("ts") and has("tid")] | all)
and ([.traceEvents[] | select(.ph == "X") | .dur >= 0] | all)
and ((["copy_pic", "split_pic", "route_sp", "recv_sp", "serve_sp",
       "wait_halo", "decode_sp", "ack_pic"] - spans) == [])
and (min_pids == 0
     or ([.traceEvents[] | select(.ph == "X" or .ph == "i") | .pid]
         | unique | length) >= min_pids)
and ((require_flows | not)
     or (([.traceEvents[] | select(.ph == "s") | .id] | unique) as $starts
         | ([.traceEvents[] | select(.ph == "f") | .id] | unique) as $ends
         | ($starts | length) > 0
           and ($ends | length) > 0
           and (($ends - $starts) == [])
           and ([.traceEvents[] | select(.ph == "f") | .bp == "e"] | all)
           and ([.traceEvents[] | select(.ph == "s" or .ph == "f")
                 | has("id") and has("ts")] | all)))
and ((check_sorted | not)
     or ([.traceEvents[] | select(has("ts")) | .ts] as $ts
         | [range(1; $ts | length) | select($ts[.] < $ts[. - 1])]
           | length == 0))
