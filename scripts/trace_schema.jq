# Chrome trace-event schema gate for traced wall runs
# (driven by scripts/check_trace.sh, jq -e so a false/null result fails).
#
# A trace passes only if:
#   * traceEvents is a non-empty array;
#   * every event carries name/ph/pid, and every span ('X') and instant
#     ('i') event also carries ts (metadata 'M' events have no timestamp);
#   * every complete span has a non-negative dur;
#   * every protocol stage emits at least one span — an engine change that
#     silently stops tracing a stage fails here, not in a viewer later.
def spans: [.traceEvents[] | select(.ph == "X") | .name] | unique;

(.traceEvents | type == "array" and length > 0)
and ([.traceEvents[] | has("name") and has("ph") and has("pid")] | all)
and ([.traceEvents[] | select(.ph == "X" or .ph == "i")
      | has("ts") and has("tid")] | all)
and ([.traceEvents[] | select(.ph == "X") | .dur >= 0] | all)
and ((["copy_pic", "split_pic", "route_sp", "recv_sp", "serve_sp",
       "wait_halo", "decode_sp", "ack_pic"] - spans) == [])
