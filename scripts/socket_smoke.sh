#!/usr/bin/env bash
# Multi-process wall smoke: launch one wall_node process per node on UDP
# loopback, let them rendezvous and decode a 2x2 wall, then merge the
# per-process reports and check them against the single-threaded reference
# (`wall_node --check`): message counts, traffic matrix, per-tile frame
# digests — bit-exact, zero degraded tiles.
#
# Two legs:
#   clean — plain loopback; the equivalence gate (socket-host wire
#           accounting must match the in-process engine's).
#   lossy — the root's deterministic impairment proxy drops 5% / dups 2% /
#           delays 5% of every datagram; the gate is still bit-exact output
#           (retransmission must recover everything, abandon nothing).
#
# Usage: scripts/socket_smoke.sh [build_dir]
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"
bin="$build/examples/wall_node"
[ -x "$bin" ] || { echo "missing $bin (build the wall_node target)" >&2; exit 1; }

# 1 root + 2 splitters + 2x2 tiles = 7 nodes.
k=2 m=2 n=2
nodes=$((1 + k + m * n))
stream=(--k "$k" --m "$m" --n "$n" --width 256 --height 192 --frames 8)

run_leg() {
  local leg="$1"; shift
  local port="$1"; shift
  local dir; dir="$(mktemp -d "/tmp/pdw_socket_smoke_${leg}.XXXXXX")"
  trap 'rm -rf "$dir"' RETURN

  echo "=== socket smoke: $leg (port $port, $nodes processes) ==="
  local pids=() reports=()
  for ((node = nodes - 1; node >= 1; node--)); do
    timeout 120 "$bin" --node "$node" "${stream[@]}" --rv-port "$port" \
      --report "$dir/r$node" "$@" &
    pids+=($!)
    reports+=("$dir/r$node")
  done
  # Node 0 hosts the rendezvous listener (and the impairment proxy, if any);
  # run it in the foreground so its exit code gates the leg.
  timeout 120 "$bin" --node 0 "${stream[@]}" --rv-port "$port" \
    --report "$dir/r0" "$@"
  local rc=0
  for pid in "${pids[@]}"; do wait "$pid" || rc=$?; done
  [ "$rc" -eq 0 ] || { echo "socket smoke: $leg node exited $rc" >&2; exit 1; }

  "$bin" --check "${stream[@]}" --reports "$dir/r0" "${reports[@]}"
}

run_leg clean 47381
run_leg lossy 47391 --loss 0.05 --dup 0.02 --delay 0.05 --delay-s 0.002 \
  --impair-seed 11

echo "socket smoke: both legs PASS"
