# Empty compiler generated dependencies file for m2v_info.
# This may be replaced when dependencies are built.
