file(REMOVE_RECURSE
  "CMakeFiles/m2v_info.dir/m2v_info.cpp.o"
  "CMakeFiles/m2v_info.dir/m2v_info.cpp.o.d"
  "m2v_info"
  "m2v_info.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m2v_info.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
