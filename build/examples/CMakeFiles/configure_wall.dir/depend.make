# Empty dependencies file for configure_wall.
# This may be replaced when dependencies are built.
