file(REMOVE_RECURSE
  "CMakeFiles/configure_wall.dir/configure_wall.cpp.o"
  "CMakeFiles/configure_wall.dir/configure_wall.cpp.o.d"
  "configure_wall"
  "configure_wall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/configure_wall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
