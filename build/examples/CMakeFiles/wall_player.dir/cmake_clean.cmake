file(REMOVE_RECURSE
  "CMakeFiles/wall_player.dir/wall_player.cpp.o"
  "CMakeFiles/wall_player.dir/wall_player.cpp.o.d"
  "wall_player"
  "wall_player.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wall_player.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
