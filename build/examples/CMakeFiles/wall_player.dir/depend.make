# Empty dependencies file for wall_player.
# This may be replaced when dependencies are built.
