file(REMOVE_RECURSE
  "CMakeFiles/ps_tool.dir/ps_tool.cpp.o"
  "CMakeFiles/ps_tool.dir/ps_tool.cpp.o.d"
  "ps_tool"
  "ps_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ps_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
