# Empty compiler generated dependencies file for ps_tool.
# This may be replaced when dependencies are built.
