# Empty compiler generated dependencies file for test_root_splitter.
# This may be replaced when dependencies are built.
