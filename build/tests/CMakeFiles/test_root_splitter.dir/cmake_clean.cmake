file(REMOVE_RECURSE
  "CMakeFiles/test_root_splitter.dir/test_root_splitter.cpp.o"
  "CMakeFiles/test_root_splitter.dir/test_root_splitter.cpp.o.d"
  "test_root_splitter"
  "test_root_splitter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_root_splitter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
