file(REMOVE_RECURSE
  "CMakeFiles/test_subpicture.dir/test_subpicture.cpp.o"
  "CMakeFiles/test_subpicture.dir/test_subpicture.cpp.o.d"
  "test_subpicture"
  "test_subpicture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_subpicture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
