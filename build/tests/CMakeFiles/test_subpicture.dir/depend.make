# Empty dependencies file for test_subpicture.
# This may be replaced when dependencies are built.
