# Empty compiler generated dependencies file for test_mb_splitter.
# This may be replaced when dependencies are built.
