file(REMOVE_RECURSE
  "CMakeFiles/test_mb_splitter.dir/test_mb_splitter.cpp.o"
  "CMakeFiles/test_mb_splitter.dir/test_mb_splitter.cpp.o.d"
  "test_mb_splitter"
  "test_mb_splitter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mb_splitter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
