file(REMOVE_RECURSE
  "CMakeFiles/test_idct.dir/test_idct.cpp.o"
  "CMakeFiles/test_idct.dir/test_idct.cpp.o.d"
  "test_idct"
  "test_idct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_idct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
