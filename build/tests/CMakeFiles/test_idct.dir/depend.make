# Empty dependencies file for test_idct.
# This may be replaced when dependencies are built.
