# Empty compiler generated dependencies file for test_mb_parser.
# This may be replaced when dependencies are built.
