file(REMOVE_RECURSE
  "CMakeFiles/test_mb_parser.dir/test_mb_parser.cpp.o"
  "CMakeFiles/test_mb_parser.dir/test_mb_parser.cpp.o.d"
  "test_mb_parser"
  "test_mb_parser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mb_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
