# Empty compiler generated dependencies file for test_encoder_features.
# This may be replaced when dependencies are built.
