file(REMOVE_RECURSE
  "CMakeFiles/test_encoder_features.dir/test_encoder_features.cpp.o"
  "CMakeFiles/test_encoder_features.dir/test_encoder_features.cpp.o.d"
  "test_encoder_features"
  "test_encoder_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_encoder_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
