file(REMOVE_RECURSE
  "CMakeFiles/test_program_stream.dir/test_program_stream.cpp.o"
  "CMakeFiles/test_program_stream.dir/test_program_stream.cpp.o.d"
  "test_program_stream"
  "test_program_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_program_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
