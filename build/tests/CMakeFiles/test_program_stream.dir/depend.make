# Empty dependencies file for test_program_stream.
# This may be replaced when dependencies are built.
