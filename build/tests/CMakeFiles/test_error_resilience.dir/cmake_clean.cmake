file(REMOVE_RECURSE
  "CMakeFiles/test_error_resilience.dir/test_error_resilience.cpp.o"
  "CMakeFiles/test_error_resilience.dir/test_error_resilience.cpp.o.d"
  "test_error_resilience"
  "test_error_resilience.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_error_resilience.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
