# Empty dependencies file for test_error_resilience.
# This may be replaced when dependencies are built.
