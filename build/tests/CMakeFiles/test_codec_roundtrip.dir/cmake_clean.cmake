file(REMOVE_RECURSE
  "CMakeFiles/test_codec_roundtrip.dir/test_codec_roundtrip.cpp.o"
  "CMakeFiles/test_codec_roundtrip.dir/test_codec_roundtrip.cpp.o.d"
  "test_codec_roundtrip"
  "test_codec_roundtrip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_codec_roundtrip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
