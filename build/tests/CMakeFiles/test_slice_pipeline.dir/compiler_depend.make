# Empty compiler generated dependencies file for test_slice_pipeline.
# This may be replaced when dependencies are built.
