file(REMOVE_RECURSE
  "CMakeFiles/test_slice_pipeline.dir/test_slice_pipeline.cpp.o"
  "CMakeFiles/test_slice_pipeline.dir/test_slice_pipeline.cpp.o.d"
  "test_slice_pipeline"
  "test_slice_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_slice_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
