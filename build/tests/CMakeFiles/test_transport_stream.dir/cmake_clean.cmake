file(REMOVE_RECURSE
  "CMakeFiles/test_transport_stream.dir/test_transport_stream.cpp.o"
  "CMakeFiles/test_transport_stream.dir/test_transport_stream.cpp.o.d"
  "test_transport_stream"
  "test_transport_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_transport_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
