# Empty compiler generated dependencies file for test_transport_stream.
# This may be replaced when dependencies are built.
