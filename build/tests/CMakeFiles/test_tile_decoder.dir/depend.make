# Empty dependencies file for test_tile_decoder.
# This may be replaced when dependencies are built.
