file(REMOVE_RECURSE
  "CMakeFiles/test_tile_decoder.dir/test_tile_decoder.cpp.o"
  "CMakeFiles/test_tile_decoder.dir/test_tile_decoder.cpp.o.d"
  "test_tile_decoder"
  "test_tile_decoder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tile_decoder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
