file(REMOVE_RECURSE
  "CMakeFiles/test_vlc_tables.dir/test_vlc_tables.cpp.o"
  "CMakeFiles/test_vlc_tables.dir/test_vlc_tables.cpp.o.d"
  "test_vlc_tables"
  "test_vlc_tables.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vlc_tables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
