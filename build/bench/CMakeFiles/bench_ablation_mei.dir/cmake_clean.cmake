file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_mei.dir/bench_ablation_mei.cpp.o"
  "CMakeFiles/bench_ablation_mei.dir/bench_ablation_mei.cpp.o.d"
  "bench_ablation_mei"
  "bench_ablation_mei.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_mei.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
