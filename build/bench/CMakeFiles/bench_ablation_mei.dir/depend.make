# Empty dependencies file for bench_ablation_mei.
# This may be replaced when dependencies are built.
