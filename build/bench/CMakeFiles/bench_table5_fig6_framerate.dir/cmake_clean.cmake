file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_fig6_framerate.dir/bench_table5_fig6_framerate.cpp.o"
  "CMakeFiles/bench_table5_fig6_framerate.dir/bench_table5_fig6_framerate.cpp.o.d"
  "bench_table5_fig6_framerate"
  "bench_table5_fig6_framerate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_fig6_framerate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
