# Empty dependencies file for bench_table5_fig6_framerate.
# This may be replaced when dependencies are built.
