file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_fig8_resolution.dir/bench_table6_fig8_resolution.cpp.o"
  "CMakeFiles/bench_table6_fig8_resolution.dir/bench_table6_fig8_resolution.cpp.o.d"
  "bench_table6_fig8_resolution"
  "bench_table6_fig8_resolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_fig8_resolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
