# Empty compiler generated dependencies file for bench_table6_fig8_resolution.
# This may be replaced when dependencies are built.
