file(REMOVE_RECURSE
  "CMakeFiles/pdw_bench_util.dir/bench_util.cpp.o"
  "CMakeFiles/pdw_bench_util.dir/bench_util.cpp.o.d"
  "libpdw_bench_util.a"
  "libpdw_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdw_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
