# Empty dependencies file for pdw_bench_util.
# This may be replaced when dependencies are built.
