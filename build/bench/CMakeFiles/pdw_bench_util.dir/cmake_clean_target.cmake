file(REMOVE_RECURSE
  "libpdw_bench_util.a"
)
