# Empty compiler generated dependencies file for bench_ablation_sph.
# This may be replaced when dependencies are built.
