file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_sph.dir/bench_ablation_sph.cpp.o"
  "CMakeFiles/bench_ablation_sph.dir/bench_ablation_sph.cpp.o.d"
  "bench_ablation_sph"
  "bench_ablation_sph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_sph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
