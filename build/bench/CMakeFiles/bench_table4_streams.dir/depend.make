# Empty dependencies file for bench_table4_streams.
# This may be replaced when dependencies are built.
