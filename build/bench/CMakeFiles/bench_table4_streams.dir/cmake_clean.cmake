file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_streams.dir/bench_table4_streams.cpp.o"
  "CMakeFiles/bench_table4_streams.dir/bench_table4_streams.cpp.o.d"
  "bench_table4_streams"
  "bench_table4_streams.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_streams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
