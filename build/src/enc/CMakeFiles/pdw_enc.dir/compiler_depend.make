# Empty compiler generated dependencies file for pdw_enc.
# This may be replaced when dependencies are built.
