file(REMOVE_RECURSE
  "CMakeFiles/pdw_enc.dir/encoder.cpp.o"
  "CMakeFiles/pdw_enc.dir/encoder.cpp.o.d"
  "CMakeFiles/pdw_enc.dir/motion_est.cpp.o"
  "CMakeFiles/pdw_enc.dir/motion_est.cpp.o.d"
  "CMakeFiles/pdw_enc.dir/rate_control.cpp.o"
  "CMakeFiles/pdw_enc.dir/rate_control.cpp.o.d"
  "libpdw_enc.a"
  "libpdw_enc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdw_enc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
