
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/enc/encoder.cpp" "src/enc/CMakeFiles/pdw_enc.dir/encoder.cpp.o" "gcc" "src/enc/CMakeFiles/pdw_enc.dir/encoder.cpp.o.d"
  "/root/repo/src/enc/motion_est.cpp" "src/enc/CMakeFiles/pdw_enc.dir/motion_est.cpp.o" "gcc" "src/enc/CMakeFiles/pdw_enc.dir/motion_est.cpp.o.d"
  "/root/repo/src/enc/rate_control.cpp" "src/enc/CMakeFiles/pdw_enc.dir/rate_control.cpp.o" "gcc" "src/enc/CMakeFiles/pdw_enc.dir/rate_control.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mpeg2/CMakeFiles/pdw_mpeg2.dir/DependInfo.cmake"
  "/root/repo/build/src/bitstream/CMakeFiles/pdw_bitstream.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pdw_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
