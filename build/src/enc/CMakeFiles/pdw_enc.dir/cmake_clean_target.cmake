file(REMOVE_RECURSE
  "libpdw_enc.a"
)
