# Empty dependencies file for pdw_baseline.
# This may be replaced when dependencies are built.
