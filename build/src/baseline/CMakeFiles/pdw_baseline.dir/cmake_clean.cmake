file(REMOVE_RECURSE
  "CMakeFiles/pdw_baseline.dir/levels.cpp.o"
  "CMakeFiles/pdw_baseline.dir/levels.cpp.o.d"
  "CMakeFiles/pdw_baseline.dir/slice_pipeline.cpp.o"
  "CMakeFiles/pdw_baseline.dir/slice_pipeline.cpp.o.d"
  "libpdw_baseline.a"
  "libpdw_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdw_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
