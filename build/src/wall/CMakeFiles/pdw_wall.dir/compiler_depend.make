# Empty compiler generated dependencies file for pdw_wall.
# This may be replaced when dependencies are built.
