file(REMOVE_RECURSE
  "CMakeFiles/pdw_wall.dir/assembler.cpp.o"
  "CMakeFiles/pdw_wall.dir/assembler.cpp.o.d"
  "CMakeFiles/pdw_wall.dir/geometry.cpp.o"
  "CMakeFiles/pdw_wall.dir/geometry.cpp.o.d"
  "libpdw_wall.a"
  "libpdw_wall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdw_wall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
