file(REMOVE_RECURSE
  "libpdw_wall.a"
)
