# Empty compiler generated dependencies file for pdw_net.
# This may be replaced when dependencies are built.
