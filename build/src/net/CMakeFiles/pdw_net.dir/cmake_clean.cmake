file(REMOVE_RECURSE
  "CMakeFiles/pdw_net.dir/fabric.cpp.o"
  "CMakeFiles/pdw_net.dir/fabric.cpp.o.d"
  "libpdw_net.a"
  "libpdw_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdw_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
