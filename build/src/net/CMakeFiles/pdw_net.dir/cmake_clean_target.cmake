file(REMOVE_RECURSE
  "libpdw_net.a"
)
