file(REMOVE_RECURSE
  "CMakeFiles/pdw_sim.dir/cluster_sim.cpp.o"
  "CMakeFiles/pdw_sim.dir/cluster_sim.cpp.o.d"
  "libpdw_sim.a"
  "libpdw_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdw_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
