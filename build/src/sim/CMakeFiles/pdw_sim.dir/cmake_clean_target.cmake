file(REMOVE_RECURSE
  "libpdw_sim.a"
)
