file(REMOVE_RECURSE
  "CMakeFiles/pdw_mpeg2.dir/decoder.cpp.o"
  "CMakeFiles/pdw_mpeg2.dir/decoder.cpp.o.d"
  "CMakeFiles/pdw_mpeg2.dir/frame.cpp.o"
  "CMakeFiles/pdw_mpeg2.dir/frame.cpp.o.d"
  "CMakeFiles/pdw_mpeg2.dir/headers.cpp.o"
  "CMakeFiles/pdw_mpeg2.dir/headers.cpp.o.d"
  "CMakeFiles/pdw_mpeg2.dir/idct.cpp.o"
  "CMakeFiles/pdw_mpeg2.dir/idct.cpp.o.d"
  "CMakeFiles/pdw_mpeg2.dir/mb_parser.cpp.o"
  "CMakeFiles/pdw_mpeg2.dir/mb_parser.cpp.o.d"
  "CMakeFiles/pdw_mpeg2.dir/motion.cpp.o"
  "CMakeFiles/pdw_mpeg2.dir/motion.cpp.o.d"
  "CMakeFiles/pdw_mpeg2.dir/quant.cpp.o"
  "CMakeFiles/pdw_mpeg2.dir/quant.cpp.o.d"
  "CMakeFiles/pdw_mpeg2.dir/recon.cpp.o"
  "CMakeFiles/pdw_mpeg2.dir/recon.cpp.o.d"
  "CMakeFiles/pdw_mpeg2.dir/tables.cpp.o"
  "CMakeFiles/pdw_mpeg2.dir/tables.cpp.o.d"
  "libpdw_mpeg2.a"
  "libpdw_mpeg2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdw_mpeg2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
