file(REMOVE_RECURSE
  "libpdw_mpeg2.a"
)
