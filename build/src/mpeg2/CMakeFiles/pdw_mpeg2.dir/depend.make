# Empty dependencies file for pdw_mpeg2.
# This may be replaced when dependencies are built.
