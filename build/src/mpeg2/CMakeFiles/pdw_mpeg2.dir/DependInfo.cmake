
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mpeg2/decoder.cpp" "src/mpeg2/CMakeFiles/pdw_mpeg2.dir/decoder.cpp.o" "gcc" "src/mpeg2/CMakeFiles/pdw_mpeg2.dir/decoder.cpp.o.d"
  "/root/repo/src/mpeg2/frame.cpp" "src/mpeg2/CMakeFiles/pdw_mpeg2.dir/frame.cpp.o" "gcc" "src/mpeg2/CMakeFiles/pdw_mpeg2.dir/frame.cpp.o.d"
  "/root/repo/src/mpeg2/headers.cpp" "src/mpeg2/CMakeFiles/pdw_mpeg2.dir/headers.cpp.o" "gcc" "src/mpeg2/CMakeFiles/pdw_mpeg2.dir/headers.cpp.o.d"
  "/root/repo/src/mpeg2/idct.cpp" "src/mpeg2/CMakeFiles/pdw_mpeg2.dir/idct.cpp.o" "gcc" "src/mpeg2/CMakeFiles/pdw_mpeg2.dir/idct.cpp.o.d"
  "/root/repo/src/mpeg2/mb_parser.cpp" "src/mpeg2/CMakeFiles/pdw_mpeg2.dir/mb_parser.cpp.o" "gcc" "src/mpeg2/CMakeFiles/pdw_mpeg2.dir/mb_parser.cpp.o.d"
  "/root/repo/src/mpeg2/motion.cpp" "src/mpeg2/CMakeFiles/pdw_mpeg2.dir/motion.cpp.o" "gcc" "src/mpeg2/CMakeFiles/pdw_mpeg2.dir/motion.cpp.o.d"
  "/root/repo/src/mpeg2/quant.cpp" "src/mpeg2/CMakeFiles/pdw_mpeg2.dir/quant.cpp.o" "gcc" "src/mpeg2/CMakeFiles/pdw_mpeg2.dir/quant.cpp.o.d"
  "/root/repo/src/mpeg2/recon.cpp" "src/mpeg2/CMakeFiles/pdw_mpeg2.dir/recon.cpp.o" "gcc" "src/mpeg2/CMakeFiles/pdw_mpeg2.dir/recon.cpp.o.d"
  "/root/repo/src/mpeg2/tables.cpp" "src/mpeg2/CMakeFiles/pdw_mpeg2.dir/tables.cpp.o" "gcc" "src/mpeg2/CMakeFiles/pdw_mpeg2.dir/tables.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bitstream/CMakeFiles/pdw_bitstream.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pdw_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
