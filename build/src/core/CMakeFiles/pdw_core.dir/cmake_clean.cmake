file(REMOVE_RECURSE
  "CMakeFiles/pdw_core.dir/config.cpp.o"
  "CMakeFiles/pdw_core.dir/config.cpp.o.d"
  "CMakeFiles/pdw_core.dir/lockstep.cpp.o"
  "CMakeFiles/pdw_core.dir/lockstep.cpp.o.d"
  "CMakeFiles/pdw_core.dir/mb_splitter.cpp.o"
  "CMakeFiles/pdw_core.dir/mb_splitter.cpp.o.d"
  "CMakeFiles/pdw_core.dir/mei.cpp.o"
  "CMakeFiles/pdw_core.dir/mei.cpp.o.d"
  "CMakeFiles/pdw_core.dir/pipeline.cpp.o"
  "CMakeFiles/pdw_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/pdw_core.dir/root_splitter.cpp.o"
  "CMakeFiles/pdw_core.dir/root_splitter.cpp.o.d"
  "CMakeFiles/pdw_core.dir/subpicture.cpp.o"
  "CMakeFiles/pdw_core.dir/subpicture.cpp.o.d"
  "CMakeFiles/pdw_core.dir/tile_decoder.cpp.o"
  "CMakeFiles/pdw_core.dir/tile_decoder.cpp.o.d"
  "libpdw_core.a"
  "libpdw_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdw_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
