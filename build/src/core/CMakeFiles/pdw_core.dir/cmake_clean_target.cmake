file(REMOVE_RECURSE
  "libpdw_core.a"
)
