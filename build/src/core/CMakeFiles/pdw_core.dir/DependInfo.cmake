
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/config.cpp" "src/core/CMakeFiles/pdw_core.dir/config.cpp.o" "gcc" "src/core/CMakeFiles/pdw_core.dir/config.cpp.o.d"
  "/root/repo/src/core/lockstep.cpp" "src/core/CMakeFiles/pdw_core.dir/lockstep.cpp.o" "gcc" "src/core/CMakeFiles/pdw_core.dir/lockstep.cpp.o.d"
  "/root/repo/src/core/mb_splitter.cpp" "src/core/CMakeFiles/pdw_core.dir/mb_splitter.cpp.o" "gcc" "src/core/CMakeFiles/pdw_core.dir/mb_splitter.cpp.o.d"
  "/root/repo/src/core/mei.cpp" "src/core/CMakeFiles/pdw_core.dir/mei.cpp.o" "gcc" "src/core/CMakeFiles/pdw_core.dir/mei.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/pdw_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/pdw_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/core/root_splitter.cpp" "src/core/CMakeFiles/pdw_core.dir/root_splitter.cpp.o" "gcc" "src/core/CMakeFiles/pdw_core.dir/root_splitter.cpp.o.d"
  "/root/repo/src/core/subpicture.cpp" "src/core/CMakeFiles/pdw_core.dir/subpicture.cpp.o" "gcc" "src/core/CMakeFiles/pdw_core.dir/subpicture.cpp.o.d"
  "/root/repo/src/core/tile_decoder.cpp" "src/core/CMakeFiles/pdw_core.dir/tile_decoder.cpp.o" "gcc" "src/core/CMakeFiles/pdw_core.dir/tile_decoder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mpeg2/CMakeFiles/pdw_mpeg2.dir/DependInfo.cmake"
  "/root/repo/build/src/wall/CMakeFiles/pdw_wall.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/pdw_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pdw_common.dir/DependInfo.cmake"
  "/root/repo/build/src/bitstream/CMakeFiles/pdw_bitstream.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
