file(REMOVE_RECURSE
  "CMakeFiles/pdw_bitstream.dir/bit_writer.cpp.o"
  "CMakeFiles/pdw_bitstream.dir/bit_writer.cpp.o.d"
  "CMakeFiles/pdw_bitstream.dir/start_code.cpp.o"
  "CMakeFiles/pdw_bitstream.dir/start_code.cpp.o.d"
  "libpdw_bitstream.a"
  "libpdw_bitstream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdw_bitstream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
