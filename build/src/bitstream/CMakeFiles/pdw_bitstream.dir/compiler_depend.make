# Empty compiler generated dependencies file for pdw_bitstream.
# This may be replaced when dependencies are built.
