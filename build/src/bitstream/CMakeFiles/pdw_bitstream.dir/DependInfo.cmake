
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bitstream/bit_writer.cpp" "src/bitstream/CMakeFiles/pdw_bitstream.dir/bit_writer.cpp.o" "gcc" "src/bitstream/CMakeFiles/pdw_bitstream.dir/bit_writer.cpp.o.d"
  "/root/repo/src/bitstream/start_code.cpp" "src/bitstream/CMakeFiles/pdw_bitstream.dir/start_code.cpp.o" "gcc" "src/bitstream/CMakeFiles/pdw_bitstream.dir/start_code.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pdw_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
