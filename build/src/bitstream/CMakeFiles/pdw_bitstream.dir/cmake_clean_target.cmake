file(REMOVE_RECURSE
  "libpdw_bitstream.a"
)
