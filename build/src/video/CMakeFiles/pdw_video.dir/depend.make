# Empty dependencies file for pdw_video.
# This may be replaced when dependencies are built.
