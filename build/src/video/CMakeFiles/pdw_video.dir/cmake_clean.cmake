file(REMOVE_RECURSE
  "CMakeFiles/pdw_video.dir/catalog.cpp.o"
  "CMakeFiles/pdw_video.dir/catalog.cpp.o.d"
  "CMakeFiles/pdw_video.dir/generator.cpp.o"
  "CMakeFiles/pdw_video.dir/generator.cpp.o.d"
  "libpdw_video.a"
  "libpdw_video.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdw_video.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
