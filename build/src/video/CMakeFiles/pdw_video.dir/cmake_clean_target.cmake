file(REMOVE_RECURSE
  "libpdw_video.a"
)
