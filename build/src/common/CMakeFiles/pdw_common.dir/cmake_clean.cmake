file(REMOVE_RECURSE
  "CMakeFiles/pdw_common.dir/check.cpp.o"
  "CMakeFiles/pdw_common.dir/check.cpp.o.d"
  "CMakeFiles/pdw_common.dir/stats.cpp.o"
  "CMakeFiles/pdw_common.dir/stats.cpp.o.d"
  "CMakeFiles/pdw_common.dir/text_table.cpp.o"
  "CMakeFiles/pdw_common.dir/text_table.cpp.o.d"
  "libpdw_common.a"
  "libpdw_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdw_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
