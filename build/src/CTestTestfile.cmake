# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("bitstream")
subdirs("mpeg2")
subdirs("enc")
subdirs("ps")
subdirs("video")
subdirs("net")
subdirs("sim")
subdirs("wall")
subdirs("core")
subdirs("baseline")
