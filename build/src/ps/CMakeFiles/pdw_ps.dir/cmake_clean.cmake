file(REMOVE_RECURSE
  "CMakeFiles/pdw_ps.dir/program_stream.cpp.o"
  "CMakeFiles/pdw_ps.dir/program_stream.cpp.o.d"
  "CMakeFiles/pdw_ps.dir/transport_stream.cpp.o"
  "CMakeFiles/pdw_ps.dir/transport_stream.cpp.o.d"
  "libpdw_ps.a"
  "libpdw_ps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdw_ps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
