file(REMOVE_RECURSE
  "libpdw_ps.a"
)
