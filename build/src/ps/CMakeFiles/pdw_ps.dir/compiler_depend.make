# Empty compiler generated dependencies file for pdw_ps.
# This may be replaced when dependencies are built.
